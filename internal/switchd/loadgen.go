package switchd

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// Attack mode: a closed-loop load generator that replays admissible
// multicast traffic (internal/workload patterns) against a running
// wdmserve instance through the typed /v1 client and reports achieved
// throughput and blocking.
//
// Each worker owns a disjoint slice of the port space of one fabric
// replica (ports with port % workersPerFabric == its partition, pinned
// to its plane), tracks its own free source/destination slots, and only
// ever offers connections whose endpoints are free in its slice — so
// every `blocked` from the server is a genuine blocking event, exactly
// as in the offline simulator, and the server-side `blocked` counter
// can be diffed against `internal/sim` results for the same parameters.
//
// A chaos schedule (ChaosEvent, parsed from "-chaos" syntax by
// ParseChaos) fires fail/repair calls against the target's failure
// plane at fixed offsets into the run, turning the generator into an
// end-to-end chaos harness: at m = bound + f spares, failing f middles
// mid-run must keep both drops and blocks at zero.

// Chaos actions a schedule can fire against the failure plane.
const (
	ChaosFail   = "fail"
	ChaosRepair = "repair"
)

// ChaosEvent is one scheduled failure-plane operation.
type ChaosEvent struct {
	// At is the offset from attack start.
	At time.Duration `json:"at_ns"`
	// Action is "fail" or "repair".
	Action string `json:"action"`
	Fabric int    `json:"fabric"`
	Middle int    `json:"middle"`
}

// ParseChaos parses a chaos schedule in the -chaos flag syntax: a
// comma-separated list of "<action>@<offset> f<fabric>:m<middle>",
// e.g. "fail@10s f0:m2, repair@30s f0:m2".
func ParseChaos(s string) ([]ChaosEvent, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var events []ChaosEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("switchd: chaos: want \"<action>@<offset> f<fabric>:m<middle>\", got %q", part)
		}
		action, offset, ok := strings.Cut(fields[0], "@")
		if !ok || (action != ChaosFail && action != ChaosRepair) {
			return nil, fmt.Errorf("switchd: chaos: want fail@<offset> or repair@<offset>, got %q", fields[0])
		}
		at, err := time.ParseDuration(offset)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("switchd: chaos: bad offset in %q: %v", fields[0], err)
		}
		target := fields[1]
		fs, ms, ok := strings.Cut(target, ":")
		if !ok || !strings.HasPrefix(fs, "f") || !strings.HasPrefix(ms, "m") {
			return nil, fmt.Errorf("switchd: chaos: want f<fabric>:m<middle>, got %q", target)
		}
		fab, err1 := strconv.Atoi(fs[1:])
		mid, err2 := strconv.Atoi(ms[1:])
		if err1 != nil || err2 != nil || fab < 0 || mid < 0 {
			return nil, fmt.Errorf("switchd: chaos: bad target %q", target)
		}
		events = append(events, ChaosEvent{At: at, Action: action, Fabric: fab, Middle: mid})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// ChaosOutcome is what one scheduled event did.
type ChaosOutcome struct {
	ChaosEvent
	// Error is set when the admin call failed (by api error string).
	Error string `json:"error,omitempty"`
	// Migrated/Dropped are the session counts a fail moved/lost; zero
	// for repairs.
	Migrated int `json:"migrated,omitempty"`
	Dropped  int `json:"dropped,omitempty"`
	// Health is the server's rollup status after the event.
	Health string `json:"health,omitempty"`
}

// AttackConfig parameterizes one load-generation run.
type AttackConfig struct {
	// BaseURL of the target server, e.g. "http://localhost:8047".
	BaseURL string
	// Client is the HTTP client to use (http.DefaultClient if nil).
	Client *http.Client
	// Requests is the total number of connect attempts across all
	// workers.
	Requests int
	// WorkersPerFabric is the concurrent worker count per fabric
	// replica (default 2). Total workers = replicas * WorkersPerFabric.
	WorkersPerFabric int
	// MaxFanout bounds each request's fanout; 0 means up to the
	// worker's port-slice size.
	MaxFanout int
	// TargetLive is the per-worker live-session high-water mark: the
	// worker disconnects its oldest session before connecting past it
	// (default 8). This is the knob that sets offered load.
	TargetLive int
	// Seed drives the per-worker traffic generators.
	Seed int64
	// Retry is the typed client's backoff policy for 429/503 answers;
	// the zero value disables retries.
	Retry client.RetryPolicy
	// Chaos is the failure-plane schedule fired during the run (see
	// ParseChaos).
	Chaos []ChaosEvent
}

// ClientLatency summarizes the client-observed connect latency (full
// HTTP round trip, as a client would experience it — not the server's
// in-fabric routing time).
type ClientLatency struct {
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

// TraceRef is one connect the client can follow server-side by trace
// id: the generator sends a W3C traceparent header with every connect,
// so the id here joins against /v1/debug/spans, the /metrics exemplars,
// and /v1/debug/blocking on the target.
type TraceRef struct {
	TraceID string `json:"trace_id"`
	// Outcome is "ok" or the api error code the connect drew.
	Outcome string `json:"outcome"`
	Micros  int64  `json:"micros"` // client-observed round trip
	Conn    string `json:"connection"`
}

// AttackReport aggregates a run.
type AttackReport struct {
	Workers     int           `json:"workers"`
	Connects    int           `json:"connects"`
	Routed      int           `json:"routed"`
	Blocked     int           `json:"blocked"`
	Rejected    int           `json:"rejected"` // admission_full answers
	Disconnects int           `json:"disconnects"`
	Duration    time.Duration `json:"duration_ns"`

	// OpsPerSec counts every completed HTTP operation (connects +
	// disconnects) per wall-clock second; ConnectsPerSec only connects.
	OpsPerSec      float64 `json:"ops_per_sec"`
	ConnectsPerSec float64 `json:"connects_per_sec"`
	// BlockingProbability is Blocked / Connects (admission rejects
	// excluded: they were never offered to a fabric).
	BlockingProbability float64 `json:"blocking_probability"`

	// Outcomes tallies every connect by result: "ok" or the stable api
	// error code ("blocked", "admission_full", ...). ConnectLatency
	// summarizes the client-observed connect round-trip times.
	Outcomes       map[string]int `json:"outcomes"`
	ConnectLatency ClientLatency  `json:"connect_latency_us"`

	// ServerPhases is the server's own attribution of connect time,
	// averaged over the Server-Timing headers it returned: mean µs per
	// phase (admission_wait, lock_wait, route_search, ...). The gap
	// between ConnectLatency and the phase sum is network + HTTP
	// overhead the server never saw.
	ServerPhases map[string]float64 `json:"server_phase_mean_us,omitempty"`

	// Retries is the typed client's total backoff retries across the
	// run; LostSessions counts sessions the server dropped under chaos
	// (disconnect answered not_found).
	Retries      int64 `json:"retries"`
	LostSessions int   `json:"lost_sessions"`
	// Chaos reports what each scheduled failure-plane event did.
	Chaos []ChaosOutcome `json:"chaos,omitempty"`

	// SlowestTraces are the slowest connects by client round trip;
	// BlockedTraces every blocked connect (up to a cap) — both by the
	// trace ids this client sent, for server-side follow-up.
	SlowestTraces []TraceRef `json:"slowest_traces,omitempty"`
	BlockedTraces []TraceRef `json:"blocked_traces,omitempty"`

	// Server is the target's own metrics snapshot after the run.
	Server Snapshot `json:"server"`
}

func (r AttackReport) String() string {
	s := fmt.Sprintf("%d workers: %d connects (%d routed, %d blocked, %d rejected) in %v — %.0f ops/s, %.0f connects/s, connect p50/p95/p99 %.0f/%.0f/%.0f µs, P_block=%.4f (server blocked=%d)",
		r.Workers, r.Connects, r.Routed, r.Blocked, r.Rejected, r.Duration.Round(time.Millisecond),
		r.OpsPerSec, r.ConnectsPerSec,
		r.ConnectLatency.P50Micros, r.ConnectLatency.P95Micros, r.ConnectLatency.P99Micros,
		r.BlockingProbability, r.Server.Blocked)
	if r.Retries > 0 || r.LostSessions > 0 {
		s += fmt.Sprintf("\nretries=%d lost_sessions=%d", r.Retries, r.LostSessions)
	}
	for _, c := range r.Chaos {
		s += fmt.Sprintf("\nchaos %s@%v f%d:m%d", c.Action, c.At.Round(time.Millisecond), c.Fabric, c.Middle)
		if c.Error != "" {
			s += " error=" + c.Error
		} else if c.Action == ChaosFail {
			s += fmt.Sprintf(" migrated=%d dropped=%d health=%s", c.Migrated, c.Dropped, c.Health)
		} else {
			s += " health=" + c.Health
		}
	}
	if len(r.ServerPhases) > 0 {
		var parts []string
		for p := phase(0); p < numPhases; p++ {
			if v, ok := r.ServerPhases[phaseNames[p]]; ok {
				parts = append(parts, fmt.Sprintf("%s=%.0f", phaseNames[p], v))
			}
		}
		if len(parts) > 0 {
			s += "\nserver phases (mean µs): " + strings.Join(parts, " ")
		}
	}
	if len(r.BlockedTraces) > 0 {
		s += fmt.Sprintf("\nfirst blocked trace: %s (curl <target>/v1/debug/spans?trace=%s)",
			r.BlockedTraces[0].TraceID, r.BlockedTraces[0].TraceID)
	}
	if len(r.SlowestTraces) > 0 {
		s += fmt.Sprintf("\nslowest connect: %d µs, trace %s", r.SlowestTraces[0].Micros, r.SlowestTraces[0].TraceID)
	}
	return s
}

// Attack runs the load generator against cfg.BaseURL.
func Attack(cfg AttackConfig) (AttackReport, error) {
	opts := []client.Option{client.WithRetry(cfg.Retry)}
	if cfg.Client != nil {
		opts = append(opts, client.WithHTTPClient(cfg.Client))
	}
	cl := client.New(cfg.BaseURL, opts...)
	if cfg.Requests <= 0 {
		cfg.Requests = 10000
	}
	if cfg.WorkersPerFabric <= 0 {
		cfg.WorkersPerFabric = 2
	}
	if cfg.TargetLive <= 0 {
		cfg.TargetLive = 8
	}

	ctx := context.Background()
	status, err := cl.Status(ctx)
	if err != nil {
		return AttackReport{}, fmt.Errorf("switchd: attack: fetching target status: %w", err)
	}
	model, err := wdm.ParseModel(status.Model)
	if err != nil {
		return AttackReport{}, fmt.Errorf("switchd: attack: %w", err)
	}
	if status.Replicas < 1 || status.N < cfg.WorkersPerFabric {
		return AttackReport{}, fmt.Errorf("switchd: attack: target too small (N=%d replicas=%d)", status.N, status.Replicas)
	}

	workers := status.Replicas * cfg.WorkersPerFabric
	perWorker := cfg.Requests / workers
	remainder := cfg.Requests % workers

	// The chaos scheduler runs alongside the workers and is cut off when
	// they finish (events past the run's end never fire).
	chaosCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan []ChaosOutcome, 1)
	start := time.Now()
	go func() { chaosDone <- runChaos(chaosCtx, cl, start, cfg.Chaos) }()

	// The self-reporter streams offered/achieved rates to the target
	// (POST /v1/loadgen) once a second, so the run's load curve lands in
	// the server's metrics history next to the counters it explains.
	var prog attackProgress
	repCtx, stopReport := context.WithCancel(ctx)
	repDone := make(chan struct{})
	go func() { defer close(repDone); reportLoadLoop(repCtx, cl, &prog) }()

	results := make([]attackWorkerResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			attempts := perWorker
			if w < remainder {
				attempts++
			}
			results[w] = attackWorker(ctx, cl, cfg, status, model, w, attempts, &prog)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopChaos()
	stopReport()
	<-repDone
	chaos := <-chaosDone

	rep := AttackReport{Workers: workers, Duration: elapsed, Outcomes: map[string]int{}, Chaos: chaos}
	var firstErr error
	var latencies []time.Duration
	var traces []TraceRef
	phaseMs := map[string]float64{}
	phaseN := map[string]int{}
	for _, r := range results {
		rep.Connects += r.connects
		rep.Routed += r.routed
		rep.Blocked += r.blocked
		rep.Rejected += r.rejected
		rep.Disconnects += r.disconnects
		rep.LostSessions += r.lost
		for code, n := range r.outcomes {
			rep.Outcomes[code] += n
		}
		for p, ms := range r.phaseMs {
			phaseMs[p] += ms
			phaseN[p] += r.phaseN[p]
		}
		latencies = append(latencies, r.latencies...)
		traces = append(traces, r.traces...)
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if len(phaseMs) > 0 {
		rep.ServerPhases = make(map[string]float64, len(phaseMs))
		for p, ms := range phaseMs {
			if n := phaseN[p]; n > 0 {
				rep.ServerPhases[p] = ms * 1e3 / float64(n)
			}
		}
	}
	rep.Retries = cl.Retries()
	if firstErr != nil {
		return rep, firstErr
	}
	// Record the trace ids worth a server-side look: every blocked
	// connect (up to a cap) and the slowest round trips.
	const maxBlockedTraces, maxSlowTraces = 16, 5
	for _, t := range traces {
		if t.Outcome == api.CodeBlocked && len(rep.BlockedTraces) < maxBlockedTraces {
			rep.BlockedTraces = append(rep.BlockedTraces, t)
		}
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].Micros > traces[j].Micros })
	if len(traces) > maxSlowTraces {
		traces = traces[:maxSlowTraces]
	}
	rep.SlowestTraces = traces
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(latencies)-1))
			return float64(latencies[i].Nanoseconds()) / 1e3
		}
		rep.ConnectLatency = ClientLatency{P50Micros: q(0.50), P95Micros: q(0.95), P99Micros: q(0.99)}
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.OpsPerSec = float64(rep.Connects+rep.Disconnects) / secs
		rep.ConnectsPerSec = float64(rep.Connects) / secs
	}
	if rep.Connects > 0 {
		rep.BlockingProbability = float64(rep.Blocked) / float64(rep.Connects)
	}
	if rep.Server, err = cl.MetricsSnapshot(ctx); err != nil {
		return rep, fmt.Errorf("switchd: attack: fetching target metrics: %w", err)
	}
	return rep, nil
}

// runChaos fires the scheduled events in order, sleeping out each
// offset relative to start; ctx cancellation ends the schedule early.
func runChaos(ctx context.Context, cl *client.Client, start time.Time, events []ChaosEvent) []ChaosOutcome {
	var out []ChaosOutcome
	for _, ev := range events {
		wait := time.Until(start.Add(ev.At))
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return out
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return out
		}
		oc := ChaosOutcome{ChaosEvent: ev}
		switch ev.Action {
		case ChaosFail:
			rep, err := cl.Fail(ctx, ev.Fabric, ev.Middle)
			if err != nil {
				oc.Error = err.Error()
			} else {
				oc.Migrated = len(rep.Migrated)
				oc.Dropped = len(rep.Dropped)
				oc.Health = rep.Health.Status
			}
		case ChaosRepair:
			rep, err := cl.Repair(ctx, ev.Fabric, ev.Middle)
			if err != nil {
				oc.Error = err.Error()
			} else {
				oc.Health = rep.Health.Status
			}
		}
		out = append(out, oc)
	}
	return out
}

// attackProgress is the run's live offered/achieved tally, shared by
// every worker and read by the self-reporter.
type attackProgress struct {
	connects atomic.Int64 // offered: every connect attempt sent
	routed   atomic.Int64 // achieved: connects the fabric routed
}

// reportLoadLoop posts the run's offered/achieved rates once a second
// until ctx is done. Report failures are ignored: the target may not
// be reachable mid-chaos, and the loadgen's own result accounting
// never depends on the reports landing.
func reportLoadLoop(ctx context.Context, cl *client.Client, prog *attackProgress) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	lastConnects, lastRouted := int64(0), int64(0)
	lastAt := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			connects, routed := prog.connects.Load(), prog.routed.Load()
			secs := now.Sub(lastAt).Seconds()
			if secs <= 0 {
				continue
			}
			rep := api.LoadgenReport{
				OfferedRPS:  float64(connects-lastConnects) / secs,
				AchievedRPS: float64(routed-lastRouted) / secs,
			}
			lastConnects, lastRouted, lastAt = connects, routed, now
			_ = cl.ReportLoad(ctx, rep)
		}
	}
}

type attackWorkerResult struct {
	connects, routed, blocked, rejected, disconnects int
	lost                                             int // sessions the server dropped under chaos
	outcomes                                         map[string]int
	latencies                                        []time.Duration // per-connect round trips
	traces                                           []TraceRef      // one per connect, by the trace id sent
	phaseMs                                          map[string]float64
	phaseN                                           map[string]int
	err                                              error
}

// parseServerTiming folds one Server-Timing header (switchd emits
// comma-separated `name;dur=<ms>` entries) into per-phase millisecond
// sums and sample counts; unparseable entries are skipped.
func parseServerTiming(h string, sumMs map[string]float64, counts map[string]int) {
	for _, part := range strings.Split(h, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), ";")
		if !ok || name == "" {
			continue
		}
		durStr, ok := strings.CutPrefix(strings.TrimSpace(rest), "dur=")
		if !ok {
			continue
		}
		ms, err := strconv.ParseFloat(durStr, 64)
		if err != nil {
			continue
		}
		sumMs[name] += ms
		counts[name]++
	}
}

// attackWorker drives one closed loop: connect until the live target is
// reached, then recycle oldest-first, keeping every request admissible
// within its private port slice.
func attackWorker(ctx context.Context, cl *client.Client, cfg AttackConfig, status Status, model wdm.Model, w, attempts int, prog *attackProgress) attackWorkerResult {
	res := attackWorkerResult{
		outcomes: map[string]int{},
		phaseMs:  map[string]float64{},
		phaseN:   map[string]int{},
	}
	fabric := w / cfg.WorkersPerFabric
	part := w % cfg.WorkersPerFabric

	// The worker's slice of the port space: every k-wavelength slot of
	// ports congruent to part (mod WorkersPerFabric).
	var ports []int
	for p := part; p < status.N; p += cfg.WorkersPerFabric {
		ports = append(ports, p)
	}
	freeSrc := newLoadgenSlots(ports, status.K)
	freeDst := newLoadgenSlots(ports, status.K)
	gen := workload.NewGenerator(cfg.Seed+int64(w)*7919, model, wdm.Dim{N: status.N, K: status.K})

	type liveSession struct {
		id   uint64
		conn wdm.Connection
	}
	var live []liveSession

	disconnectOldest := func() error {
		s := live[0]
		live = live[1:]
		_, err := cl.Disconnect(ctx, s.id)
		switch {
		case err == nil:
			res.disconnects++
		case api.IsCode(err, api.CodeNotFound):
			// Chaos dropped the session server-side; the slots are free
			// either way.
			res.lost++
		default:
			return fmt.Errorf("switchd: attack: disconnect session %d: %w", s.id, err)
		}
		freeSrc.put(s.conn.Source)
		for _, d := range s.conn.Dests {
			freeDst.put(d)
		}
		return nil
	}

	for i := 0; i < attempts; i++ {
		for len(live) >= cfg.TargetLive {
			if res.err = disconnectOldest(); res.err != nil {
				return res
			}
		}
		maxFanout := cfg.MaxFanout
		if maxFanout <= 0 || maxFanout > len(ports) {
			maxFanout = len(ports)
		}
		conn, ok := gen.Connection(freeSrc.slots(), freeDst.slots(), gen.Fanout(maxFanout))
		if !ok {
			// Free sets can't support a request (e.g. wavelength-starved
			// under MSW); recycle a session and retry.
			if len(live) == 0 {
				res.err = fmt.Errorf("switchd: attack: worker %d starved with no live sessions", w)
				return res
			}
			if res.err = disconnectOldest(); res.err != nil {
				return res
			}
			i--
			continue
		}

		// Send a client-generated W3C traceparent so this request's trace
		// id is known here without reading the response: the join key for
		// /v1/debug/spans, the /metrics exemplars, and /v1/debug/blocking.
		tid := span.NewTraceID()
		traceparent := span.FormatTraceparent(tid, span.NewSpanID(), span.FlagSampled)
		connStr := wdm.FormatConnection(conn)
		reqCtx := client.ContextWithTraceparent(ctx, traceparent)
		var serverTiming string
		reqCtx = client.ContextWithServerTiming(reqCtx, &serverTiming)
		start := time.Now()
		cr, err := cl.Connect(reqCtx, connStr, fabric)
		rtt := time.Since(start)
		res.latencies = append(res.latencies, rtt)
		if serverTiming != "" {
			parseServerTiming(serverTiming, res.phaseMs, res.phaseN)
		}
		outcome := "ok"
		if err != nil {
			if outcome = api.CodeOf(err); outcome == "" {
				res.err = fmt.Errorf("switchd: attack: connect %s: %w", connStr, err)
				return res
			}
		}
		res.traces = append(res.traces, TraceRef{
			TraceID: tid.String(), Outcome: outcome,
			Micros: rtt.Microseconds(), Conn: connStr,
		})
		res.outcomes[outcome]++
		res.connects++
		prog.connects.Add(1)
		switch outcome {
		case "ok":
			res.routed++
			prog.routed.Add(1)
			freeSrc.take(conn.Source)
			for _, d := range conn.Dests {
				freeDst.take(d)
			}
			live = append(live, liveSession{id: cr.Session, conn: conn})
		case api.CodeBlocked:
			res.blocked++
		case api.CodeAdmissionFull:
			res.rejected++
			// Shed our own load before trying again.
			if len(live) > 0 {
				if res.err = disconnectOldest(); res.err != nil {
					return res
				}
			}
		case api.CodeFabricFailed:
			// Our pinned plane is fully failed; count it and keep cycling —
			// a scheduled repair may bring it back.
			if len(live) > 0 {
				if res.err = disconnectOldest(); res.err != nil {
					return res
				}
			}
		default:
			res.err = fmt.Errorf("switchd: attack: connect %s: unexpected error code %s", connStr, outcome)
			return res
		}
	}

	for len(live) > 0 {
		if res.err = disconnectOldest(); res.err != nil {
			return res
		}
	}
	return res
}

// loadgenSlots is the worker-local free-slot pool (the loadgen twin of
// the simulator's slot bookkeeping, over a port subset).
type loadgenSlots struct {
	free []wdm.PortWave
	pos  map[wdm.PortWave]int
}

func newLoadgenSlots(ports []int, k int) *loadgenSlots {
	s := &loadgenSlots{pos: make(map[wdm.PortWave]int, len(ports)*k)}
	for _, p := range ports {
		for w := 0; w < k; w++ {
			s.put(wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
	}
	return s
}

func (s *loadgenSlots) slots() []wdm.PortWave { return s.free }

func (s *loadgenSlots) take(slot wdm.PortWave) {
	i, ok := s.pos[slot]
	if !ok {
		panic(fmt.Sprintf("switchd: attack: taking slot %v twice", slot))
	}
	last := len(s.free) - 1
	s.free[i] = s.free[last]
	s.pos[s.free[i]] = i
	s.free = s.free[:last]
	delete(s.pos, slot)
}

func (s *loadgenSlots) put(slot wdm.PortWave) {
	if _, dup := s.pos[slot]; dup {
		panic(fmt.Sprintf("switchd: attack: freeing slot %v twice", slot))
	}
	s.pos[slot] = len(s.free)
	s.free = append(s.free, slot)
}
