package switchd

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/multistage"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
)

// boundFor computes the construction's sufficient nonblocking bound for
// a parameter set, the reference point for the fault-tolerance margin.
func boundFor(p multistage.Params) int {
	m, _ := multistage.SufficientMinM(p.Construction, p.Model, p.N/p.R, p.R, p.K)
	return m
}

// churn runs workers that cycle connect/disconnect on private unicast
// lanes (always admissible, no slot contention) against the typed
// client until stop is closed. Any error a worker sees fails the test:
// under chaos at m = bound + f spares, every request must still
// succeed.
func churn(t *testing.T, cl *client.Client, lanes [][2]int, plane int, stop <-chan struct{}) (*sync.WaitGroup, *atomic.Int64) {
	t.Helper()
	var wg sync.WaitGroup
	var cycles atomic.Int64
	for _, lane := range lanes {
		wg.Add(1)
		go func(src, dst int) {
			defer wg.Done()
			conn := fmt.Sprintf("%d.0>%d.0", src, dst)
			for {
				select {
				case <-stop:
					return
				default:
				}
				cr, err := cl.Connect(context.Background(), conn, plane)
				if err != nil {
					t.Errorf("churn connect %q: %v", conn, err)
					return
				}
				if _, err := cl.Disconnect(context.Background(), cr.Session); err != nil {
					t.Errorf("churn disconnect %d: %v", cr.Session, err)
					return
				}
				cycles.Add(1)
			}
		}(lane[0], lane[1])
	}
	return &wg, &cycles
}

// TestChaosFailMigrateRepair is the end-to-end chaos acceptance test:
// at m = bound + 2 spares, failing two middle modules under live load
// migrates every riding session in place — zero drops, zero blocks,
// session ids stable — and health walks ok -> degraded -> ok across the
// repair. Run it under -race: the failure plane, the churn workers, and
// the admission path all interleave here.
func TestChaosFailMigrateRepair(t *testing.T) {
	p := testParams()
	p.M = boundFor(p) + 2
	ctl := newTestController(t, Config{Fabric: p, Replicas: 2, Shards: 4})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 4}))
	ctx := context.Background()

	// Long-lived sessions on plane 0, routed while the fabric is empty:
	// the router prefers low-indexed middles, so failing middle 0 is
	// guaranteed to hit at least one of them.
	held := make(map[uint64]string)
	for _, lane := range [][2]int{{0, 8}, {2, 10}, {4, 12}, {6, 14}} {
		conn := fmt.Sprintf("%d.0>%d.0", lane[0], lane[1])
		cr, err := cl.Connect(ctx, conn, 0)
		if err != nil {
			t.Fatalf("held connect %q: %v", conn, err)
		}
		held[cr.Session] = conn
	}

	stop := make(chan struct{})
	wg, cycles := churn(t, cl, [][2]int{{1, 9}, {3, 11}, {5, 13}, {7, 15}}, 0, stop)

	// Let the churn establish itself, then fail two middles on plane 0.
	waitForCycles(t, cycles, 20)
	var migrated int64
	for _, mid := range []int{0, 1} {
		rep, err := cl.Fail(ctx, 0, mid)
		if err != nil {
			t.Fatalf("Fail(0, %d): %v", mid, err)
		}
		if len(rep.Dropped) != 0 {
			t.Fatalf("Fail(0, %d) dropped %v with %d spare middles", mid, rep.Dropped, 2)
		}
		migrated += int64(len(rep.Migrated))
	}
	if migrated == 0 {
		t.Fatal("failing middles 0 and 1 migrated no sessions; held sessions should ride low middles")
	}

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != api.HealthDegraded || !h.Degraded || h.FailedMiddles != 2 {
		t.Fatalf("health after 2 failures = %+v, want degraded with 2 failed middles", h)
	}

	// Keep churning on the weakened plane, then repair both modules.
	waitForCycles(t, cycles, cycles.Load()+20)
	for _, mid := range []int{0, 1} {
		if _, err := cl.Repair(ctx, 0, mid); err != nil {
			t.Fatalf("Repair(0, %d): %v", mid, err)
		}
	}
	if h, err = cl.Health(ctx); err != nil || h.Status != api.HealthOK || h.FailedMiddles != 0 {
		t.Fatalf("health after repair = %+v (err %v), want ok", h, err)
	}

	close(stop)
	wg.Wait()

	// Every held session survived the chaos under its original id, with
	// the migration(s) on the record.
	migRecorded := 0
	for id, conn := range held {
		info, err := cl.Session(ctx, id)
		if err != nil {
			t.Fatalf("held session %d (%s) lost: %v", id, conn, err)
		}
		migRecorded += info.Migrations
		if _, err := cl.Disconnect(ctx, id); err != nil {
			t.Fatalf("disconnect held %d: %v", id, err)
		}
	}
	if migRecorded == 0 {
		t.Fatal("no held session records a migration")
	}

	snap, err := cl.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatalf("MetricsSnapshot: %v", err)
	}
	if snap.Blocked != 0 {
		t.Fatalf("blocked %d times at m = bound + 2 with 2 failures", snap.Blocked)
	}
	if snap.DroppedSessions != 0 {
		t.Fatalf("dropped %d sessions with spare capacity available", snap.DroppedSessions)
	}
	if snap.MigratedSessions != migrated {
		t.Fatalf("snapshot migrated %d, fail reports said %d", snap.MigratedSessions, migrated)
	}
	if cl.Retries() != 0 {
		t.Fatalf("client retried %d times; nothing should 429/503 in this test", cl.Retries())
	}
}

// waitForCycles blocks until the churn counter passes target (the
// workers are live and routing), failing the test after a deadline.
func waitForCycles(t *testing.T, cycles *atomic.Int64, target int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for cycles.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("churn stalled at %d cycles waiting for %d", cycles.Load(), target)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDegradedAdmissionDerates: at m = bound exactly there are no
// spares, so one failure bites into the nonblocking guarantee and the
// controller derates the admission cap — the overload surfaces as
// admission_full (429), not as blocking (409).
func TestDegradedAdmissionDerates(t *testing.T) {
	const maxSessions = 8
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2, MaxSessions: maxSessions})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 1})) // 429 must surface, not retry
	ctx := context.Background()

	rep, err := cl.Fail(ctx, 0, 0)
	if err != nil {
		t.Fatalf("Fail(0, 0): %v", err)
	}
	if rep.Health.Status != api.HealthDegraded {
		t.Fatalf("health after failure = %q, want degraded", rep.Health.Status)
	}
	derated := rep.Health.EffectiveMaxSessions
	if derated <= 0 || derated >= maxSessions {
		t.Fatalf("effective cap = %d, want derated strictly below %d", derated, maxSessions)
	}

	// Fill exactly to the derated cap with disjoint unicast lanes; the
	// next connect must draw admission_full, not blocked.
	var ids []uint64
	for i := 0; i < derated; i++ {
		cr, err := cl.Connect(ctx, fmt.Sprintf("%d.0>%d.0", 2*i, 2*i+1), -1)
		if err != nil {
			t.Fatalf("fill connect %d/%d: %v", i+1, derated, err)
		}
		ids = append(ids, cr.Session)
	}
	over := fmt.Sprintf("%d.0>%d.0", 2*derated, 2*derated+1)
	if _, err := cl.Connect(ctx, over, -1); !api.IsCode(err, api.CodeAdmissionFull) {
		t.Fatalf("connect over derated cap: err %v, want code %q", err, api.CodeAdmissionFull)
	}

	// Repair lifts the derating: the same connect now succeeds.
	rrep, err := cl.Repair(ctx, 0, 0)
	if err != nil {
		t.Fatalf("Repair(0, 0): %v", err)
	}
	if rrep.Health.Status != api.HealthOK || rrep.Health.EffectiveMaxSessions != maxSessions {
		t.Fatalf("health after repair = %+v, want ok with cap %d restored", rrep.Health, maxSessions)
	}
	cr, err := cl.Connect(ctx, over, -1)
	if err != nil {
		t.Fatalf("connect after repair: %v", err)
	}
	for _, id := range append(ids, cr.Session) {
		if _, err := cl.Disconnect(ctx, id); err != nil {
			t.Fatalf("disconnect %d: %v", id, err)
		}
	}
}

// TestFabricFailedCritical: failing every middle module of the only
// plane turns health critical (503 with a body) and connects draw
// fabric_failed; one repair brings the plane back.
func TestFabricFailedCritical(t *testing.T) {
	p := testParams()
	ctl := newTestController(t, Config{Fabric: p, Replicas: 1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL,
		client.WithHTTPClient(srv.Client()),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 1})) // 503 must surface, not retry
	ctx := context.Background()

	m := ctl.Params().M
	for mid := 0; mid < m; mid++ {
		if _, err := cl.Fail(ctx, 0, mid); err != nil {
			t.Fatalf("Fail(0, %d): %v", mid, err)
		}
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health on critical plane: %v", err)
	}
	if h.Status != api.HealthCritical || h.FailedMiddles != m {
		t.Fatalf("health = %+v, want critical with all %d middles failed", h, m)
	}
	if _, err := cl.Connect(ctx, "0.0>4.0", -1); !api.IsCode(err, api.CodeFabricFailed) {
		t.Fatalf("connect on dead fabric: err %v, want code %q", err, api.CodeFabricFailed)
	}

	// Unknown plane and unknown module are not_found, not 5xx.
	if _, err := cl.Fail(ctx, 9, 0); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("Fail(9, 0): err %v, want code %q", err, api.CodeNotFound)
	}
	if _, err := cl.Fail(ctx, 0, m+5); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("Fail(0, %d): err %v, want code %q", m+5, err, api.CodeNotFound)
	}

	if _, err := cl.Repair(ctx, 0, 0); err != nil {
		t.Fatalf("Repair(0, 0): %v", err)
	}
	if h, err = cl.Health(ctx); err != nil || h.Status != api.HealthDegraded {
		t.Fatalf("health after partial repair = %+v (err %v), want degraded", h, err)
	}
	if _, err := cl.Connect(ctx, "0.0>4.0", -1); err != nil {
		t.Fatalf("connect on revived fabric: %v", err)
	}
}

// TestSpareMarginProperty is the property behind the whole failure
// plane: with m = bound + f, failing ANY f middle modules — chosen at
// random, injected while connect/disconnect churn is in flight — drops
// zero sessions and blocks zero requests. The margin over the Theorem
// 1/2 bound is exactly the number of survivable failures.
func TestSpareMarginProperty(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 1
	}
	for _, f := range []int{1, 2, 3} {
		f := f
		t.Run(fmt.Sprintf("f=%d", f), func(t *testing.T) {
			for trial := 0; trial < trials; trial++ {
				p := testParams()
				p.M = boundFor(p) + f
				ctl := newTestController(t, Config{Fabric: p, Replicas: 1, Shards: 4})
				rng := rand.New(rand.NewSource(int64(1000*f + trial)))

				// Long-lived sessions so the failed middles carry state.
				var held []uint64
				for _, lane := range [][2]int{{0, 8}, {2, 10}, {4, 12}, {6, 14}} {
					held = append(held, mustConnect(t, ctl, fmt.Sprintf("%d.0>%d.0", lane[0], lane[1]), 0))
				}

				stop := make(chan struct{})
				var wg sync.WaitGroup
				for _, lane := range [][2]int{{1, 9}, {5, 13}} {
					wg.Add(1)
					go func(src, dst int) {
						defer wg.Done()
						conn := mustParse(t, fmt.Sprintf("%d.0>%d.0", src, dst))
						for {
							select {
							case <-stop:
								return
							default:
							}
							id, _, err := ctl.Connect(context.Background(), conn, 0)
							if err != nil {
								t.Errorf("churn connect: %v", err)
								return
							}
							if err := ctl.Disconnect(context.Background(), id); err != nil {
								t.Errorf("churn disconnect: %v", err)
								return
							}
						}
					}(lane[0], lane[1])
				}

				// Fail f distinct random middles while the churn runs.
				failed := rng.Perm(p.M)[:f]
				for _, mid := range failed {
					rep, err := ctl.FailMiddle(context.Background(), 0, mid)
					if err != nil {
						t.Fatalf("FailMiddle(0, %d): %v", mid, err)
					}
					if len(rep.Dropped) != 0 {
						t.Fatalf("FailMiddle(0, %d) dropped %v; m = bound + %d must absorb %v",
							mid, rep.Dropped, f, failed)
					}
				}
				close(stop)
				wg.Wait()

				if b := ctl.Metrics().Blocked(); b != 0 {
					t.Fatalf("blocked %d times failing %v at m = bound + %d", b, failed, f)
				}
				if d := ctl.Metrics().DroppedSessions(); d != 0 {
					t.Fatalf("dropped %d sessions failing %v at m = bound + %d", d, failed, f)
				}
				for _, id := range held {
					if _, ok := ctl.Session(id); !ok {
						t.Fatalf("held session %d lost failing %v", id, failed)
					}
					if err := ctl.Disconnect(context.Background(), id); err != nil {
						t.Fatalf("disconnect held %d: %v", id, err)
					}
				}
				for _, mid := range failed {
					if _, err := ctl.RepairMiddle(context.Background(), 0, mid); err != nil {
						t.Fatalf("RepairMiddle(0, %d): %v", mid, err)
					}
				}
				if h := ctl.Health(); h.Status != api.HealthOK {
					t.Fatalf("health after full repair = %+v, want ok", h)
				}
			}
		})
	}
}

// TestParseChaos pins the chaos schedule grammar used by the load
// generator's -chaos flag.
func TestParseChaos(t *testing.T) {
	events, err := ParseChaos("repair@30s f0:m2, fail@10s f1:m0")
	if err != nil {
		t.Fatalf("ParseChaos: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
	// Sorted by offset regardless of input order.
	if events[0].Action != ChaosFail || events[0].At != 10*time.Second ||
		events[0].Fabric != 1 || events[0].Middle != 0 {
		t.Fatalf("event 0 = %+v, want fail@10s f1:m0", events[0])
	}
	if events[1].Action != ChaosRepair || events[1].At != 30*time.Second ||
		events[1].Fabric != 0 || events[1].Middle != 2 {
		t.Fatalf("event 1 = %+v, want repair@30s f0:m2", events[1])
	}
	if ev, err := ParseChaos(""); err != nil || len(ev) != 0 {
		t.Fatalf("empty schedule: %v, %v", ev, err)
	}
	for _, bad := range []string{"zap@10s f0:m1", "fail@x f0:m1", "fail@10s f0", "fail@10s m1:f0"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("ParseChaos(%q) accepted", bad)
		}
	}
}
