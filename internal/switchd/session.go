package switchd

import (
	"sync"

	"repro/internal/wdm"
)

// session is the controller's record of one live multicast connection.
// It is guarded by its shard's mutex.
type session struct {
	ID       uint64
	Fabric   int // replica index
	ConnID   int // fabric-level connection id
	Conn     wdm.Connection
	Branches int // successful AddBranch count
	// Migrations counts how many times the failure plane moved this
	// session's route off a failed middle module.
	Migrations int
}

func (s *session) info() SessionInfo {
	return SessionInfo{
		ID:         s.ID,
		Fabric:     s.Fabric,
		Conn:       wdm.FormatConnection(s.Conn),
		Fanout:     s.Conn.Fanout(),
		Branches:   s.Branches,
		Migrations: s.Migrations,
	}
}

// sessionShard is one lock domain of the session table.
type sessionShard struct {
	mu sync.Mutex
	m  map[uint64]*session
}

// sessionTable shards sessions by id so bookkeeping for independent
// sessions never contends on one lock. The shard count is fixed at
// construction; shardFor is a pure hash, so a session is always found in
// the shard that stored it.
type sessionTable struct {
	shards []*sessionShard
}

func newSessionTable(shards int) *sessionTable {
	t := &sessionTable{shards: make([]*sessionShard, shards)}
	for i := range t.shards {
		t.shards[i] = &sessionShard{m: make(map[uint64]*session)}
	}
	return t
}

// shardFor returns the shard owning session id. Session ids are dense
// (an atomic counter), so the modulus spreads them uniformly.
func (t *sessionTable) shardFor(id uint64) *sessionShard {
	return t.shards[id%uint64(len(t.shards))]
}

func (t *sessionTable) put(s *session) {
	sh := t.shardFor(s.ID)
	sh.mu.Lock()
	sh.m[s.ID] = s
	sh.mu.Unlock()
}

// len counts live sessions across all shards.
func (t *sessionTable) len() int {
	total := 0
	for _, sh := range t.shards {
		sh.mu.Lock()
		total += len(sh.m)
		sh.mu.Unlock()
	}
	return total
}
