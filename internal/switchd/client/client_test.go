package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs/span"
	"repro/internal/switchd/api"
)

// writeEnvelope emits the /v1 error envelope the way the server does.
func writeEnvelope(w http.ResponseWriter, code string) {
	e := &api.Error{Code: code, Message: "test"}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(api.StatusFor(code))
	json.NewEncoder(w).Encode(api.Envelope{Error: e})
}

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
}

// TestRetryOn429 asserts the backoff loop outlives a transient
// admission_full and that the retry counter reports the sleeps taken.
func TestRetryOn429(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			writeEnvelope(w, api.CodeAdmissionFull)
			return
		}
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 7, Fabric: 1})
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(fastRetry(4)))
	cr, err := c.Connect(context.Background(), "0.0>1.0", -1)
	if err != nil {
		t.Fatalf("Connect after retries: %v", err)
	}
	if cr.Session != 7 || hits.Load() != 3 {
		t.Fatalf("session %d after %d attempts, want 7 after 3", cr.Session, hits.Load())
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestNoRetryOnBlocked: 409 means the fabric state is what it is —
// retrying cannot change the answer, so the client must not.
func TestNoRetryOnBlocked(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeEnvelope(w, api.CodeBlocked)
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(fastRetry(5)))
	_, err := c.Connect(context.Background(), "0.0>1.0", -1)
	if !api.IsCode(err, api.CodeBlocked) {
		t.Fatalf("err = %v, want code %q", err, api.CodeBlocked)
	}
	if hits.Load() != 1 || c.Retries() != 0 {
		t.Fatalf("%d attempts, %d retries; blocked must not retry", hits.Load(), c.Retries())
	}
}

// TestRetryExhausted: a persistent 503 surfaces as the typed api error
// with its HTTP status attached, after exactly MaxAttempts tries.
func TestRetryExhausted(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeEnvelope(w, api.CodeDraining)
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(fastRetry(3)))
	_, err := c.Disconnect(context.Background(), 1)
	if !api.IsCode(err, api.CodeDraining) {
		t.Fatalf("err = %v, want code %q", err, api.CodeDraining)
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("err = %#v, want HTTPStatus 503", err)
	}
	if hits.Load() != 3 || c.Retries() != 2 {
		t.Fatalf("%d attempts, %d retries; want 3 and 2", hits.Load(), c.Retries())
	}
}

// TestTraceparentInjection: an explicit ContextWithTraceparent rides
// every request (and wins over any active span).
func TestTraceparentInjection(t *testing.T) {
	var got atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(span.TraceparentHeader))
		json.NewEncoder(w).Encode(api.Status{})
	}))
	defer srv.Close()

	tp := span.FormatTraceparent(span.NewTraceID(), span.NewSpanID(), span.FlagSampled)
	c := New(srv.URL, WithHTTPClient(srv.Client()))
	if _, err := c.Status(ContextWithTraceparent(context.Background(), tp)); err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got.Load() != tp {
		t.Fatalf("server saw traceparent %q, want %q", got.Load(), tp)
	}
}

// TestHealthCritical503: /v1/health answers 503 with a Health body when
// critical; the client must decode it, not wrap it as an error.
func TestHealthCritical503(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(api.Health{Status: api.HealthCritical, FailedMiddles: 5})
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()))
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health on 503: %v", err)
	}
	if h.Status != api.HealthCritical || h.FailedMiddles != 5 {
		t.Fatalf("health = %+v, want critical with 5 failed middles", h)
	}
}

// TestNonEnvelopeError: a non-/v1 body (a proxy, a panic page) degrades
// to a generic error carrying the status, never a zero api.Error.
func TestNonEnvelopeError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad gateway", http.StatusBadGateway)
	}))
	defer srv.Close()

	c := New(srv.URL+"///", WithHTTPClient(srv.Client())) // trailing slashes trimmed
	_, err := c.Status(context.Background())
	if err == nil || !strings.Contains(err.Error(), "502") {
		t.Fatalf("err = %v, want generic 502 error", err)
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		t.Fatalf("non-envelope body decoded as api.Error %+v", ae)
	}
}

// TestContextCancelCutsBackoff: a canceled context ends the retry loop
// promptly instead of sleeping out the schedule.
func TestContextCancelCutsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, api.CodeAdmissionFull)
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()),
		WithRetry(RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Connect(ctx, "0.0>1.0", -1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the first attempt land in its backoff
	cancel()
	select {
	case err := <-done:
		if !api.IsCode(err, api.CodeAdmissionFull) {
			t.Fatalf("err = %v, want the last observed admission_full", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled context did not cut the backoff short")
	}
}
