package client

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/cluster/ring"
	"repro/internal/switchd/api"
)

// ShardedClient routes session operations across a cluster of switchd
// shards: a consistent-hash ring (internal/cluster/ring) maps a session
// key to its owning shard, and each shard is addressed through its
// primary with automatic failover to the warm standby. Failover needs
// no special cases in the callers because the underlying Client already
// treats connection refused/reset and every 503 code — storage_failed
// on a dying primary, not_primary on a still-promoting standby — as
// retryable: the sharded layer only decides *which endpoint* the next
// attempt goes to.
//
// Sessions are created under a caller-chosen key (the ring input) and
// identified afterwards by (shard, session id): ids are per-shard
// counters, unique only within their shard.

// ShardEndpoints is one shard's address pair. Standby may be empty for
// an unreplicated shard.
type ShardEndpoints struct {
	Primary string `json:"primary"`
	Standby string `json:"standby,omitempty"`
}

// shardState holds one shard's clients and which endpoint currently
// answers: 0 = primary, 1 = standby. The index flips sticky on a
// successful failover so later requests skip the dead endpoint's
// timeout.
type shardState struct {
	clients [2]*Client
	active  atomic.Int32
}

// ShardedClient is safe for concurrent use.
type ShardedClient struct {
	shards []*shardState
	ring   *ring.Ring
}

// NewSharded builds a client over the given shard endpoints; opts apply
// to every per-endpoint Client (retry policy, timeout, HTTP client).
func NewSharded(shards []ShardEndpoints, opts ...Option) (*ShardedClient, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("client: sharded: no shards")
	}
	r, err := ring.New(len(shards), 0)
	if err != nil {
		return nil, fmt.Errorf("client: sharded: %w", err)
	}
	sc := &ShardedClient{ring: r}
	for i, ep := range shards {
		if ep.Primary == "" {
			return nil, fmt.Errorf("client: sharded: shard %d has no primary", i)
		}
		st := &shardState{}
		st.clients[0] = New(ep.Primary, opts...)
		if ep.Standby != "" {
			st.clients[1] = New(ep.Standby, opts...)
		}
		sc.shards = append(sc.shards, st)
	}
	return sc, nil
}

// Shards returns the shard count.
func (sc *ShardedClient) Shards() int { return len(sc.shards) }

// ShardFor maps a session key to its owning shard.
func (sc *ShardedClient) ShardFor(key string) int { return sc.ring.Pick(key) }

// ActiveEndpoint reports which endpoint shard currently targets:
// 0 = primary, 1 = standby.
func (sc *ShardedClient) ActiveEndpoint(shard int) int {
	return int(sc.shards[shard].active.Load())
}

// Retries sums the per-endpoint retry counters.
func (sc *ShardedClient) Retries() int64 {
	var total int64
	for _, st := range sc.shards {
		for _, c := range st.clients {
			if c != nil {
				total += c.Retries()
			}
		}
	}
	return total
}

// IsFailover reports whether err means "this endpoint cannot serve, a
// peer might": transport-level failures (refused, reset, torn) and the
// 503 codes a promotion resolves. It is the ShardedClient's re-route
// predicate; plain callers can use it to decide between giving up and
// re-resolving.
func IsFailover(err error) bool {
	if err == nil {
		return false
	}
	switch api.CodeOf(err) {
	case api.CodeStorageFailed, api.CodeFabricFailed, api.CodeDraining, api.CodeNotPrimary:
		return true
	}
	return transportRetryable(err)
}

// onShard runs fn against the shard's active endpoint, failing over to
// the peer once when the error class says a different node might serve.
// The flip is sticky on success.
func (sc *ShardedClient) onShard(shard int, fn func(*Client) error) error {
	if shard < 0 || shard >= len(sc.shards) {
		return fmt.Errorf("client: sharded: shard %d out of range (have %d)", shard, len(sc.shards))
	}
	st := sc.shards[shard]
	i := st.active.Load()
	if st.clients[i] == nil {
		i = 0
	}
	err := fn(st.clients[i])
	if err == nil || !IsFailover(err) {
		return err
	}
	j := 1 - i
	if st.clients[j] == nil {
		return err
	}
	ferr := fn(st.clients[j])
	if ferr == nil || !IsFailover(ferr) {
		// The peer answered (or failed for a non-failover reason, which
		// is still an answer): make it the shard's active endpoint.
		st.active.Store(j)
		return ferr
	}
	return err
}

// Connect routes a new session on the shard owning key. fabric pins a
// plane within the shard; pass -1 for the controller's choice.
func (sc *ShardedClient) Connect(ctx context.Context, key, connection string, fabric int) (int, api.ConnectResponse, error) {
	shard := sc.ShardFor(key)
	var out api.ConnectResponse
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Connect(ctx, connection, fabric)
		return e
	})
	return shard, out, err
}

// ConnectOn routes a new session on an explicit shard (callers that
// already resolved placement).
func (sc *ShardedClient) ConnectOn(ctx context.Context, shard int, connection string, fabric int) (api.ConnectResponse, error) {
	var out api.ConnectResponse
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Connect(ctx, connection, fabric)
		return e
	})
	return out, err
}

// Branch grows a session on its shard.
func (sc *ShardedClient) Branch(ctx context.Context, shard int, session uint64, dests ...string) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Branch(ctx, session, dests...)
		return e
	})
	return out, err
}

// Disconnect tears a session down on its shard.
func (sc *ShardedClient) Disconnect(ctx context.Context, shard int, session uint64) (api.DisconnectResponse, error) {
	var out api.DisconnectResponse
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Disconnect(ctx, session)
		return e
	})
	return out, err
}

// Session fetches one session's snapshot from its shard.
func (sc *ShardedClient) Session(ctx context.Context, shard int, id uint64) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Session(ctx, id)
		return e
	})
	return out, err
}

// Status fetches one shard's controller status.
func (sc *ShardedClient) Status(ctx context.Context, shard int) (api.Status, error) {
	var out api.Status
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Status(ctx)
		return e
	})
	return out, err
}

// Health fetches one shard's health snapshot (from whichever endpoint
// currently answers).
func (sc *ShardedClient) Health(ctx context.Context, shard int) (api.Health, error) {
	var out api.Health
	err := sc.onShard(shard, func(c *Client) error {
		var e error
		out, e = c.Health(ctx)
		return e
	})
	return out, err
}
