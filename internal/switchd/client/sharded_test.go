package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"

	"repro/internal/switchd/api"
)

// flakyRT fails the first `failures` round trips with err, then
// delegates to the real transport — the unit-test stand-in for a
// primary that dies and comes back (or is replaced).
type flakyRT struct {
	remaining atomic.Int64
	err       error
	next      http.RoundTripper
}

func (f *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, &netOpError{err: f.err}
	}
	return f.next.RoundTrip(req)
}

// netOpError wraps a syscall errno the way net.OpError does, so
// errors.Is unwraps to the errno exactly as with a live dialer.
type netOpError struct{ err error }

func (e *netOpError) Error() string { return "dial tcp: " + e.err.Error() }
func (e *netOpError) Unwrap() error { return e.err }

// TestTransportRetryConnectionRefused: a refused connection must enter
// the same backoff loop as a 503, not surface on the first attempt.
func TestTransportRetryConnectionRefused(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 3, Fabric: 0})
	}))
	defer srv.Close()

	rt := &flakyRT{err: syscall.ECONNREFUSED, next: srv.Client().Transport}
	rt.remaining.Store(2)
	c := New(srv.URL, WithHTTPClient(&http.Client{Transport: rt}), WithRetry(fastRetry(4)))
	cr, err := c.Connect(context.Background(), "0.0>1.0", -1)
	if err != nil {
		t.Fatalf("Connect through refused connections: %v", err)
	}
	if cr.Session != 3 || hits.Load() != 1 {
		t.Fatalf("session %d, server hits %d; want 3 after exactly 1 hit", cr.Session, hits.Load())
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestTransportRetryExhausted: with retries used up the transport error
// itself surfaces, still carrying the errno for IsFailover.
func TestTransportRetryExhausted(t *testing.T) {
	rt := &flakyRT{err: syscall.ECONNREFUSED, next: http.DefaultTransport}
	rt.remaining.Store(100)
	c := New("http://127.0.0.1:1", WithHTTPClient(&http.Client{Transport: rt}), WithRetry(fastRetry(3)))
	_, err := c.Connect(context.Background(), "0.0>1.0", -1)
	if err == nil {
		t.Fatal("Connect succeeded against a permanently refused endpoint")
	}
	if !IsFailover(err) {
		t.Fatalf("exhausted transport error %v not classified as failover", err)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
}

// TestNoTransportRetryOnCancel: context cancellation is the caller's
// signal, never retried.
func TestNoTransportRetryOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New("http://127.0.0.1:1", WithRetry(fastRetry(5)))
	_, err := c.Connect(ctx, "0.0>1.0", -1)
	if err == nil {
		t.Fatal("Connect succeeded with a canceled context")
	}
	if c.Retries() != 0 {
		t.Fatalf("Retries() = %d on a canceled context, want 0", c.Retries())
	}
}

// TestStorageFailedRetryable: storage_failed (503) must retry — on a
// clustered shard it means the primary's log is poisoned and the
// standby is about to take over.
func TestStorageFailedRetryable(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			writeEnvelope(w, api.CodeStorageFailed)
			return
		}
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 9, Fabric: 0})
	}))
	defer srv.Close()

	c := New(srv.URL, WithHTTPClient(srv.Client()), WithRetry(fastRetry(4)))
	cr, err := c.Connect(context.Background(), "0.0>1.0", -1)
	if err != nil {
		t.Fatalf("Connect through storage_failed: %v", err)
	}
	if cr.Session != 9 || hits.Load() != 3 {
		t.Fatalf("session %d after %d hits, want 9 after 3", cr.Session, hits.Load())
	}
}

func TestIsFailoverClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&api.Error{Code: api.CodeStorageFailed}, true},
		{&api.Error{Code: api.CodeNotPrimary}, true},
		{&api.Error{Code: api.CodeDraining}, true},
		{&api.Error{Code: api.CodeFabricFailed}, true},
		{&api.Error{Code: api.CodeBlocked}, false},
		{&api.Error{Code: api.CodeAdmissionFull}, false},
		{&api.Error{Code: api.CodeBadRequest}, false},
		{&netOpError{err: syscall.ECONNREFUSED}, true},
		{&netOpError{err: syscall.ECONNRESET}, true},
		{context.Canceled, false},
	}
	for _, tc := range cases {
		if got := IsFailover(tc.err); got != tc.want {
			t.Errorf("IsFailover(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestShardedFailover: the shard's primary dies (refused), the standby
// answers, and the flip is sticky so the next request skips the corpse.
func TestShardedFailover(t *testing.T) {
	var primaryHits, standbyHits atomic.Int64
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		primaryHits.Add(1)
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 1, Fabric: 0})
	}))
	standby := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		standbyHits.Add(1)
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 2, Fabric: 0})
	}))
	defer standby.Close()

	sc, err := NewSharded(
		[]ShardEndpoints{{Primary: primary.URL, Standby: standby.URL}},
		WithRetry(fastRetry(2)),
	)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}

	if _, _, err := sc.Connect(context.Background(), "key-a", "0.0>1.0", -1); err != nil {
		t.Fatalf("Connect via primary: %v", err)
	}
	if primaryHits.Load() == 0 {
		t.Fatal("primary never served")
	}

	primary.Close() // kill the primary: connects now refuse
	if _, _, err := sc.Connect(context.Background(), "key-b", "0.0>1.0", -1); err != nil {
		t.Fatalf("Connect after primary death: %v", err)
	}
	if standbyHits.Load() == 0 {
		t.Fatal("standby never served after failover")
	}
	if sc.ActiveEndpoint(0) != 1 {
		t.Fatalf("ActiveEndpoint = %d after failover, want 1 (standby)", sc.ActiveEndpoint(0))
	}
	before := standbyHits.Load()
	if _, _, err := sc.Connect(context.Background(), "key-c", "0.0>1.0", -1); err != nil {
		t.Fatalf("Connect after sticky flip: %v", err)
	}
	if standbyHits.Load() != before+1 {
		t.Fatal("sticky failover did not route to the standby directly")
	}
}

// TestShardedNotPrimaryFailsOver: a 503 not_primary from a node that
// lost its role re-routes to the peer within the same call.
func TestShardedNotPrimaryFailsOver(t *testing.T) {
	demoted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, api.CodeNotPrimary)
	}))
	defer demoted.Close()
	serving := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.ConnectResponse{Session: 5, Fabric: 0})
	}))
	defer serving.Close()

	sc, err := NewSharded([]ShardEndpoints{{Primary: demoted.URL, Standby: serving.URL}})
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	_, cr, err := sc.Connect(context.Background(), "key", "0.0>1.0", -1)
	if err != nil {
		t.Fatalf("Connect through not_primary: %v", err)
	}
	if cr.Session != 5 {
		t.Fatalf("session %d, want 5 (served by peer)", cr.Session)
	}
}

// TestShardedPlacement: keys spread across shards deterministically and
// ops address the shard the key resolved to.
func TestShardedPlacement(t *testing.T) {
	const shards = 3
	var hits [shards]atomic.Int64
	var eps []ShardEndpoints
	for i := 0; i < shards; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			json.NewEncoder(w).Encode(api.ConnectResponse{Session: uint64(i), Fabric: 0})
		}))
		defer srv.Close()
		eps = append(eps, ShardEndpoints{Primary: srv.URL})
	}
	sc, err := NewSharded(eps)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	for i := 0; i < 90; i++ {
		key := fmt.Sprintf("session-key-%d", i)
		shard, cr, err := sc.Connect(context.Background(), key, "0.0>1.0", -1)
		if err != nil {
			t.Fatalf("Connect(%q): %v", key, err)
		}
		if int(cr.Session) != shard {
			t.Fatalf("key %q resolved to shard %d but reached server %d", key, shard, cr.Session)
		}
		if again := sc.ShardFor(key); again != shard {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", key, shard, again)
		}
	}
	for i := 0; i < shards; i++ {
		if hits[i].Load() == 0 {
			t.Fatalf("shard %d never hit; placement is degenerate", i)
		}
	}
}
