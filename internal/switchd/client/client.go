// Package client is the typed Go client of the switchd /v1 serving
// API. It speaks the api package's wire contract — requests, responses,
// and the {"error":{"code":...}} envelope — so callers branch on
// api.Error codes (api.IsCode), never on HTTP status lines or message
// text. The in-repo consumers (the loadgen, wdmtop) are built on it;
// nothing in the repository constructs raw /v1 requests.
//
// Construction is functional-options style:
//
//	c := client.New("http://localhost:8047",
//		client.WithTimeout(2*time.Second),
//		client.WithRetry(client.RetryPolicy{MaxAttempts: 4}),
//	)
//
// With a retry policy, requests answered 429 (admission_full) or 503
// (draining, fabric_failed, storage_failed, not_primary) are retried
// with jittered exponential backoff — the statuses that signal "later
// may differ": a derated cap refills as sessions end, a failed plane
// comes back on repair, a standby finishes promoting. Transport-level
// failures with the same property — connection refused/reset, torn
// connections — retry identically, so a client pointed at a failing
// shard rides out the promotion window with no special cases (see
// ShardedClient). 409 blocked is never retried (same fabric state,
// same answer) — and neither are its backend-specific sub-codes
// wavelength_conflict and split_incapable (see IsBlocked/IsPermanent)
// — nor are 4xx client errors or context cancellation.
//
// Tracing: every request carries a W3C traceparent when one is
// available — either from the span active on the context (server-side
// callers) or injected with ContextWithTraceparent (clients that
// generate their own ids to join against /v1/debug/spans).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
)

// RetryPolicy bounds the client's retry loop. The zero value disables
// retries (one attempt).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the first backoff (default 5ms); each retry doubles
	// it up to MaxDelay (default 500ms), then a uniform jitter in
	// [0.5, 1.5) of the delay is applied so synchronized clients spread.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	return p
}

// Client is a typed /v1 API client. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retry   RetryPolicy
	retries atomic.Int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client
// (http.DefaultClient otherwise).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTimeout bounds each request (including all its retries) when the
// caller's context carries no earlier deadline.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.timeout = d } }

// WithRetry enables jittered-exponential-backoff retries on 429/503.
func WithRetry(p RetryPolicy) Option { return func(c *Client) { c.retry = p.withDefaults() } }

// New builds a client for the server at baseURL (no trailing slash
// needed; one is trimmed).
func New(baseURL string, opts ...Option) *Client {
	for len(baseURL) > 0 && baseURL[len(baseURL)-1] == '/' {
		baseURL = baseURL[:len(baseURL)-1]
	}
	c := &Client{base: baseURL, hc: http.DefaultClient, retry: RetryPolicy{}.withDefaults()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Retries returns the total retry attempts (sleeps taken) this client
// has performed.
func (c *Client) Retries() int64 { return c.retries.Load() }

type tpKey struct{}

// ContextWithTraceparent returns a context that makes every request
// sent with it carry the given W3C traceparent header, so the caller
// knows the trace id server-side artifacts will be filed under.
func ContextWithTraceparent(ctx context.Context, traceparent string) context.Context {
	return context.WithValue(ctx, tpKey{}, traceparent)
}

// traceparentFrom resolves the header to send: an explicit
// ContextWithTraceparent wins, else the span active on the context.
func traceparentFrom(ctx context.Context) string {
	if tp, ok := ctx.Value(tpKey{}).(string); ok && tp != "" {
		return tp
	}
	if sp := span.FromContext(ctx); sp.Active() {
		return sp.Traceparent()
	}
	return ""
}

type stKey struct{}

// ContextWithServerTiming returns a context that captures the
// Server-Timing response header of the request sent with it into *dst
// (left "" when the server sent none). The phase-timed endpoints
// (connect/branch/disconnect) report their server-side phase split this
// way — see the loadgen's per-phase report.
func ContextWithServerTiming(ctx context.Context, dst *string) context.Context {
	return context.WithValue(ctx, stKey{}, dst)
}

// retryableStatus reports whether a status line signals a condition a
// backoff can outlive: 429 (admission_full — the cap refills) and 503
// (draining, fabric_failed, storage_failed, not_primary — a repair,
// restart, or promotion changes the answer). All four 503 codes are
// deliberately in scope: storage_failed on a clustered shard means the
// primary is dying and a standby is about to take over, and not_primary
// means a standby has not finished promoting yet — in both cases the
// retry (or the ShardedClient's failover re-route) lands on a serving
// node.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// transportRetryable reports whether a transport-level error (no HTTP
// response at all) is worth retrying: connection refused or reset, a
// torn connection (EOF), or any dial failure. These are exactly the
// failover signals — a killed primary refuses connections — so they
// must retry with the same backoff as a 503, never surface on the
// first attempt. Context cancellation and deadline expiry are the
// caller's own signals and are never retried.
func transportRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// A dying server killing a reused keep-alive connection surfaces as
	// net/http's unexported errServerClosedIdle; the transport only
	// auto-retries it for bodyless requests, so POSTs see it raw and the
	// message is the only handle the stdlib exposes.
	if strings.Contains(err.Error(), "server closed idle connection") {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// do sends one request (with retries) and returns the final status and
// body. body may be nil for GETs; it is re-sent verbatim per attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	if c.timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.timeout)
			defer cancel()
		}
	}
	tp := traceparentFrom(ctx)
	delay := c.retry.BaseDelay
	// backoff sleeps one jittered exponential step; false once the
	// context is done.
	backoff := func() bool {
		jittered := time.Duration(float64(delay) * (0.5 + rand.Float64()))
		c.retries.Add(1)
		t := time.NewTimer(jittered)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
		if delay *= 2; delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
		return true
	}
	for attempt := 1; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if tp != "" {
			req.Header.Set(span.TraceparentHeader, tp)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if attempt >= c.retry.MaxAttempts || !transportRetryable(err) || !backoff() {
				return 0, nil, err
			}
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, nil, err
		}
		if dst, ok := ctx.Value(stKey{}).(*string); ok && dst != nil {
			*dst = resp.Header.Get("Server-Timing")
		}
		if !retryableStatus(resp.StatusCode) || attempt >= c.retry.MaxAttempts {
			return resp.StatusCode, respBody, nil
		}
		// Jittered exponential backoff; a canceled context cuts the wait
		// short and returns the last answer.
		if !backoff() {
			return resp.StatusCode, respBody, nil
		}
	}
}

// decodeError turns a non-2xx response into an *api.Error. A body that
// does not parse as the envelope (a non-/v1 path, a proxy) degrades to
// a generic error carrying the status.
func decodeError(status int, body []byte) error {
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = status
		return env.Error
	}
	return fmt.Errorf("client: unexpected status %d: %s", status, bytes.TrimSpace(body))
}

// call is the common POST/GET + decode path for endpoints with the
// standard 200-or-envelope shape.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	status, respBody, err := c.do(ctx, method, path, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return decodeError(status, respBody)
	}
	if out != nil {
		return json.Unmarshal(respBody, out)
	}
	return nil
}

// Connect routes a new session. fabric pins a plane; pass -1 for the
// controller's choice.
func (c *Client) Connect(ctx context.Context, connection string, fabric int) (api.ConnectResponse, error) {
	req := api.ConnectRequest{Connection: connection}
	if fabric >= 0 {
		req.Fabric = &fabric
	}
	var out api.ConnectResponse
	err := c.call(ctx, http.MethodPost, "/v1/connect", req, &out)
	return out, err
}

// Branch grows a session by additional destination slots (wdm codec
// form, e.g. "12.0").
func (c *Client) Branch(ctx context.Context, session uint64, dests ...string) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := c.call(ctx, http.MethodPost, "/v1/branch", api.BranchRequest{Session: session, Dests: dests}, &out)
	return out, err
}

// Disconnect tears a session down.
func (c *Client) Disconnect(ctx context.Context, session uint64) (api.DisconnectResponse, error) {
	var out api.DisconnectResponse
	err := c.call(ctx, http.MethodPost, "/v1/disconnect", api.DisconnectRequest{Session: session}, &out)
	return out, err
}

// Session fetches one live session's snapshot.
func (c *Client) Session(ctx context.Context, id uint64) (api.SessionInfo, error) {
	var out api.SessionInfo
	err := c.call(ctx, http.MethodGet, "/v1/session?id="+strconv.FormatUint(id, 10), nil, &out)
	return out, err
}

// Status fetches the controller-wide status snapshot.
func (c *Client) Status(ctx context.Context) (api.Status, error) {
	var out api.Status
	err := c.call(ctx, http.MethodGet, "/v1/status", nil, &out)
	return out, err
}

// Fabrics fetches capability discovery: every fabric backend the
// server can serve, with the active one flagged Current.
func (c *Client) Fabrics(ctx context.Context) (api.FabricsResponse, error) {
	var out api.FabricsResponse
	err := c.call(ctx, http.MethodGet, "/v1/fabrics", nil, &out)
	return out, err
}

// Version fetches the server's build and backend identity.
func (c *Client) Version(ctx context.Context) (api.VersionInfo, error) {
	var out api.VersionInfo
	err := c.call(ctx, http.MethodGet, "/v1/version", nil, &out)
	return out, err
}

// IsBlocked reports whether err is the fabric's 409 blocked class —
// the generic blocked code or one of the backend-specific sub-codes
// (wavelength_conflict, split_incapable). None of them are retried by
// the client: the generic class and wavelength_conflict only change
// when fabric occupancy does, and split_incapable never changes (the
// request is structurally unrealizable on its backend — see
// IsPermanent).
func IsBlocked(err error) bool {
	switch api.CodeOf(err) {
	case api.CodeBlocked, api.CodeWavelengthConflict, api.CodeSplitIncapable:
		return true
	}
	return false
}

// IsPermanent reports whether err can never succeed no matter how
// fabric state evolves: split_incapable means the mesh backend's
// splitting structure cannot realize the requested fanout even idle.
// Callers should drop such requests instead of resubmitting them.
func IsPermanent(err error) bool { return api.IsCode(err, api.CodeSplitIncapable) }

// MetricsSnapshot fetches the JSON metrics snapshot.
func (c *Client) MetricsSnapshot(ctx context.Context) (api.Snapshot, error) {
	var out api.Snapshot
	err := c.call(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// Health fetches the failure-plane snapshot. A critical instance
// answers 503 with the same body, so that status decodes as Health too
// rather than as an error — callers branch on Health.Status.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var out api.Health
	status, body, err := c.do(ctx, http.MethodGet, "/v1/health", nil)
	if err != nil {
		return out, err
	}
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		return out, decodeError(status, body)
	}
	return out, json.Unmarshal(body, &out)
}

// Fail marks one middle module of one fabric plane failed and returns
// what the failure plane did to the sessions riding it.
func (c *Client) Fail(ctx context.Context, fabric, middle int) (api.FailReport, error) {
	var out api.FailReport
	err := c.call(ctx, http.MethodPost, "/v1/admin/fail", api.FailRequest{Fabric: fabric, Middle: middle}, &out)
	return out, err
}

// Repair returns a failed middle module to service.
func (c *Client) Repair(ctx context.Context, fabric, middle int) (api.RepairReport, error) {
	var out api.RepairReport
	err := c.call(ctx, http.MethodPost, "/v1/admin/repair", api.FailRequest{Fabric: fabric, Middle: middle}, &out)
	return out, err
}

// SLO fetches the burn-rate engine's snapshot.
func (c *Client) SLO(ctx context.Context) (slo.Snapshot, error) {
	var out slo.Snapshot
	err := c.call(ctx, http.MethodGet, "/v1/slo", nil, &out)
	return out, err
}

// Spans fetches completed traces from the tail-sampled ring. rawQuery
// ("blocked=1", "trace=<id>", "limit=N", or combinations) filters
// server-side; pass "" for everything.
func (c *Client) Spans(ctx context.Context, rawQuery string) (api.SpansResponse, error) {
	path := "/v1/debug/spans"
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	var out api.SpansResponse
	err := c.call(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// Prom fetches the Prometheus text exposition at /metrics.
func (c *Client) Prom(ctx context.Context) (string, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", decodeError(status, body)
	}
	return string(body), nil
}

// Query runs an instant or range query against the server's embedded
// metrics history. rawQuery is the URL-encoded parameter string, e.g.
// "query=rate(wdm_blocked_total[30s])&start=-5m&step=1s".
func (c *Client) Query(ctx context.Context, rawQuery string) (tsdb.QueryResult, error) {
	var out tsdb.QueryResult
	err := c.call(ctx, http.MethodGet, "/v1/query?"+rawQuery, nil, &out)
	return out, err
}

// FleetQuery runs a federated range query at /v1/cluster/query
// (cluster mode: per-shard series gain a shard label plus a summed
// fleet series). The response decodes as a plain QueryResult; the
// federation extras (shard count, down shards) are ignored here.
func (c *Client) FleetQuery(ctx context.Context, rawQuery string) (tsdb.QueryResult, error) {
	var out tsdb.QueryResult
	err := c.call(ctx, http.MethodGet, "/v1/cluster/query?"+rawQuery, nil, &out)
	return out, err
}

// Alerts fetches the alerting rules engine's per-rule states.
func (c *Client) Alerts(ctx context.Context) ([]tsdb.AlertStatus, error) {
	var out struct {
		Alerts []tsdb.AlertStatus `json:"alerts"`
	}
	err := c.call(ctx, http.MethodGet, "/v1/alerts", nil, &out)
	return out.Alerts, err
}

// ReportLoad posts a load generator's offered/achieved self-report,
// published server-side as gauges while fresh.
func (c *Client) ReportLoad(ctx context.Context, rep api.LoadgenReport) error {
	return c.call(ctx, http.MethodPost, "/v1/loadgen", rep, nil)
}

// FleetProm fetches the fleet-merged exposition at /v1/cluster/metrics
// (cluster mode: counters and histograms summed across shards, gauges
// labeled per shard).
func (c *Client) FleetProm(ctx context.Context) (string, error) {
	status, body, err := c.do(ctx, http.MethodGet, "/v1/cluster/metrics", nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", decodeError(status, body)
	}
	return string(body), nil
}
