// Package switchd is the online control plane for the paper's WDM
// multicast switching networks: a long-lived session controller that
// owns one or more fabric replicas and serves Connect / AddBranch /
// Disconnect / Status requests concurrently. Replicas are built behind
// the pluggable backend interface (internal/fabric/backend): the
// three-stage Clos constructions (msw, maw, awg) and the sparse-
// splitting mesh all serve through the same routing, durability, and
// failure planes, selected by Config.Backend.
//
// The offline packages prove and simulate the nonblocking theorems;
// switchd turns them into an externally observable serving invariant:
// when every fabric is provisioned with m at or above the Theorem 1/2
// sufficient bound, the controller's blocked counter stays at zero no
// matter how much admissible traffic arrives, and the metrics endpoint
// exposes exactly that counter.
//
// The same margin is the fault-tolerance budget: middle modules beyond
// the bound are spare capacity, and the failure plane (FailMiddle /
// RepairMiddle, POST /v1/admin/fail|repair) spends it deliberately —
// failing a module live-migrates every session riding it onto the
// spares (ids preserved), and when failures eat into the bound the
// controller enters degraded mode, derating the admission cap in
// proportion to the surviving middle capacity (GET /v1/health).
//
// Concurrency model. A multistage.Network is not safe for concurrent
// use, and the paper's routing is inherently serial per fabric (each
// decision reads the full link-occupancy state). The controller
// therefore serializes route/release per fabric with one mutex per
// replica and gets its concurrency *across* replicas — independent
// fabric planes of identical parameters, the way a real switch stacks
// parallel switching planes. Sessions are recorded in a sharded table
// (hash of the session id picks the shard) so table bookkeeping never
// funnels through a single lock. Lock order is always shard -> fabric;
// no path takes them in the other order, so the pair cannot deadlock.
// The failure plane adds failMu, which serializes fail/repair
// operations against each other only; it is never held together with a
// shard or fabric lock.
package switchd

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/fabric/backend"
	"repro/internal/multistage"
	"repro/internal/obs/prof"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
	"repro/internal/wdm"
)

// Sentinel errors mapped to the api error envelope by the handlers
// (http.go).
var (
	// ErrOverCapacity is returned by Connect when admission control
	// rejects the request: the in-flight session count has reached the
	// effective cap (Config.MaxSessions, derated in degraded mode). The
	// request was never offered to a fabric.
	ErrOverCapacity = errors.New("switchd: session capacity reached")
	// ErrDraining is returned once Drain has begun: the controller no
	// longer accepts new work.
	ErrDraining = errors.New("switchd: controller is draining")
	// ErrUnknownSession is returned for operations on session ids that
	// are not live.
	ErrUnknownSession = errors.New("switchd: unknown session")
	// ErrFabricFailed is returned when the target fabric plane has no
	// working middle modules left (all failed, none repaired).
	ErrFabricFailed = errors.New("switchd: fabric has no working middle modules")
	// ErrStorageFailed is returned when the durable log could not record
	// a mutation (write or fsync failure). The log is fail-stop: once
	// poisoned, every subsequent mutating call returns this error while
	// reads keep serving; restarting the process recovers everything
	// that was acknowledged before the failure.
	ErrStorageFailed = errors.New("switchd: durable log write failed")
)

// Wire types re-exported from the api package (the /v1 contract shared
// with the typed client); switchd keeps the old names as aliases.
type (
	Status         = api.Status
	FabricStatus   = api.FabricStatus
	SessionInfo    = api.SessionInfo
	Snapshot       = api.Snapshot
	FabricSnapshot = api.FabricSnapshot
	OpLatency      = api.OpLatency
	LatencyBucket  = api.LatencyBucket
	SpansResponse  = api.SpansResponse
	Health         = api.Health
)

// Config parameterizes a Controller.
type Config struct {
	// Fabric is the parameter set every replica is built from. It is
	// normalized by New, so M = 0 gives each replica the sufficient
	// nonblocking bound of its backend.
	Fabric multistage.Params
	// Backend names the fabric backend every replica is built with
	// (msw, maw, awg, mesh — see internal/fabric/backend). Empty
	// derives the backend from Fabric.Construction, so configurations
	// written before backends existed keep working unchanged.
	Backend string
	// Replicas is the number of independent fabric planes (default 1).
	// Sessions are spread across planes by session id; requests against
	// different planes proceed concurrently.
	Replicas int
	// Shards is the session-table shard count (default 16).
	Shards int
	// MaxSessions caps live sessions across all replicas; Connect
	// returns ErrOverCapacity beyond it. 0 means unlimited. In degraded
	// mode (failed middle modules eating into the nonblocking bound) the
	// enforced cap is derated below this — see Controller.Health.
	MaxSessions int
	// BlockLog is the capacity of the blocking-forensics ring buffer
	// served at /v1/debug/blocking. 0 means the default (128); a
	// negative value disables forensics.
	BlockLog int
	// CaptureTrace records every fabric operation as a replayable
	// internal/trace history, served at /v1/debug/trace. Off by default:
	// the trace grows without bound for the life of the controller, so
	// it is a debugging mode, not a production default.
	CaptureTrace bool
	// Spans configures the request tracer served at /v1/debug/spans. The
	// zero value enables tracing with defaults (256-trace ring, 5ms slow
	// threshold, 1-in-16 routine sampling); Capacity < 0 disables it.
	Spans span.Config
	// SLO configures the burn-rate engine served at /v1/slo. The zero
	// value gives 99.9% availability and 99% under 1ms over 5m/1h/6h/3d
	// windows.
	SLO slo.Config
	// Prof configures the profiling harness served at /v1/debug/prof:
	// mutex/block sampling rates and the periodic profile-snapshot ring.
	// The zero value serves on-demand profiles only and touches no
	// process-global profiler rate.
	Prof prof.Config
	// Logger receives the controller's structured log output (blocked
	// requests, drains, failure-plane events). Nil means slog.Default().
	Logger *slog.Logger
	// DataDir, when non-empty, enables the durable state plane: every
	// acknowledged mutation is journaled to a write-ahead log under this
	// directory before the request returns, the session table is
	// checkpointed periodically, and New recovers whatever a previous
	// process left behind (see durability.go).
	DataDir string
	// WALSyncDelay is the group-commit latency cap: an append waits at
	// most this long for companions before the batch is fsynced. 0 means
	// the default (2ms); negative means fsync immediately (tests).
	WALSyncDelay time.Duration
	// WALSegmentBytes is the log segment rotation size (default 16MiB).
	WALSegmentBytes int64
	// SnapshotInterval is the checkpoint cadence (default 30s); negative
	// disables the background snapshotter (tests drive WriteSnapshot
	// directly).
	SnapshotInterval time.Duration
	// WALCommitter, when set together with DataDir, extends the group
	// commit's durability barrier: it is called after each batch fsync
	// and before the appends it covers are acknowledged. The cluster
	// replication server uses it to wait for the standby's ack, making
	// "request acknowledged" imply "durable on the standby" (see
	// internal/cluster).
	WALCommitter func(upTo uint64)
	// HistoryInterval enables the embedded metrics history: a background
	// self-scraper samples the controller's own /metrics registry into an
	// in-process time-series store every interval, served at /v1/query
	// (instant and range queries) with downsampling tiers and bounded
	// memory. 0 disables the scraper entirely (the default — history
	// costs a per-interval allocation and tests that pin zero-alloc hot
	// paths must not see it).
	HistoryInterval time.Duration
	// HistoryTiers overrides the retention ladder (nil = raw/15m,
	// 10s/4h, 1m/24h).
	HistoryTiers []tsdb.Tier
	// Alerts are the rules the alerting engine evaluates after every
	// scrape, served at /v1/alerts. Nil means tsdb.DefaultRules(); an
	// explicit empty slice disables alerting while keeping history.
	Alerts []tsdb.Rule
	// AlertWebhook, when non-empty, receives a JSON POST on every alert
	// state transition (pending, firing, resolved).
	AlertWebhook string
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.BlockLog == 0 {
		c.BlockLog = 128
	}
	return c
}

// fabric is one serialized switching plane. cap, when non-nil, records
// the plane's serving history; it is guarded by mu like the network.
// failedMids mirrors len(net.FailedMiddles()) so admission paths can
// read it without the fabric lock. byConn (guarded by mu) maps live
// fabric connection ids to their durable-state metadata; it is only
// populated when the durable log is enabled.
type fabric struct {
	mu         sync.Mutex
	net        backend.Backend
	cap        *traceCap
	byConn     map[int]*connMeta
	failedMids atomic.Int32
}

// Controller is the live control plane. All methods are safe for
// concurrent use.
type Controller struct {
	cfg         Config
	params      multistage.Params // normalized
	backendName string            // resolved fabric backend name
	suffM       int               // the backend's sufficient bound
	fabrics     []*fabric
	sessions    *sessionTable
	metrics     *Metrics
	blockLog    *blockLog
	tracer      *span.Tracer
	sloEng      *slo.Engine
	prof        *prof.Harness
	logger      *slog.Logger

	nextSession atomic.Uint64
	// admitted counts admission-control slots (in-flight Connect
	// attempts plus routed sessions) and is what the effective cap
	// bounds; active counts only routed live sessions and is what
	// ActiveSessions/Status report.
	admitted atomic.Int64
	active   atomic.Int64
	// inflight counts Connect calls between entry and return; Drain
	// waits for it to reach zero so no call that slipped past the
	// draining check can repopulate a swept shard.
	inflight atomic.Int64
	draining atomic.Bool

	// failMu serializes failure-plane operations (FailMiddle /
	// RepairMiddle) and the degraded-state recompute. It is never held
	// together with a shard or fabric lock.
	failMu sync.Mutex
	// effectiveCap is the admission cap Connect enforces: MaxSessions
	// normally, derated below it in degraded mode (0 = unlimited).
	effectiveCap atomic.Int64
	degraded     atomic.Bool

	// Durable state plane (nil/zero unless Config.DataDir is set).
	wal       *durable.Plane
	recovery  *durable.Recovery
	snapStop  chan struct{}
	snapDone  chan struct{}
	snapOnce  sync.Once
	closeOnce sync.Once

	// replProbe, when set, reports the node's replication role and lag
	// for /v1/health and /metrics (see SetReplicationProbe).
	replProbe atomic.Pointer[func() *api.ReplicationHealth]
	// fedProbe, when set, reports federation peer reachability for
	// /v1/health (see SetFederationProbe in history.go).
	fedProbe atomic.Pointer[func() []api.FederationPeerHealth]

	// Metrics history plane (nil unless Config.HistoryInterval > 0).
	startTime  time.Time
	store      *tsdb.Store
	alertEng   *tsdb.AlertEngine
	histCancel context.CancelFunc
	histDone   chan struct{}

	// Last loadgen self-report (see ReportLoadgen): float64 bits of the
	// offered/achieved rates, offered Erlangs, and block rate, plus the
	// report's unix-nano arrival time; the gauges are only published
	// while the report is fresh.
	loadgenOffered   atomic.Uint64
	loadgenAchieved  atomic.Uint64
	loadgenErlangs   atomic.Uint64
	loadgenBlockRate atomic.Uint64
	loadgenAt        atomic.Int64
}

// New builds a controller with cfg.Replicas freshly constructed fabric
// replicas.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	name := cfg.Backend
	if name == "" {
		name = backend.ForConstruction(cfg.Fabric.Construction)
	}
	desc, err := backend.Get(name)
	if err != nil {
		return nil, fmt.Errorf("switchd: %w", err)
	}
	norm, err := desc.Normalize(cfg.Fabric)
	if err != nil {
		return nil, err
	}
	ctl := &Controller{
		cfg:         cfg,
		params:      norm,
		backendName: desc.Name,
		suffM:       desc.Sufficient(norm),
		sessions:    newSessionTable(cfg.Shards),
		metrics:     newMetrics(norm, cfg.Replicas),
		blockLog:    newBlockLog(cfg.BlockLog),
		tracer:      span.NewTracer(cfg.Spans),
		sloEng:      slo.New(cfg.SLO),
		prof:        prof.Start(cfg.Prof),
		logger:      cfg.Logger,
		startTime:   time.Now(),
	}
	if ctl.logger == nil {
		ctl.logger = slog.Default()
	}
	ctl.effectiveCap.Store(int64(cfg.MaxSessions))
	for i := 0; i < cfg.Replicas; i++ {
		net, err := desc.New(norm)
		if err != nil {
			return nil, fmt.Errorf("switchd: building fabric replica %d: %w", i, err)
		}
		f := &fabric{net: net, byConn: make(map[int]*connMeta)}
		if cfg.CaptureTrace {
			f.cap = newTraceCap()
		}
		ctl.fabrics = append(ctl.fabrics, f)
	}
	if cfg.DataDir != "" {
		if err := ctl.openDurable(); err != nil {
			return nil, err
		}
	}
	// The self-scraper starts last: its Collect callback walks the fully
	// built controller (fabrics, durable plane), so nothing may start it
	// earlier.
	if cfg.HistoryInterval > 0 {
		if err := ctl.startHistory(); err != nil {
			ctl.Close()
			return nil, err
		}
	}
	return ctl, nil
}

// Params returns the normalized fabric parameters shared by every
// replica.
func (ctl *Controller) Params() multistage.Params { return ctl.params }

// Backend returns the resolved fabric backend name every replica is
// built with.
func (ctl *Controller) Backend() string { return ctl.backendName }

// Replicas returns the number of fabric planes.
func (ctl *Controller) Replicas() int { return len(ctl.fabrics) }

// ActiveSessions returns the current live session count.
func (ctl *Controller) ActiveSessions() int64 { return ctl.active.Load() }

// Metrics returns the controller's metrics registry.
func (ctl *Controller) Metrics() *Metrics { return ctl.metrics }

// Tracer returns the controller's span tracer (nil when disabled).
func (ctl *Controller) Tracer() *span.Tracer { return ctl.tracer }

// SLO returns the controller's burn-rate engine.
func (ctl *Controller) SLO() *slo.Engine { return ctl.sloEng }

// routeSpanObserver adapts the multistage route observer to the span
// tracer: every middle-stage decision of one fabric operation becomes a
// leaf span under parent. Rejection steps (everything but "selected")
// are marked blocked — they only ever fire on a blocking event, so a
// blocked trace always carries its per-middle rejection spans.
func routeSpanObserver(parent *span.Span) func(multistage.RouteStep) {
	return func(step multistage.RouteStep) {
		ms := parent.StartChild("route.middle")
		ms.SetAttr("middle", step.Middle)
		ms.SetAttr("state", string(step.State))
		ms.SetAttr("wave", step.Wave)
		ms.SetAttr("round", step.Round)
		if len(step.Serves) > 0 {
			ms.SetAttr("serves", step.Serves)
		}
		if len(step.Rejected) > 0 {
			ms.SetAttr("rejected", step.Rejected)
		}
		if step.State != multistage.MiddleSelected {
			ms.SetBlocked("middle " + string(step.State))
		}
		ms.End()
	}
}

// fabricDead reports whether plane i has no working middle modules.
func (ctl *Controller) fabricDead(i int) bool {
	return int(ctl.fabrics[i].failedMids.Load()) >= ctl.params.M
}

// pickFabric maps a session id to its plane. A non-negative pin selects
// a plane explicitly (clients that manage their own slot occupancy pin
// the plane so their admissibility bookkeeping holds); pinning a plane
// with no working middles, or having no working plane at all, returns
// ErrFabricFailed.
func (ctl *Controller) pickFabric(id uint64, pin int) (int, error) {
	if pin >= 0 {
		if pin >= len(ctl.fabrics) {
			return 0, fmt.Errorf("switchd: fabric %d out of range (have %d)", pin, len(ctl.fabrics))
		}
		if ctl.fabricDead(pin) {
			return 0, fmt.Errorf("%w: fabric %d", ErrFabricFailed, pin)
		}
		return pin, nil
	}
	// Unpinned: hash to a plane, then probe past fully-failed ones.
	start := int(id % uint64(len(ctl.fabrics)))
	for off := 0; off < len(ctl.fabrics); off++ {
		plane := (start + off) % len(ctl.fabrics)
		if !ctl.fabricDead(plane) {
			return plane, nil
		}
	}
	return 0, ErrFabricFailed
}

// Connect routes a new multicast session under the caller's context:
// cancellation and deadline are honored up to the moment the fabric
// lock is taken (a routing decision already in flight is never
// abandoned half-way), and when ctx carries an active span (the HTTP
// middleware's root) the controller nests switchd.connect -> fabric.add
// -> route.middle spans under it. pin selects a fabric plane (-1 =
// controller's choice). It returns the session id and the plane the
// session landed on.
func (ctl *Controller) Connect(ctx context.Context, c wdm.Connection, pin int) (id uint64, plane int, err error) {
	return ctl.connect(ctx, nil, c, pin)
}

// connect is Connect's body with phase attribution threaded through: pt
// (nil-safe, usually a caller's stack variable) accumulates where the
// request's time went — admission gate, fabric-lock wait, route search,
// WAL group commit, replication ack. The HTTP handlers pass a stack
// timer and fold it into the phase histograms; the exported method
// passes nil and costs nothing.
func (ctl *Controller) connect(ctx context.Context, pt *phaseTimer, c wdm.Connection, pin int) (id uint64, plane int, err error) {
	// Count the attempt before the draining check so Drain can wait out
	// every Connect that might still put a session into the table.
	ctl.inflight.Add(1)
	defer ctl.inflight.Add(-1)

	ctx, sp := span.Start(ctx, "switchd.connect")
	defer sp.End()
	defer pt.annotate(sp) // runs before sp.End (LIFO)
	sp.SetAttr("connection", wdm.FormatConnection(c))

	admStart := time.Now()
	if ctl.draining.Load() {
		ctl.metrics.drainRejects.Add(1)
		sp.SetError(ErrDraining.Error())
		return 0, 0, ErrDraining
	}
	// Admission control: claim a slot optimistically, release on any
	// failure. This never lets more than the effective cap through even
	// under concurrent contention; the price is that a burst of requests
	// that will fail anyway can transiently hold slots and 429 a request
	// that would have routed. Slots are tracked separately from the
	// routed-session count, so in-flight attempts never appear in
	// ActiveSessions/Status.
	if cap := ctl.effectiveCap.Load(); cap > 0 {
		if ctl.admitted.Add(1) > cap {
			ctl.admitted.Add(-1)
			ctl.metrics.capRejects.Add(1)
			sp.SetError(ErrOverCapacity.Error())
			return 0, 0, ErrOverCapacity
		}
	} else {
		ctl.admitted.Add(1)
	}
	defer func() {
		if err != nil {
			ctl.admitted.Add(-1)
		}
	}()

	id = ctl.nextSession.Add(1)
	plane, err = ctl.pickFabric(id, pin)
	if err != nil {
		ctl.metrics.inadmissible.Add(1)
		sp.SetError(err.Error())
		return 0, 0, err
	}
	sp.SetAttr("session", id)
	sp.SetAttr("fabric", plane)

	// Last cancellation point before the serialized fabric section.
	if cerr := ctx.Err(); cerr != nil {
		sp.SetError(cerr.Error())
		return 0, 0, cerr
	}
	pt.add(phaseAdmission, time.Since(admStart))

	f := ctl.fabrics[plane]
	var connID int
	var addErr error
	var elapsed, lockWait time.Duration
	_, fabSp := span.Start(ctx, "fabric.add")
	fabSp.SetAttr("fabric", plane)
	lockStart := time.Now()
	func() {
		f.mu.Lock()
		lockWait = time.Since(lockStart)
		defer f.mu.Unlock()
		if fabSp.Active() {
			f.net.SetRouteObserver(routeSpanObserver(fabSp))
			defer f.net.SetRouteObserver(nil)
		}
		start := time.Now()
		connID, addErr = f.net.Add(c)
		elapsed = time.Since(start)
		f.cap.add(c, connID, addErr)
	}()
	pt.add(phaseLockWait, lockWait)
	pt.add(phaseRouteSearch, elapsed)

	ctl.metrics.connectLat.observeEx(elapsed, sp.TraceID())
	if addErr == nil || multistage.IsBlocked(addErr) {
		// The SLO counts admissible routing operations only: routed is
		// good, blocked spends error budget; inadmissible requests and
		// admission rejects never reach a fabric.
		ctl.sloEng.Record(addErr == nil, elapsed)
	}
	switch {
	case addErr == nil:
		ctl.metrics.perFabric[plane].routed.Add(1)
		ctl.metrics.perFabric[plane].active.Add(1)
		fabSp.End()
	case multistage.IsBlocked(addErr):
		ctl.metrics.perFabric[plane].blocked.Add(1)
		ctl.metrics.blocked.Add(1)
		fabSp.SetBlocked(addErr.Error())
		fabSp.End()
		rep, _ := multistage.AsBlockReport(addErr)
		ctl.blockLog.record(BlockIncident{
			Time: time.Now(), Op: "connect", Fabric: plane, TraceID: sp.TraceID(),
			Conn: wdm.FormatConnection(c), Error: addErr.Error(), Report: rep,
		})
		return 0, plane, addErr
	default:
		ctl.metrics.inadmissible.Add(1)
		fabSp.SetError(addErr.Error())
		fabSp.End()
		return 0, plane, addErr
	}

	// Publish the session: table insert plus (when durable) the WAL
	// append, in one shard-lock critical section, so the log's record
	// order matches the table's. A journaling failure rolls the route
	// back — the session was never acknowledged.
	s := &session{ID: id, Fabric: plane, ConnID: connID, Conn: c.Normalize()}
	if err = ctl.commitConnect(sp, pt, f, plane, s); err != nil {
		ctl.metrics.perFabric[plane].active.Add(-1)
		sp.SetError(err.Error())
		return 0, plane, err
	}
	ctl.metrics.connectOK.Add(1)
	ctl.active.Add(1)
	return id, plane, nil
}

// AddBranch grows session id by additional destination slots (a new
// receiver joining the multicast) under the caller's context, with the
// same span nesting as Connect (switchd.branch -> fabric.branch ->
// route.middle). The grow is atomic: on failure the session keeps its
// original destination set. Cancellation is honored before the shard
// and fabric locks are taken.
func (ctl *Controller) AddBranch(ctx context.Context, id uint64, dests ...wdm.PortWave) error {
	return ctl.addBranch(ctx, nil, id, dests...)
}

// addBranch is AddBranch's body with phase attribution (see connect).
func (ctl *Controller) addBranch(ctx context.Context, pt *phaseTimer, id uint64, dests ...wdm.PortWave) error {
	ctx, sp := span.Start(ctx, "switchd.branch")
	defer sp.End()
	defer pt.annotate(sp)
	sp.SetAttr("session", id)

	admStart := time.Now()
	if ctl.draining.Load() {
		ctl.metrics.drainRejects.Add(1)
		sp.SetError(ErrDraining.Error())
		return ErrDraining
	}
	if cerr := ctx.Err(); cerr != nil {
		sp.SetError(cerr.Error())
		return cerr
	}
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.m[id]
	if !ok {
		err := fmt.Errorf("%w: %d", ErrUnknownSession, id)
		sp.SetError(err.Error())
		return err
	}
	f := ctl.fabrics[s.Fabric]
	sp.SetAttr("fabric", s.Fabric)
	original := s.Conn
	grown := s.Conn.Clone()
	grown.Dests = append(grown.Dests, dests...)
	grown = grown.Normalize()
	sp.SetAttr("connection", wdm.FormatConnection(grown))
	pt.add(phaseAdmission, time.Since(admStart))
	var err error
	var elapsed, lockWait time.Duration
	_, fabSp := span.Start(ctx, "fabric.branch")
	fabSp.SetAttr("fabric", s.Fabric)
	lockStart := time.Now()
	func() {
		f.mu.Lock()
		lockWait = time.Since(lockStart)
		defer f.mu.Unlock()
		if fabSp.Active() {
			f.net.SetRouteObserver(routeSpanObserver(fabSp))
			defer f.net.SetRouteObserver(nil)
		}
		start := time.Now()
		err = f.net.AddBranch(s.ConnID, dests...)
		elapsed = time.Since(start)
		f.cap.branch(s.ConnID, original, grown, err)
	}()
	pt.add(phaseLockWait, lockWait)
	pt.add(phaseRouteSearch, elapsed)
	ctl.metrics.branchLat.observeEx(elapsed, sp.TraceID())
	if err == nil || multistage.IsBlocked(err) {
		ctl.sloEng.Record(err == nil, elapsed)
	}
	switch {
	case err == nil:
		s.Conn = grown
		s.Branches++
		fabSp.End()
		// Journal the grown route. On failure the grow stays applied —
		// tearing down a live receiver over a bookkeeping error would be
		// worse — but the caller sees storage_failed: the branch may not
		// survive a crash, and the poisoned log fails every later
		// mutation anyway.
		if werr := ctl.commitBranch(sp, pt, f, s); werr != nil {
			sp.SetError(werr.Error())
			return werr
		}
		ctl.metrics.branchOK.Add(1)
		return nil
	case multistage.IsBlocked(err):
		ctl.metrics.perFabric[s.Fabric].blocked.Add(1)
		ctl.metrics.blocked.Add(1)
		fabSp.SetBlocked(err.Error())
		fabSp.End()
		rep, _ := multistage.AsBlockReport(err)
		ctl.blockLog.record(BlockIncident{
			Time: time.Now(), Op: "branch", Fabric: s.Fabric, Session: id, TraceID: sp.TraceID(),
			Conn: wdm.FormatConnection(grown), Error: err.Error(), Report: rep,
		})
		return err
	default:
		ctl.metrics.inadmissible.Add(1)
		fabSp.SetError(err.Error())
		fabSp.End()
		return err
	}
}

// Disconnect tears down a session and frees every slot and link
// wavelength it occupied. Cancellation is honored before the shard lock
// is taken; past that point the release always completes (a half-freed
// session would be worse than a late one).
func (ctl *Controller) Disconnect(ctx context.Context, id uint64) error {
	return ctl.disconnect(ctx, nil, id)
}

// disconnect is Disconnect's body with phase attribution (see connect).
func (ctl *Controller) disconnect(ctx context.Context, pt *phaseTimer, id uint64) error {
	_, sp := span.Start(ctx, "switchd.disconnect")
	defer sp.End()
	defer pt.annotate(sp)
	sp.SetAttr("session", id)
	if cerr := ctx.Err(); cerr != nil {
		sp.SetError(cerr.Error())
		return cerr
	}
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := ctl.disconnectLocked(sp, pt, sh, id); err != nil {
		sp.SetError(err.Error())
		return err
	}
	return nil
}

// disconnectLocked is Disconnect's body; the caller holds sh.mu.
func (ctl *Controller) disconnectLocked(sp *span.Span, pt *phaseTimer, sh *sessionShard, id uint64) error {
	s, ok := sh.m[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	// Journal before releasing: a connect reusing the freed slots must
	// append after this record (see durability.go). On failure the
	// session stays live and visible.
	if werr := ctl.commitDisconnect(sp, pt, s); werr != nil {
		return werr
	}
	f := ctl.fabrics[s.Fabric]
	var err error
	var elapsed, lockWait time.Duration
	lockStart := time.Now()
	func() {
		f.mu.Lock()
		lockWait = time.Since(lockStart)
		defer f.mu.Unlock()
		start := time.Now()
		err = f.net.Release(s.ConnID)
		elapsed = time.Since(start)
		if err == nil {
			f.cap.release(s.ConnID)
		}
	}()
	pt.add(phaseLockWait, lockWait)
	pt.add(phaseRouteSearch, elapsed)
	ctl.metrics.disconnectLat.observe(elapsed)
	if err != nil {
		// A release failure means controller and fabric bookkeeping have
		// diverged; keep the session visible rather than leaking silently.
		return fmt.Errorf("switchd: releasing session %d: %w", id, err)
	}
	delete(sh.m, id)
	ctl.active.Add(-1)
	ctl.admitted.Add(-1)
	ctl.metrics.perFabric[s.Fabric].active.Add(-1)
	ctl.metrics.disconnectOK.Add(1)
	return nil
}

// Session returns a snapshot of a live session.
func (ctl *Controller) Session(id uint64) (SessionInfo, bool) {
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.m[id]
	if !ok {
		return SessionInfo{}, false
	}
	return s.info(), true
}

// Sessions snapshots every live session, ordered by id. Shards are
// locked briefly in turn; the listing is per-shard consistent.
func (ctl *Controller) Sessions() []SessionInfo {
	out := make([]SessionInfo, 0, ctl.sessions.len())
	for _, sh := range ctl.sessions.shards {
		sh.mu.Lock()
		for _, s := range sh.m {
			out = append(out, s.info())
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status snapshots every plane. Each fabric is locked briefly in turn;
// the snapshot is per-plane consistent, not globally atomic.
func (ctl *Controller) Status() Status {
	p := ctl.params
	st := Status{
		Backend:      ctl.backendName,
		Model:        p.Model.String(),
		Construction: p.Construction.String(),
		N:            p.N,
		K:            p.K,
		R:            p.R,
		M:            p.M,
		X:            p.X,
		SufficientM:  ctl.suffM,
		Replicas:     len(ctl.fabrics),
		MaxSessions:  ctl.cfg.MaxSessions,
		Active:       ctl.active.Load(),
		Draining:     ctl.draining.Load(),
	}
	for i, f := range ctl.fabrics {
		var fs FabricStatus
		func() {
			f.mu.Lock()
			defer f.mu.Unlock()
			routed, blocked := f.net.Stats()
			fs = FabricStatus{
				Replica:     i,
				Active:      f.net.Len(),
				Routed:      routed,
				Blocked:     blocked,
				Utilization: f.net.Utilization(),
			}
		}()
		st.Fabrics = append(st.Fabrics, fs)
	}
	return st
}

// DrainSummary reports what Drain tore down.
type DrainSummary struct {
	Released int           `json:"released"`
	Errors   int           `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	// Canceled is set when the caller's context expired before the
	// sweep could prove the table empty; sessions may remain.
	Canceled bool `json:"canceled,omitempty"`
	// StorageError carries the durable-log failure, if any, that the
	// drain hit while journaling disconnects or sealing the log
	// (storage_failed in the error envelope).
	StorageError string `json:"storage_error,omitempty"`
}

// Drain stops admitting new work (Connect and AddBranch return
// ErrDraining) and releases every live session. It is idempotent and
// safe to call while traffic is still arriving: a Connect that passed
// the draining check before it flipped is waited out and its session
// released, so when Drain returns the table holds no releasable session
// and no in-flight request can repopulate it. If ctx expires mid-sweep
// the partial summary is returned with Canceled set (admission stays
// closed; a later Drain call finishes the job).
func (ctl *Controller) Drain(ctx context.Context) DrainSummary {
	start := time.Now()
	ctl.draining.Store(true)
	var sum DrainSummary
	// Sessions whose fabric release failed stay in the table by design
	// (bookkeeping divergence must stay visible); track them so they are
	// counted once and do not keep the sweep loop alive.
	failed := make(map[uint64]bool)
	for {
		if ctx.Err() != nil {
			sum.Canceled = true
			break
		}
		// Observe the in-flight count before sweeping: if it is zero
		// here, every session that will ever exist is already in the
		// table (later Connects see draining and reject), so a full
		// sweep that leaves the table empty means we are done.
		idle := ctl.inflight.Load() == 0
		for _, sh := range ctl.sessions.shards {
			sh.mu.Lock()
			ids := make([]uint64, 0, len(sh.m))
			for id := range sh.m {
				ids = append(ids, id)
			}
			for _, id := range ids {
				if failed[id] {
					continue
				}
				if err := ctl.disconnectLocked(nil, nil, sh, id); err != nil {
					failed[id] = true
					sum.Errors++
					if errors.Is(err, ErrStorageFailed) && sum.StorageError == "" {
						sum.StorageError = err.Error()
					}
					continue
				}
				sum.Released++
			}
			sh.mu.Unlock()
		}
		if idle && ctl.sessions.len() <= len(failed) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Flush and seal the durable log: a clean, complete drain leaves an
	// explicit clean-shutdown marker; a partial one (canceled or
	// release/storage errors, sessions remaining) only flushes, so the
	// log still reflects the surviving sessions.
	if ctl.wal != nil && !sum.Canceled && !ctl.wal.Stats().Sealed {
		ctl.stopSnapshots()
		var serr error
		if sum.Errors == 0 {
			serr = ctl.wal.Seal()
		} else {
			serr = ctl.wal.Sync()
		}
		if serr != nil && sum.StorageError == "" {
			sum.StorageError = serr.Error()
			ctl.logger.Error("drain: sealing durable log", slog.String("error", serr.Error()))
		}
	}
	sum.Elapsed = time.Since(start)
	return sum
}

// Draining reports whether Drain has begun.
func (ctl *Controller) Draining() bool { return ctl.draining.Load() }
