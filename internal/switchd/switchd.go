// Package switchd is the online control plane for the paper's WDM
// multicast switching networks: a long-lived session controller that
// owns one or more fabric replicas (three-stage multistage.Network
// instances) and serves Connect / AddBranch / Disconnect / Status
// requests concurrently.
//
// The offline packages prove and simulate the nonblocking theorems;
// switchd turns them into an externally observable serving invariant:
// when every fabric is provisioned with m at or above the Theorem 1/2
// sufficient bound, the controller's blocked counter stays at zero no
// matter how much admissible traffic arrives, and the metrics endpoint
// exposes exactly that counter.
//
// Concurrency model. A multistage.Network is not safe for concurrent
// use, and the paper's routing is inherently serial per fabric (each
// decision reads the full link-occupancy state). The controller
// therefore serializes route/release per fabric with one mutex per
// replica and gets its concurrency *across* replicas — independent
// fabric planes of identical parameters, the way a real switch stacks
// parallel switching planes. Sessions are recorded in a sharded table
// (hash of the session id picks the shard) so table bookkeeping never
// funnels through a single lock. Lock order is always shard -> fabric;
// no path takes them in the other order, so the pair cannot deadlock.
package switchd

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/multistage"
	"repro/internal/obs/slo"
	"repro/internal/obs/span"
	"repro/internal/wdm"
)

// Sentinel errors mapped to HTTP statuses by the handlers (http.go).
var (
	// ErrOverCapacity is returned by Connect when admission control
	// rejects the request: the in-flight session count has reached
	// Config.MaxSessions. The request was never offered to a fabric.
	ErrOverCapacity = errors.New("switchd: session capacity reached")
	// ErrDraining is returned once Drain has begun: the controller no
	// longer accepts new work.
	ErrDraining = errors.New("switchd: controller is draining")
	// ErrUnknownSession is returned for operations on session ids that
	// are not live.
	ErrUnknownSession = errors.New("switchd: unknown session")
)

// Config parameterizes a Controller.
type Config struct {
	// Fabric is the parameter set every replica is built from. It is
	// normalized by New, so M = 0 gives each replica the sufficient
	// nonblocking bound of its construction's theorem.
	Fabric multistage.Params
	// Replicas is the number of independent fabric planes (default 1).
	// Sessions are spread across planes by session id; requests against
	// different planes proceed concurrently.
	Replicas int
	// Shards is the session-table shard count (default 16).
	Shards int
	// MaxSessions caps live sessions across all replicas; Connect
	// returns ErrOverCapacity beyond it. 0 means unlimited.
	MaxSessions int
	// BlockLog is the capacity of the blocking-forensics ring buffer
	// served at /v1/debug/blocking. 0 means the default (128); a
	// negative value disables forensics.
	BlockLog int
	// CaptureTrace records every fabric operation as a replayable
	// internal/trace history, served at /v1/debug/trace. Off by default:
	// the trace grows without bound for the life of the controller, so
	// it is a debugging mode, not a production default.
	CaptureTrace bool
	// Spans configures the request tracer served at /v1/debug/spans. The
	// zero value enables tracing with defaults (256-trace ring, 5ms slow
	// threshold, 1-in-16 routine sampling); Capacity < 0 disables it.
	Spans span.Config
	// SLO configures the burn-rate engine served at /v1/slo. The zero
	// value gives 99.9% availability and 99% under 1ms over 5m/1h/6h/3d
	// windows.
	SLO slo.Config
	// Logger receives the controller's structured log output (blocked
	// requests, drains). Nil means slog.Default().
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.BlockLog == 0 {
		c.BlockLog = 128
	}
	return c
}

// fabric is one serialized switching plane. cap, when non-nil, records
// the plane's serving history; it is guarded by mu like the network.
type fabric struct {
	mu  sync.Mutex
	net *multistage.Network
	cap *traceCap
}

// Controller is the live control plane. All methods are safe for
// concurrent use.
type Controller struct {
	cfg      Config
	params   multistage.Params // normalized
	fabrics  []*fabric
	sessions *sessionTable
	metrics  *Metrics
	blockLog *blockLog
	tracer   *span.Tracer
	sloEng   *slo.Engine
	logger   *slog.Logger

	nextSession atomic.Uint64
	// admitted counts admission-control slots (in-flight Connect
	// attempts plus routed sessions) and is what MaxSessions caps;
	// active counts only routed live sessions and is what
	// ActiveSessions/Status report.
	admitted atomic.Int64
	active   atomic.Int64
	// inflight counts Connect calls between entry and return; Drain
	// waits for it to reach zero so no call that slipped past the
	// draining check can repopulate the session table behind the sweep.
	inflight atomic.Int64
	draining atomic.Bool
}

// New builds a controller with cfg.Replicas freshly constructed fabric
// replicas.
func New(cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	norm, err := cfg.Fabric.Normalize()
	if err != nil {
		return nil, err
	}
	ctl := &Controller{
		cfg:      cfg,
		params:   norm,
		sessions: newSessionTable(cfg.Shards),
		metrics:  newMetrics(norm, cfg.Replicas),
		blockLog: newBlockLog(cfg.BlockLog),
		tracer:   span.NewTracer(cfg.Spans),
		sloEng:   slo.New(cfg.SLO),
		logger:   cfg.Logger,
	}
	if ctl.logger == nil {
		ctl.logger = slog.Default()
	}
	for i := 0; i < cfg.Replicas; i++ {
		net, err := multistage.New(norm)
		if err != nil {
			return nil, fmt.Errorf("switchd: building fabric replica %d: %w", i, err)
		}
		f := &fabric{net: net}
		if cfg.CaptureTrace {
			f.cap = newTraceCap()
		}
		ctl.fabrics = append(ctl.fabrics, f)
	}
	return ctl, nil
}

// Params returns the normalized fabric parameters shared by every
// replica.
func (ctl *Controller) Params() multistage.Params { return ctl.params }

// Replicas returns the number of fabric planes.
func (ctl *Controller) Replicas() int { return len(ctl.fabrics) }

// ActiveSessions returns the current live session count.
func (ctl *Controller) ActiveSessions() int64 { return ctl.active.Load() }

// Metrics returns the controller's metrics registry.
func (ctl *Controller) Metrics() *Metrics { return ctl.metrics }

// Tracer returns the controller's span tracer (nil when disabled).
func (ctl *Controller) Tracer() *span.Tracer { return ctl.tracer }

// SLO returns the controller's burn-rate engine.
func (ctl *Controller) SLO() *slo.Engine { return ctl.sloEng }

// routeSpanObserver adapts the multistage route observer to the span
// tracer: every middle-stage decision of one fabric operation becomes a
// leaf span under parent. Rejection steps (everything but "selected")
// are marked blocked — they only ever fire on a blocking event, so a
// blocked trace always carries its per-middle rejection spans.
func routeSpanObserver(parent *span.Span) func(multistage.RouteStep) {
	return func(step multistage.RouteStep) {
		ms := parent.StartChild("route.middle")
		ms.SetAttr("middle", step.Middle)
		ms.SetAttr("state", string(step.State))
		ms.SetAttr("wave", step.Wave)
		ms.SetAttr("round", step.Round)
		if len(step.Serves) > 0 {
			ms.SetAttr("serves", step.Serves)
		}
		if len(step.Rejected) > 0 {
			ms.SetAttr("rejected", step.Rejected)
		}
		if step.State != multistage.MiddleSelected {
			ms.SetBlocked("middle " + string(step.State))
		}
		ms.End()
	}
}

// pickFabric maps a session id to its plane. A non-negative pin selects
// a plane explicitly (clients that manage their own slot occupancy pin
// the plane so their admissibility bookkeeping holds).
func (ctl *Controller) pickFabric(id uint64, pin int) (int, error) {
	if pin >= 0 {
		if pin >= len(ctl.fabrics) {
			return 0, fmt.Errorf("switchd: fabric %d out of range (have %d)", pin, len(ctl.fabrics))
		}
		return pin, nil
	}
	return int(id % uint64(len(ctl.fabrics))), nil
}

// Connect routes a new multicast session. pin selects a fabric plane
// (-1 = controller's choice). It returns the session id and the plane
// the session landed on.
func (ctl *Controller) Connect(c wdm.Connection, pin int) (id uint64, plane int, err error) {
	return ctl.ConnectCtx(context.Background(), c, pin)
}

// ConnectCtx is Connect under a caller context: when ctx carries an
// active span (the HTTP middleware's root), the controller nests
// switchd.connect -> fabric.add -> route.middle spans under it and the
// operation's latency-histogram exemplar references that trace.
func (ctl *Controller) ConnectCtx(ctx context.Context, c wdm.Connection, pin int) (id uint64, plane int, err error) {
	// Count the attempt before the draining check so Drain can wait out
	// every Connect that might still put a session into the table.
	ctl.inflight.Add(1)
	defer ctl.inflight.Add(-1)

	ctx, sp := span.Start(ctx, "switchd.connect")
	defer sp.End()
	sp.SetAttr("connection", wdm.FormatConnection(c))

	if ctl.draining.Load() {
		ctl.metrics.drainRejects.Add(1)
		sp.SetError(ErrDraining.Error())
		return 0, 0, ErrDraining
	}
	// Admission control: claim a slot optimistically, release on any
	// failure. This never lets more than MaxSessions through even under
	// concurrent contention; the price is that a burst of requests that
	// will fail anyway can transiently hold slots and 429 a request that
	// would have routed. Slots are tracked separately from the routed-
	// session count, so in-flight attempts never appear in
	// ActiveSessions/Status.
	if cap := int64(ctl.cfg.MaxSessions); cap > 0 {
		if ctl.admitted.Add(1) > cap {
			ctl.admitted.Add(-1)
			ctl.metrics.capRejects.Add(1)
			sp.SetError(ErrOverCapacity.Error())
			return 0, 0, ErrOverCapacity
		}
	} else {
		ctl.admitted.Add(1)
	}
	defer func() {
		if err != nil {
			ctl.admitted.Add(-1)
		}
	}()

	id = ctl.nextSession.Add(1)
	plane, err = ctl.pickFabric(id, pin)
	if err != nil {
		ctl.metrics.inadmissible.Add(1)
		sp.SetError(err.Error())
		return 0, 0, err
	}
	sp.SetAttr("session", id)
	sp.SetAttr("fabric", plane)

	f := ctl.fabrics[plane]
	var connID int
	var addErr error
	var elapsed time.Duration
	_, fabSp := span.Start(ctx, "fabric.add")
	fabSp.SetAttr("fabric", plane)
	func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if fabSp.Active() {
			f.net.SetRouteObserver(routeSpanObserver(fabSp))
			defer f.net.SetRouteObserver(nil)
		}
		start := time.Now()
		connID, addErr = f.net.Add(c)
		elapsed = time.Since(start)
		f.cap.add(c, connID, addErr)
	}()

	ctl.metrics.connectLat.observeEx(elapsed, sp.TraceID())
	if addErr == nil || multistage.IsBlocked(addErr) {
		// The SLO counts admissible routing operations only: routed is
		// good, blocked spends error budget; inadmissible requests and
		// admission rejects never reach a fabric.
		ctl.sloEng.Record(addErr == nil, elapsed)
	}
	switch {
	case addErr == nil:
		ctl.metrics.perFabric[plane].routed.Add(1)
		ctl.metrics.perFabric[plane].active.Add(1)
		ctl.metrics.connectOK.Add(1)
		fabSp.End()
	case multistage.IsBlocked(addErr):
		ctl.metrics.perFabric[plane].blocked.Add(1)
		ctl.metrics.blocked.Add(1)
		fabSp.SetBlocked(addErr.Error())
		fabSp.End()
		rep, _ := multistage.AsBlockReport(addErr)
		ctl.blockLog.record(BlockIncident{
			Time: time.Now(), Op: "connect", Fabric: plane, TraceID: sp.TraceID(),
			Conn: wdm.FormatConnection(c), Error: addErr.Error(), Report: rep,
		})
		return 0, plane, addErr
	default:
		ctl.metrics.inadmissible.Add(1)
		fabSp.SetError(addErr.Error())
		fabSp.End()
		return 0, plane, addErr
	}

	ctl.active.Add(1)
	ctl.sessions.put(&session{ID: id, Fabric: plane, ConnID: connID, Conn: c.Normalize()})
	return id, plane, nil
}

// AddBranch grows session id by additional destination slots (a new
// receiver joining the multicast). The grow is atomic: on failure the
// session keeps its original destination set.
func (ctl *Controller) AddBranch(id uint64, dests ...wdm.PortWave) error {
	return ctl.AddBranchCtx(context.Background(), id, dests...)
}

// AddBranchCtx is AddBranch under a caller context, with the same span
// nesting as ConnectCtx (switchd.branch -> fabric.branch ->
// route.middle).
func (ctl *Controller) AddBranchCtx(ctx context.Context, id uint64, dests ...wdm.PortWave) error {
	ctx, sp := span.Start(ctx, "switchd.branch")
	defer sp.End()
	sp.SetAttr("session", id)

	if ctl.draining.Load() {
		ctl.metrics.drainRejects.Add(1)
		sp.SetError(ErrDraining.Error())
		return ErrDraining
	}
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.m[id]
	if !ok {
		err := fmt.Errorf("%w: %d", ErrUnknownSession, id)
		sp.SetError(err.Error())
		return err
	}
	f := ctl.fabrics[s.Fabric]
	sp.SetAttr("fabric", s.Fabric)
	original := s.Conn
	grown := s.Conn.Clone()
	grown.Dests = append(grown.Dests, dests...)
	grown = grown.Normalize()
	sp.SetAttr("connection", wdm.FormatConnection(grown))
	var err error
	var elapsed time.Duration
	_, fabSp := span.Start(ctx, "fabric.branch")
	fabSp.SetAttr("fabric", s.Fabric)
	func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if fabSp.Active() {
			f.net.SetRouteObserver(routeSpanObserver(fabSp))
			defer f.net.SetRouteObserver(nil)
		}
		start := time.Now()
		err = f.net.AddBranch(s.ConnID, dests...)
		elapsed = time.Since(start)
		f.cap.branch(s.ConnID, original, grown, err)
	}()
	ctl.metrics.branchLat.observeEx(elapsed, sp.TraceID())
	if err == nil || multistage.IsBlocked(err) {
		ctl.sloEng.Record(err == nil, elapsed)
	}
	switch {
	case err == nil:
		s.Conn = grown
		s.Branches++
		ctl.metrics.branchOK.Add(1)
		fabSp.End()
		return nil
	case multistage.IsBlocked(err):
		ctl.metrics.perFabric[s.Fabric].blocked.Add(1)
		ctl.metrics.blocked.Add(1)
		fabSp.SetBlocked(err.Error())
		fabSp.End()
		rep, _ := multistage.AsBlockReport(err)
		ctl.blockLog.record(BlockIncident{
			Time: time.Now(), Op: "branch", Fabric: s.Fabric, Session: id, TraceID: sp.TraceID(),
			Conn: wdm.FormatConnection(grown), Error: err.Error(), Report: rep,
		})
		return err
	default:
		ctl.metrics.inadmissible.Add(1)
		fabSp.SetError(err.Error())
		fabSp.End()
		return err
	}
}

// Disconnect tears down a session and frees every slot and link
// wavelength it occupied.
func (ctl *Controller) Disconnect(id uint64) error {
	return ctl.DisconnectCtx(context.Background(), id)
}

// DisconnectCtx is Disconnect under a caller context, nesting a
// switchd.disconnect span when one is active.
func (ctl *Controller) DisconnectCtx(ctx context.Context, id uint64) error {
	_, sp := span.Start(ctx, "switchd.disconnect")
	defer sp.End()
	sp.SetAttr("session", id)
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := ctl.disconnectLocked(sh, id); err != nil {
		sp.SetError(err.Error())
		return err
	}
	return nil
}

// disconnectLocked is Disconnect's body; the caller holds sh.mu.
func (ctl *Controller) disconnectLocked(sh *sessionShard, id uint64) error {
	s, ok := sh.m[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSession, id)
	}
	f := ctl.fabrics[s.Fabric]
	var err error
	var elapsed time.Duration
	func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		start := time.Now()
		err = f.net.Release(s.ConnID)
		elapsed = time.Since(start)
		if err == nil {
			f.cap.release(s.ConnID)
		}
	}()
	ctl.metrics.disconnectLat.observe(elapsed)
	if err != nil {
		// A release failure means controller and fabric bookkeeping have
		// diverged; keep the session visible rather than leaking silently.
		return fmt.Errorf("switchd: releasing session %d: %w", id, err)
	}
	delete(sh.m, id)
	ctl.active.Add(-1)
	ctl.admitted.Add(-1)
	ctl.metrics.perFabric[s.Fabric].active.Add(-1)
	ctl.metrics.disconnectOK.Add(1)
	return nil
}

// Session returns a snapshot of a live session.
func (ctl *Controller) Session(id uint64) (SessionInfo, bool) {
	sh := ctl.sessions.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s, ok := sh.m[id]
	if !ok {
		return SessionInfo{}, false
	}
	return s.info(), true
}

// FabricStatus is one plane's slice of a Status snapshot.
type FabricStatus struct {
	Replica     int                    `json:"replica"`
	Active      int                    `json:"active"`
	Routed      int64                  `json:"routed"`
	Blocked     int64                  `json:"blocked"`
	Utilization multistage.Utilization `json:"utilization"`
}

// Status is the controller-wide snapshot served by GET /v1/status.
type Status struct {
	Model        string         `json:"model"`
	Construction string         `json:"construction"`
	N            int            `json:"n"`
	K            int            `json:"k"`
	R            int            `json:"r"`
	M            int            `json:"m"`
	X            int            `json:"x"`
	SufficientM  int            `json:"sufficient_m"`
	Replicas     int            `json:"replicas"`
	MaxSessions  int            `json:"max_sessions"`
	Active       int64          `json:"active_sessions"`
	Draining     bool           `json:"draining"`
	Fabrics      []FabricStatus `json:"fabrics"`
}

// Status snapshots every plane. Each fabric is locked briefly in turn;
// the snapshot is per-plane consistent, not globally atomic.
func (ctl *Controller) Status() Status {
	p := ctl.params
	suffM, _ := multistage.SufficientMinM(p.Construction, p.Model, p.N/p.R, p.R, p.K)
	st := Status{
		Model:        p.Model.String(),
		Construction: p.Construction.String(),
		N:            p.N,
		K:            p.K,
		R:            p.R,
		M:            p.M,
		X:            p.X,
		SufficientM:  suffM,
		Replicas:     len(ctl.fabrics),
		MaxSessions:  ctl.cfg.MaxSessions,
		Active:       ctl.active.Load(),
		Draining:     ctl.draining.Load(),
	}
	for i, f := range ctl.fabrics {
		var fs FabricStatus
		func() {
			f.mu.Lock()
			defer f.mu.Unlock()
			routed, blocked := f.net.Stats()
			fs = FabricStatus{
				Replica:     i,
				Active:      f.net.Len(),
				Routed:      routed,
				Blocked:     blocked,
				Utilization: f.net.Utilization(),
			}
		}()
		st.Fabrics = append(st.Fabrics, fs)
	}
	return st
}

// DrainSummary reports what Drain tore down.
type DrainSummary struct {
	Released int           `json:"released"`
	Errors   int           `json:"errors"`
	Elapsed  time.Duration `json:"elapsed_ns"`
}

// Drain stops admitting new work (Connect and AddBranch return
// ErrDraining) and releases every live session. It is idempotent and
// safe to call while traffic is still arriving: a Connect that passed
// the draining check before it flipped is waited out and its session
// released, so when Drain returns the table holds no releasable session
// and no in-flight request can repopulate it.
func (ctl *Controller) Drain() DrainSummary {
	start := time.Now()
	ctl.draining.Store(true)
	var sum DrainSummary
	// Sessions whose fabric release failed stay in the table by design
	// (bookkeeping divergence must stay visible); track them so they are
	// counted once and do not keep the sweep loop alive.
	failed := make(map[uint64]bool)
	for {
		// Observe the in-flight count before sweeping: if it is zero
		// here, every session that will ever exist is already in the
		// table (later Connects see draining and reject), so a full
		// sweep that leaves the table empty means we are done.
		idle := ctl.inflight.Load() == 0
		for _, sh := range ctl.sessions.shards {
			sh.mu.Lock()
			ids := make([]uint64, 0, len(sh.m))
			for id := range sh.m {
				ids = append(ids, id)
			}
			for _, id := range ids {
				if failed[id] {
					continue
				}
				if err := ctl.disconnectLocked(sh, id); err != nil {
					failed[id] = true
					sum.Errors++
					continue
				}
				sum.Released++
			}
			sh.mu.Unlock()
		}
		if idle && ctl.sessions.len() <= len(failed) {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	sum.Elapsed = time.Since(start)
	return sum
}

// Draining reports whether Drain has begun.
func (ctl *Controller) Draining() bool { return ctl.draining.Load() }
