package switchd

import (
	"context"
	"math"
	"net/http"
	"time"

	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
)

// Metrics history plane: a background self-scraper samples the
// controller's own registry (the exact same exposition /metrics
// serves, re-read through the strict parser) into an embedded
// time-series store with downsampling tiers, served at /v1/query; an
// alerting rules engine evaluates after every scrape and serves
// /v1/alerts. Enabled by Config.HistoryInterval > 0; every endpoint
// answers 404 not_found while disabled.

// startHistory builds the store and alert engine and starts the
// scrape loop. Called by New after the controller is fully built.
func (ctl *Controller) startHistory() error {
	cfg := ctl.cfg
	store := tsdb.New(tsdb.Config{
		Interval: cfg.HistoryInterval,
		Tiers:    cfg.HistoryTiers,
		Collect:  ctl.WriteProm,
		Logger:   ctl.logger,
	})
	rules := cfg.Alerts
	if rules == nil {
		rules = tsdb.DefaultRules()
	}
	eng, err := tsdb.NewAlertEngine(store, rules, tsdb.AlertOpts{
		Logger:     ctl.logger,
		WebhookURL: cfg.AlertWebhook,
	})
	if err != nil {
		return err
	}
	ctl.store = store
	ctl.alertEng = eng
	hctx, cancel := context.WithCancel(context.Background())
	ctl.histCancel = cancel
	ctl.histDone = make(chan struct{})
	go func() {
		defer close(ctl.histDone)
		store.Run(hctx, func(at time.Time) { eng.Eval(at) })
	}()
	return nil
}

// stopHistory stops the scrape loop and waits it out. Idempotent via
// closeOnce (only Close/Crash call it).
func (ctl *Controller) stopHistory() {
	if ctl.histCancel != nil {
		ctl.histCancel()
		<-ctl.histDone
	}
}

// History returns the embedded time-series store (nil while disabled).
func (ctl *Controller) History() *tsdb.Store { return ctl.store }

// Alerts returns the alert engine's current per-rule states (nil
// while history is disabled).
func (ctl *Controller) Alerts() []tsdb.AlertStatus {
	if ctl.alertEng == nil {
		return nil
	}
	return ctl.alertEng.Snapshot()
}

// SetFederationProbe registers (or clears, with nil) the callback that
// reports federation peer reachability. The cluster layer sets it when
// peers are configured; its result appears as the federation rows of
// GET /v1/health.
func (ctl *Controller) SetFederationProbe(probe func() []api.FederationPeerHealth) {
	if probe == nil {
		ctl.fedProbe.Store(nil)
		return
	}
	ctl.fedProbe.Store(&probe)
}

// federationHealth runs the registered probe, if any.
func (ctl *Controller) federationHealth() []api.FederationPeerHealth {
	if p := ctl.fedProbe.Load(); p != nil {
		return (*p)()
	}
	return nil
}

// loadgenFreshness bounds how long a loadgen self-report keeps
// publishing gauges after the run stops reporting.
const loadgenFreshness = 15 * time.Second

// ReportLoadgen records a load generator's self-report; while fresh
// (under loadgenFreshness old) it is published as the wdm_loadgen_*
// gauges (offered/achieved rates, offered Erlangs, block rate), so a
// run's offered-vs-achieved curve — and, during an Erlang sweep, the
// current load point and its running blocking probability — lands in
// the metrics history next to the blocking counters it explains.
func (ctl *Controller) ReportLoadgen(rep api.LoadgenReport) {
	ctl.loadgenOffered.Store(math.Float64bits(rep.OfferedRPS))
	ctl.loadgenAchieved.Store(math.Float64bits(rep.AchievedRPS))
	ctl.loadgenErlangs.Store(math.Float64bits(rep.OfferedErlangs))
	ctl.loadgenBlockRate.Store(math.Float64bits(rep.BlockRate))
	ctl.loadgenAt.Store(time.Now().UnixNano())
}

// loadgenRates returns the last self-report if it is still fresh.
func (ctl *Controller) loadgenRates() (rep api.LoadgenReport, ok bool) {
	at := ctl.loadgenAt.Load()
	if at == 0 || time.Since(time.Unix(0, at)) > loadgenFreshness {
		return api.LoadgenReport{}, false
	}
	return api.LoadgenReport{
		OfferedRPS:     math.Float64frombits(ctl.loadgenOffered.Load()),
		AchievedRPS:    math.Float64frombits(ctl.loadgenAchieved.Load()),
		OfferedErlangs: math.Float64frombits(ctl.loadgenErlangs.Load()),
		BlockRate:      math.Float64frombits(ctl.loadgenBlockRate.Load()),
	}, true
}

// handleQuery serves GET /v1/query: instant and range queries over the
// embedded history (?query=, ?start=, ?end=, ?step=).
func (ctl *Controller) handleQuery(w http.ResponseWriter, r *http.Request) {
	if ctl.store == nil {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "metrics history disabled (start with a history interval)")
		return
	}
	expr, opts, err := tsdb.OptsFromValues(r.URL.Query(), time.Now())
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	res, err := ctl.store.Query(expr, opts)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleAlerts serves GET /v1/alerts: every rule's state machine.
func (ctl *Controller) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if ctl.alertEng == nil {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "alerting disabled (start with a history interval)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"alerts": ctl.alertEng.Snapshot()})
}

// handleDebugTSDB serves GET /v1/debug/tsdb: the store's full contents
// (stats plus every series' tiers), the alert-demo CI artifact.
func (ctl *Controller) handleDebugTSDB(w http.ResponseWriter, r *http.Request) {
	if ctl.store == nil {
		writeErrorCode(w, http.StatusNotFound, api.CodeNotFound, "metrics history disabled (start with a history interval)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = ctl.store.DumpJSON(w)
}

// handleLoadgen serves POST /v1/loadgen: the load generator's
// offered/achieved self-report.
func (ctl *Controller) handleLoadgen(w http.ResponseWriter, r *http.Request) {
	var rep api.LoadgenReport
	if !decodeBody(w, r, &rep) {
		return
	}
	ctl.ReportLoadgen(rep)
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
