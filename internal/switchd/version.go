package switchd

import (
	"net/http"
	"runtime"
	"runtime/debug"

	"repro/internal/switchd/api"
)

// Version is the controller's release version, served at /v1/version
// and exposed as the wdm_build_info gauge so fleet dashboards can tell
// which build each shard runs.
const Version = "0.8.0"

// BuildInfo assembles the version metadata for /v1/version: the release
// version, the Go toolchain that built the binary, and — when the
// binary was built from a checkout — the VCS revision and dirty flag.
func BuildInfo() api.VersionInfo {
	vi := api.VersionInfo{Version: Version, GoVersion: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				vi.Revision = s.Value
			case "vcs.modified":
				vi.Dirty = s.Value == "true"
			}
		}
	}
	return vi
}

func (ctl *Controller) handleVersion(w http.ResponseWriter, r *http.Request) {
	vi := BuildInfo()
	vi.Backend = ctl.backendName
	writeJSON(w, http.StatusOK, vi)
}
