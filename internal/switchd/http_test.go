package switchd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/switchd/api"
)

// do issues one request against the controller's handler in-process and
// decodes the JSON response body into out (when non-nil).
func do(t *testing.T, h http.Handler, method, path, body string, out any) int {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w.Code
}

func TestHTTPLifecycle(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 2})
	h := ctl.Handler()

	var cr api.ConnectResponse
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "0.0>5.0,9.0"}`, &cr); code != http.StatusOK {
		t.Fatalf("connect: code %d", code)
	}
	if cr.Session == 0 {
		t.Fatalf("connect returned session 0: %+v", cr)
	}

	var info SessionInfo
	if code := do(t, h, "GET", "/v1/session?id=1", "", &info); code != http.StatusOK || info.Fanout != 2 {
		t.Fatalf("session: code %d info %+v", code, info)
	}

	if code := do(t, h, "POST", "/v1/branch", `{"session": 1, "dests": ["12.0"]}`, &info); code != http.StatusOK {
		t.Fatalf("branch: code %d", code)
	}
	if info.Fanout != 3 || info.Branches != 1 {
		t.Fatalf("branch info = %+v, want fanout 3", info)
	}

	var st Status
	if code := do(t, h, "GET", "/v1/status", "", &st); code != http.StatusOK {
		t.Fatalf("status: code %d", code)
	}
	if st.Active != 1 || st.Replicas != 2 || st.Model != "MSW" {
		t.Fatalf("status = %+v", st)
	}

	var snap Snapshot
	if code := do(t, h, "GET", "/v1/metrics", "", &snap); code != http.StatusOK {
		t.Fatalf("metrics: code %d", code)
	}
	if snap.ConnectOK != 1 || snap.BranchOK != 1 || snap.Blocked != 0 {
		t.Fatalf("metrics = %+v", snap)
	}
	if snap.RouteCount != 2 { // one Add + one AddBranch
		t.Fatalf("route_count = %d, want 2", snap.RouteCount)
	}
	var histTotal int64
	for _, b := range snap.RouteLatency {
		histTotal += b.Count
	}
	if histTotal != snap.RouteCount {
		t.Fatalf("latency histogram sums to %d, want %d", histTotal, snap.RouteCount)
	}

	if code := do(t, h, "POST", "/v1/disconnect", `{"session": 1}`, nil); code != http.StatusOK {
		t.Fatalf("disconnect: code %d", code)
	}
	if code := do(t, h, "GET", "/v1/session?id=1", "", nil); code != http.StatusNotFound {
		t.Fatalf("session after disconnect: code %d, want 404", code)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	p := testParams()
	p.M = 1 // far below the bound: easy to block
	p.X = 1
	ctl := newTestController(t, Config{Fabric: p, Replicas: 1, MaxSessions: 3})
	h := ctl.Handler()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", "POST", "/v1/connect", `{"connection": `, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/connect", `{"conn": "0.0>1.0"}`, http.StatusBadRequest},
		{"bad codec", "POST", "/v1/connect", `{"connection": "zap"}`, http.StatusBadRequest},
		{"get on post", "GET", "/v1/connect", "", http.StatusMethodNotAllowed},
		{"inadmissible model", "POST", "/v1/connect", `{"connection": "0.0>5.1"}`, http.StatusBadRequest}, // MSW wants same λ
		{"unknown session disconnect", "POST", "/v1/disconnect", `{"session": 999}`, http.StatusNotFound},
		{"unknown session branch", "POST", "/v1/branch", `{"session": 999, "dests": ["3.0"]}`, http.StatusNotFound},
		{"empty branch", "POST", "/v1/branch", `{"session": 1, "dests": []}`, http.StatusBadRequest},
		{"bad session query", "GET", "/v1/session?id=x", "", http.StatusBadRequest},
		{"trailing garbage session query", "GET", "/v1/session?id=7abc", "", http.StatusBadRequest},
		{"empty session query", "GET", "/v1/session", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := do(t, h, tc.method, tc.path, tc.body, nil); code != tc.want {
			t.Errorf("%s: code %d, want %d", tc.name, code, tc.want)
		}
	}

	// Occupy the single λ0 path from input module 0 to output module 1,
	// then a second λ0 request to the same output module blocks: 409.
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "0.0>4.0"}`, nil); code != http.StatusOK {
		t.Fatalf("setup connect: code %d", code)
	}
	var env api.Envelope
	req := httptest.NewRequest("POST", "/v1/connect", strings.NewReader(`{"connection": "1.0>5.0"}`))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusConflict {
		t.Fatalf("blocked connect: code %d body %s, want 409", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env.Error == nil || env.Error.Code != api.CodeBlocked {
		t.Fatalf("blocked connect body %q: want error code %q", w.Body.String(), api.CodeBlocked)
	}

	// Fill to the cap (one live already): two more, then 429.
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "4.0>8.0"}`, nil); code != http.StatusOK {
		t.Fatalf("cap fill 1: code %d", code)
	}
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "8.0>12.0"}`, nil); code != http.StatusOK {
		t.Fatalf("cap fill 2: code %d", code)
	}
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "12.0>0.0"}`, nil); code != http.StatusTooManyRequests {
		t.Fatalf("over cap: code %d, want 429", code)
	}

	// Drain: everything released, new work 503.
	ctl.Drain(context.Background())
	if code := do(t, h, "POST", "/v1/connect", `{"connection": "12.0>0.0"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("draining connect: code %d, want 503", code)
	}

	var st Status
	if code := do(t, h, "GET", "/v1/status", "", &st); code != http.StatusOK || !st.Draining || st.Active != 0 {
		t.Fatalf("status after drain: code %d %+v", code, st)
	}
}

func TestExpvarPublish(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams()})
	ctl.Metrics().Publish("switchd-test")
	ctl.Metrics().Publish("switchd-test") // second publish must not panic

	var vars struct {
		Switchd *Snapshot `json:"switchd-test"`
	}
	if code := do(t, ctl.Handler(), "GET", "/debug/vars", "", &vars); code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	if vars.Switchd == nil || vars.Switchd.Model != "MSW" {
		t.Fatalf("/debug/vars missing published registry: %+v", vars.Switchd)
	}
}
