package switchd

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/obs/span"
)

// Phase attribution: every serving request is split into the phases
// below, timed by a stack-allocated phaseTimer threaded through the
// controller's unexported hot-path methods. The timer is deliberately
// allocation-free — a fixed array of duration accumulators, nil-safe on
// every method — so the bench path can run with a nil timer (or a stack
// one) at zero heap cost, benchmark-asserted in phase_alloc_test.go.
//
// The phases answer the question ROADMAP item 1 raises: when the
// 4-core throughput row is slower than 1-core, is the time going to
// lock acquisition (the per-controller mutex funnel), the route search
// itself, the WAL group commit, or the replication ack barrier?

type phase int

const (
	// phaseAdmission is time spent in the admission gate: draining
	// check, cap reservation, fabric pick — everything before the
	// fabric section.
	phaseAdmission phase = iota
	// phaseLockWait is the acquire-to-hold delta on the fabric plane
	// mutex: how long the request queued behind other holders. This is
	// the mutex-funnel number.
	phaseLockWait
	// phaseRouteSearch is time inside the fabric lock spent in the
	// router (Network.Add / AddBranch / Release).
	phaseRouteSearch
	// phaseWALAppend is time waiting for the durable plane's group
	// commit (fsync batch), excluding the replication ack below.
	phaseWALAppend
	// phaseReplAck is the slice of the group commit spent in the
	// cluster Committer barrier waiting for a standby acknowledgement.
	phaseReplAck
	// phaseRespond is response encoding and write (HTTP path only).
	phaseRespond

	numPhases
)

// phaseNames index by phase; these are the `phase` label values of
// wdm_phase_seconds and the Server-Timing metric names.
var phaseNames = [numPhases]string{
	"admission_wait",
	"lock_wait",
	"route_search",
	"wal_append",
	"repl_ack",
	"respond",
}

// phaseAttrs are the span attribute keys, precomputed so annotating an
// active span never concatenates strings on the hot path.
var phaseAttrs = [numPhases]string{
	"phase_admission_wait_us",
	"phase_lock_wait_us",
	"phase_route_search_us",
	"phase_wal_append_us",
	"phase_repl_ack_us",
	"phase_respond_us",
}

// phaseTimer accumulates one request's per-phase durations. The zero
// value is ready; a nil *phaseTimer is a no-op on every method, so the
// exported Controller methods (which have no HTTP response to time)
// pass nil through unchanged.
type phaseTimer struct {
	d [numPhases]time.Duration
}

// add accumulates d into phase p.
func (pt *phaseTimer) add(p phase, d time.Duration) {
	if pt == nil || d < 0 {
		return
	}
	pt.d[p] += d
}

// observe folds the accumulated durations into the per-phase latency
// histograms. traceID attaches an exemplar to each touched phase when
// non-empty (the bench path passes "" and stays allocation-free).
func (pt *phaseTimer) observe(m *Metrics, traceID string) {
	if pt == nil {
		return
	}
	for p := phase(0); p < numPhases; p++ {
		if pt.d[p] > 0 {
			m.phase[p].observeEx(pt.d[p], traceID)
		}
	}
}

// annotate attaches the non-zero phases to sp as microsecond span
// attributes. SetAttr boxes its value, so this only runs against an
// active (sampled) span.
func (pt *phaseTimer) annotate(sp *span.Span) {
	if pt == nil || !sp.Active() {
		return
	}
	for p := phase(0); p < numPhases; p++ {
		if pt.d[p] > 0 {
			sp.SetAttr(phaseAttrs[p], pt.d[p].Microseconds())
		}
	}
}

// serverTiming renders the accumulated phases as a Server-Timing
// header value ("lock_wait;dur=0.041, route_search;dur=0.012", dur in
// milliseconds per the spec). Empty when nothing was timed. Allocates;
// HTTP-path only.
func (pt *phaseTimer) serverTiming() string {
	if pt == nil {
		return ""
	}
	var b strings.Builder
	for p := phase(0); p < numPhases; p++ {
		if pt.d[p] <= 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		b.WriteString(phaseNames[p])
		b.WriteString(";dur=")
		b.WriteString(strconv.FormatFloat(float64(pt.d[p])/1e6, 'f', 3, 64))
	}
	return b.String()
}
