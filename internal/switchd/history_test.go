package switchd

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tsdb"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
)

// drillRules is the shipped invariant rule rescaled to test time: the
// same shape as DefaultRules' blocked_in_nonblocking_regime (rate of
// blocks guarded by the static m-margin) with windows short enough for
// a sub-second drill.
func drillRules() []tsdb.Rule {
	return []tsdb.Rule{{
		Name:    "blocked_in_nonblocking_regime",
		Expr:    "rate(wdm_blocked_total[2s])",
		Op:      ">",
		Value:   0,
		For:     tsdb.Duration(100 * time.Millisecond),
		Guard:   &tsdb.Condition{Expr: "wdm_m_margin", Op: ">=", Value: 0},
		Summary: "blocking while configured at the sufficient bound",
	}}
}

// waitAlertState polls /v1/alerts until the named rule reaches the
// wanted state.
func waitAlertState(t *testing.T, cl *client.Client, rule string, want tsdb.AlertState, deadline time.Duration) tsdb.AlertStatus {
	t.Helper()
	end := time.Now().Add(deadline)
	var last tsdb.AlertStatus
	var seen bool
	for time.Now().Before(end) {
		alerts, err := cl.Alerts(context.Background())
		if err != nil {
			t.Fatalf("GET /v1/alerts: %v", err)
		}
		for _, a := range alerts {
			if a.Rule.Name == rule {
				last, seen = a, true
				if a.State == want {
					return a
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !seen {
		t.Fatalf("rule %s never appeared in /v1/alerts", rule)
	}
	t.Fatalf("rule %s never reached %s (last state %s, value %v)", rule, want, last.State, last.Value)
	return last
}

// TestAlertDrillEndToEnd is the acceptance drill: a fabric configured
// exactly at the sufficient bound (m margin 0, nonblocking by Theorem
// 1) loses most of its middle stage, live traffic blocks, and the
// shipped invariant rule walks inactive → pending → firing; repairing
// the middles clears it. /v1/alerts and the wdm_alert_firing gauge
// must agree at both ends, and the incident must be visible afterwards
// in a /v1/query range.
func TestAlertDrillEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drives live traffic against a failed fabric; skipped in -short")
	}
	ctl := newTestController(t, Config{
		Fabric:          testParams(),
		Replicas:        1,
		HistoryInterval: 25 * time.Millisecond,
		Alerts:          drillRules(),
	})
	defer ctl.Close()
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
	ctx := context.Background()

	// The engine starts quiet: the rule is present and inactive.
	waitAlertState(t, cl, "blocked_in_nonblocking_regime", tsdb.StateInactive, 2*time.Second)

	// Chaos: fail all middles but one. The configured m stays at the
	// bound — wdm_m_margin stays >= 0, so the guard holds and any
	// blocking is a theorem violation worth paging on.
	p := ctl.Params()
	failed := make([]int, 0, p.M-1)
	for mid := 0; mid < p.M-1; mid++ {
		if _, err := ctl.FailMiddle(ctx, 0, mid); err != nil {
			t.Fatalf("FailMiddle(0, %d): %v", mid, err)
		}
		failed = append(failed, mid)
	}

	// Drive closed-loop traffic until the crippled fabric blocks.
	deadline := time.Now().Add(10 * time.Second)
	for seed := int64(1); ctl.Metrics().Blocked() == 0; seed++ {
		if time.Now().After(deadline) {
			t.Fatal("no blocking with one middle left — drill cannot proceed")
		}
		if _, err := Attack(AttackConfig{
			BaseURL: srv.URL, Client: srv.Client(),
			Requests: 300, WorkersPerFabric: 2, TargetLive: 6, Seed: seed,
		}); err != nil {
			t.Fatalf("Attack: %v", err)
		}
	}

	// The rule must escalate to firing, and the exposition gauge must
	// agree with /v1/alerts.
	st := waitAlertState(t, cl, "blocked_in_nonblocking_regime", tsdb.StateFiring, 5*time.Second)
	if st.Value <= 0 {
		t.Fatalf("firing with non-positive value %v", st.Value)
	}
	m := promSnapshot(t, cl)
	lbl := map[string]string{"rule": "blocked_in_nonblocking_regime"}
	if v, ok := m.Value("wdm_alert_firing", lbl); !ok || v != 1 {
		t.Fatalf("wdm_alert_firing = %v,%v while /v1/alerts reports firing", v, ok)
	}

	// Repair plane: restore every failed middle; once the rate window
	// drains, the alert must resolve on its own.
	for _, mid := range failed {
		if _, err := ctl.RepairMiddle(ctx, 0, mid); err != nil {
			t.Fatalf("RepairMiddle(0, %d): %v", mid, err)
		}
	}
	waitAlertState(t, cl, "blocked_in_nonblocking_regime", tsdb.StateInactive, 10*time.Second)
	m = promSnapshot(t, cl)
	if v, ok := m.Value("wdm_alert_firing", lbl); !ok || v != 0 {
		t.Fatalf("wdm_alert_firing = %v,%v after resolve, want 0", v, ok)
	}

	// The incident is queryable after the fact: a range over the drill
	// shows a nonzero blocking rate somewhere.
	v := url.Values{}
	v.Set("query", "rate(wdm_blocked_total[2s])")
	v.Set("start", "-60s")
	v.Set("step", "100ms")
	qr, err := cl.Query(ctx, v.Encode())
	if err != nil {
		t.Fatalf("GET /v1/query: %v", err)
	}
	sawSpike := false
	for _, s := range qr.Series {
		for _, pt := range s.Points {
			if pt.V > 0 {
				sawSpike = true
			}
		}
	}
	if !sawSpike {
		t.Fatalf("range query over the drill shows no blocking spike: %+v", qr)
	}

	// Loadgen self-report lands as gauges next to the history.
	if err := cl.ReportLoad(ctx, api.LoadgenReport{OfferedRPS: 120, AchievedRPS: 97.5}); err != nil {
		t.Fatalf("POST /v1/loadgen: %v", err)
	}
	m = promSnapshot(t, cl)
	if v, ok := m.Value("wdm_loadgen_offered_rps", nil); !ok || v != 120 {
		t.Fatalf("wdm_loadgen_offered_rps = %v,%v want 120", v, ok)
	}
	if v, ok := m.Value("wdm_loadgen_achieved_rps", nil); !ok || v != 97.5 {
		t.Fatalf("wdm_loadgen_achieved_rps = %v,%v want 97.5", v, ok)
	}

	// The debug dump (the CI artifact) is real JSON holding the series.
	resp, err := srv.Client().Get(srv.URL + "/v1/debug/tsdb")
	if err != nil {
		t.Fatalf("GET /v1/debug/tsdb: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/tsdb: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "wdm_blocked_total") {
		t.Fatal("tsdb dump does not contain wdm_blocked_total")
	}
}

// promSnapshot scrapes and strictly parses /metrics.
func promSnapshot(t *testing.T, cl *client.Client) obs.Metrics {
	t.Helper()
	text, err := cl.Prom(context.Background())
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	m, err := obs.ParseProm(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse /metrics: %v", err)
	}
	return m
}

// TestHistoryEndpointsDisabled pins the degraded surface: without a
// history interval the query/alert endpoints answer 404 not_found and
// the exposition carries no tsdb self-metrics.
func TestHistoryEndpointsDisabled(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1})
	srv := httptest.NewServer(ctl.Handler())
	defer srv.Close()
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
	ctx := context.Background()

	if _, err := cl.Query(ctx, "query=wdm_blocked_total"); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("Query on history-less server: %v, want not_found", err)
	}
	if _, err := cl.Alerts(ctx); !api.IsCode(err, api.CodeNotFound) {
		t.Fatalf("Alerts on history-less server: %v, want not_found", err)
	}
	m := promSnapshot(t, cl)
	if _, ok := m.Value("wdm_tsdb_series", nil); ok {
		t.Fatal("tsdb self-metrics exposed while history is disabled")
	}
	// Uptime is unconditional — the self-scrape dead-man's switch
	// needs it on every server.
	if v, ok := m.Value("wdm_uptime_seconds", nil); !ok || v < 0 {
		t.Fatalf("wdm_uptime_seconds = %v,%v", v, ok)
	}
}

// TestFederationHealthRollup pins the satellite: a down federation
// peer degrades an otherwise-ok health rollup and appears as a
// federation row; all-up peers leave the status alone.
func TestFederationHealthRollup(t *testing.T) {
	ctl := newTestController(t, Config{Fabric: testParams(), Replicas: 1})
	defer ctl.Close()

	ctl.SetFederationProbe(func() []api.FederationPeerHealth {
		return []api.FederationPeerHealth{
			{Shard: "0", URL: "http://a", Up: true, LastProbeSeconds: 0.1},
			{Shard: "1", URL: "http://b", Up: true, LastProbeSeconds: 0.1},
		}
	})
	if h := ctl.Health(); h.Status != api.HealthOK || len(h.Federation) != 2 {
		t.Fatalf("all-up: %+v, want ok with 2 federation rows", h)
	}

	ctl.SetFederationProbe(func() []api.FederationPeerHealth {
		return []api.FederationPeerHealth{
			{Shard: "0", URL: "http://a", Up: true, LastProbeSeconds: 0.1},
			{Shard: "1", URL: "http://b", Up: false, Error: "connection refused", LastProbeSeconds: 0.1},
		}
	})
	if h := ctl.Health(); h.Status != api.HealthDegraded {
		t.Fatalf("down peer: status %q, want degraded", h.Status)
	}

	ctl.SetFederationProbe(nil)
	if h := ctl.Health(); len(h.Federation) != 0 {
		t.Fatalf("cleared probe still reports federation rows: %+v", h.Federation)
	}
}
