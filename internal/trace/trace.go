// Package trace records and replays connection-event sequences against
// WDM switching networks. A trace is the exact interface history of a
// network — which multicasts were requested, in what order, which were
// torn down, and what the outcome was — serialized in a line-oriented
// text form:
//
//	# comment
//	add 0.0>1.1,2.0 ok=1
//	add 1.0>2.0 blocked
//	release 1
//
// Traces make blocking incidents reproducible: the dynamic simulator can
// record its run, the failing prefix replays against any network
// configuration (different m, different construction, different
// strategy), and the outcome comparison shows exactly where behaviours
// diverge. The repository's regression corpus for the Theorem 1 gap is
// stored as such traces.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/wdm"
)

// Op is the event type.
type Op int

const (
	// Add requests a connection.
	Add Op = iota
	// Release tears one down (by the id the trace assigned).
	Release
)

// Outcome records what happened to an Add.
type Outcome int

const (
	// OK means the connection was routed; the event carries its id.
	OK Outcome = iota
	// Blocked means the network refused it for lack of internal paths.
	Blocked
	// Rejected means the request was inadmissible (busy slots, model
	// violation) — not a blocking event.
	Rejected
)

// Event is one step of a trace.
type Event struct {
	Op      Op
	Conn    wdm.Connection // for Add
	ID      int            // assigned id for OK adds; target id for Release
	Outcome Outcome        // for Add
}

// Trace is an ordered event list.
type Trace struct {
	Events []Event
}

// Recorder wraps a network and logs every Add/Release with its outcome.
type Recorder struct {
	net       Network
	isBlocked func(error) bool
	trace     Trace
	// ids maps network-assigned ids to trace-local ids (dense, stable
	// across replays even if the network numbers differently).
	ids    map[int]int
	nextID int
}

// Network is the recorded/replayed device interface (same shape as
// sim.Network).
type Network interface {
	Add(wdm.Connection) (int, error)
	Release(int) error
}

// NewRecorder wraps net; isBlocked classifies Add errors (nil means
// "nothing blocks").
func NewRecorder(net Network, isBlocked func(error) bool) *Recorder {
	if isBlocked == nil {
		isBlocked = func(error) bool { return false }
	}
	return &Recorder{net: net, isBlocked: isBlocked, ids: make(map[int]int)}
}

// Add forwards to the network and records the outcome. The returned id
// is the network's id (use it for Release as usual).
func (r *Recorder) Add(c wdm.Connection) (int, error) {
	id, err := r.net.Add(c)
	ev := Event{Op: Add, Conn: c.Clone()}
	switch {
	case err == nil:
		ev.Outcome = OK
		ev.ID = r.nextID
		r.ids[id] = r.nextID
		r.nextID++
	case r.isBlocked(err):
		ev.Outcome = Blocked
	default:
		ev.Outcome = Rejected
	}
	r.trace.Events = append(r.trace.Events, ev)
	return id, err
}

// Release forwards to the network and records the teardown.
func (r *Recorder) Release(id int) error {
	err := r.net.Release(id)
	if err == nil {
		r.trace.Events = append(r.trace.Events, Event{Op: Release, ID: r.ids[id]})
		delete(r.ids, id)
	}
	return err
}

// Trace returns the recorded history (shared storage; copy if you keep
// mutating the recorder).
func (r *Recorder) Trace() *Trace { return &r.trace }

// ReplayResult compares a replay against the recorded outcomes.
type ReplayResult struct {
	Applied    int   // events executed
	OKMatches  int   // adds that succeeded in both runs
	Divergence []int // event indices whose outcome differed
}

// Replay drives the trace's requests against another network and reports
// where outcomes diverge (e.g. an add that blocked in the recording but
// routes with a larger middle stage). Release events for adds that did
// not succeed in this replay are skipped. isBlocked classifies the
// replay network's errors.
func (t *Trace) Replay(net Network, isBlocked func(error) bool) (*ReplayResult, error) {
	if isBlocked == nil {
		isBlocked = func(error) bool { return false }
	}
	res := &ReplayResult{}
	ids := make(map[int]int) // trace id -> replay network id
	for i, ev := range t.Events {
		res.Applied++
		switch ev.Op {
		case Add:
			id, err := net.Add(ev.Conn)
			var got Outcome
			switch {
			case err == nil:
				got = OK
				// Only OK-recorded adds carry a trace id; registering a
				// succeeded-where-recorded-blocked add under ev.ID (zero
				// for blocked events) would clobber trace id 0's mapping.
				if ev.Outcome == OK {
					ids[ev.ID] = id
				}
			case isBlocked(err):
				got = Blocked
			default:
				got = Rejected
			}
			if got != ev.Outcome {
				res.Divergence = append(res.Divergence, i)
			}
			if got == OK && ev.Outcome == OK {
				res.OKMatches++
			}
			// A replay add that succeeded where the recording blocked
			// leaves a live connection the recording never released;
			// tear it down so subsequent slots match the recording.
			if got == OK && ev.Outcome != OK {
				if err := net.Release(id); err != nil {
					return res, fmt.Errorf("trace: event %d: cleanup release: %w", i, err)
				}
			}
		case Release:
			id, ok := ids[ev.ID]
			if !ok {
				continue // the corresponding add did not succeed here
			}
			if err := net.Release(id); err != nil {
				return res, fmt.Errorf("trace: event %d: release %d: %w", i, ev.ID, err)
			}
			delete(ids, ev.ID)
		default:
			return res, fmt.Errorf("trace: event %d: unknown op %d", i, ev.Op)
		}
	}
	return res, nil
}

// Write serializes the trace in the line format documented above.
func (t *Trace) Write(w io.Writer) error {
	for _, ev := range t.Events {
		var line string
		switch ev.Op {
		case Add:
			switch ev.Outcome {
			case OK:
				line = fmt.Sprintf("add %s ok=%d", wdm.FormatConnection(ev.Conn), ev.ID)
			case Blocked:
				line = fmt.Sprintf("add %s blocked", wdm.FormatConnection(ev.Conn))
			case Rejected:
				line = fmt.Sprintf("add %s rejected", wdm.FormatConnection(ev.Conn))
			}
		case Release:
			line = fmt.Sprintf("release %d", ev.ID)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a serialized trace. Blank lines and lines starting with
// '#' are ignored.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "add":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 'add <conn> <outcome>'", lineNo)
			}
			conn, err := wdm.ParseConnection(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			ev := Event{Op: Add, Conn: conn}
			switch {
			case strings.HasPrefix(fields[2], "ok="):
				id, err := strconv.Atoi(strings.TrimPrefix(fields[2], "ok="))
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad id: %v", lineNo, err)
				}
				ev.Outcome, ev.ID = OK, id
			case fields[2] == "blocked":
				ev.Outcome = Blocked
			case fields[2] == "rejected":
				ev.Outcome = Rejected
			default:
				return nil, fmt.Errorf("trace: line %d: unknown outcome %q", lineNo, fields[2])
			}
			t.Events = append(t.Events, ev)
		case "release":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want 'release <id>'", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad id: %v", lineNo, err)
			}
			t.Events = append(t.Events, Event{Op: Release, ID: id})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
