package trace_test

import (
	"fmt"
	"strings"

	"repro/internal/multistage"
	"repro/internal/trace"
	"repro/internal/wdm"
)

// Record a blocking incident on an undersized network, then replay it at
// the sufficient bound: the blocked event diverges (it now routes).
func ExampleTrace_Replay() {
	mk := func(m int) *multistage.Network {
		net, err := multistage.New(multistage.Params{
			N: 4, K: 1, R: 2, M: m, X: 1, Model: wdm.MSW, Lite: true,
		})
		if err != nil {
			panic(err)
		}
		return net
	}
	rec := trace.NewRecorder(mk(1), multistage.IsBlocked)
	rec.Add(wdm.Connection{Source: wdm.PortWave{Port: 0}, Dests: []wdm.PortWave{{Port: 2}}})
	rec.Add(wdm.Connection{Source: wdm.PortWave{Port: 1}, Dests: []wdm.PortWave{{Port: 3}}}) // blocks

	var b strings.Builder
	rec.Trace().Write(&b)
	fmt.Print(b.String())

	res, err := rec.Trace().Replay(mk(4), multistage.IsBlocked)
	if err != nil {
		panic(err)
	}
	fmt.Println("divergences at sufficient m:", len(res.Divergence))
	// Output:
	// add 0.0>2.0 ok=0
	// add 1.0>3.0 blocked
	// divergences at sufficient m: 1
}
