package trace

import (
	"strings"
	"testing"

	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func conn(src wdm.PortWave, dests ...wdm.PortWave) wdm.Connection {
	return wdm.Connection{Source: src, Dests: dests}
}

func TestRecordAndSerializeRoundTrip(t *testing.T) {
	net := crossbar.NewLite(wdm.MAW, wdm.Shape{In: 4, Out: 4, K: 2})
	rec := NewRecorder(net, nil)

	id1, err := rec.Add(conn(pw(0, 0), pw(1, 1), pw(2, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Add(conn(pw(0, 0), pw(3, 0))); err == nil {
		t.Fatal("duplicate source accepted")
	}
	if err := rec.Release(id1); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Add(conn(pw(0, 1), pw(3, 1))); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := rec.Trace().Write(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"add 0.0>1.1,2.0 ok=0", "add 0.0>3.0 rejected", "release 0", "add 0.1>3.1 ok=1"} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized trace missing %q:\n%s", want, text)
		}
	}

	parsed, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != len(rec.Trace().Events) {
		t.Fatalf("parsed %d events, want %d", len(parsed.Events), len(rec.Trace().Events))
	}
	var b2 strings.Builder
	if err := parsed.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != text {
		t.Errorf("round trip differs:\n%s\nvs\n%s", b2.String(), text)
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	text := "# header\n\nadd 0.0>1.0 ok=0\n  # mid\nrelease 0\n"
	tr, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Errorf("%d events, want 2", len(tr.Events))
	}
}

func TestReadErrors(t *testing.T) {
	for _, text := range []string{
		"bogus 1",
		"add 0.0>1.0",
		"add xx ok=0",
		"add 0.0>1.0 ok=abc",
		"add 0.0>1.0 maybe",
		"release",
		"release zz",
	} {
		if _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("Read(%q) accepted", text)
		}
	}
}

// TestReplayReproducesBlocking records a blocking incident on an
// undersized three-stage network, then replays it (a) against an
// identical network — outcomes must match exactly — and (b) against a
// network at the sufficient bound — the blocked event must diverge to
// routed.
func TestReplayReproducesBlocking(t *testing.T) {
	mkNet := func(m int) *multistage.Network {
		net, err := multistage.New(multistage.Params{
			N: 4, K: 1, R: 2, M: m, X: 1, Model: wdm.MSW, Lite: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	rec := NewRecorder(mkNet(1), multistage.IsBlocked)
	if _, err := rec.Add(conn(pw(0, 0), pw(2, 0))); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Add(conn(pw(1, 0), pw(3, 0))); !multistage.IsBlocked(err) {
		t.Fatalf("expected blocking, got %v", err)
	}

	// (a) identical configuration: no divergence.
	same, err := rec.Trace().Replay(mkNet(1), multistage.IsBlocked)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Divergence) != 0 {
		t.Errorf("identical replay diverged at %v", same.Divergence)
	}

	// (b) sufficient m: the blocked add now routes -> one divergence.
	fixed, err := rec.Trace().Replay(mkNet(multistage.Theorem1MinM(2, 2)), multistage.IsBlocked)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed.Divergence) != 1 {
		t.Errorf("fixed replay divergence = %v, want exactly the blocked event", fixed.Divergence)
	}
}

// TestReplayHandlesReleases: ids must map across replays even when the
// replay network numbers connections differently.
func TestReplayHandlesReleases(t *testing.T) {
	d := wdm.Shape{In: 3, Out: 3, K: 1}
	rec := NewRecorder(crossbar.NewLite(wdm.MSW, d), nil)
	idA, _ := rec.Add(conn(pw(0, 0), pw(1, 0)))
	_, _ = rec.Add(conn(pw(1, 0), pw(2, 0)))
	_ = rec.Release(idA)
	_, _ = rec.Add(conn(pw(2, 0), pw(1, 0))) // reuses A's destination port? no: fresh slot

	replayNet := crossbar.NewLite(wdm.MSW, d)
	res, err := rec.Trace().Replay(replayNet, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Divergence) != 0 {
		t.Errorf("divergence: %v", res.Divergence)
	}
	if replayNet.Len() != 2 {
		t.Errorf("replay network holds %d connections, want 2", replayNet.Len())
	}
}

// TestReplayCleansUpUnexpectedSuccess: when a recorded-blocked add
// succeeds on the replay network, the replayer must tear it down so the
// rest of the trace sees the recorded slot state.
func TestReplayCleansUpUnexpectedSuccess(t *testing.T) {
	rec := &Trace{Events: []Event{
		{Op: Add, Conn: conn(pw(0, 0), pw(1, 0)), Outcome: Blocked},
		{Op: Add, Conn: conn(pw(0, 0), pw(2, 0)), Outcome: OK, ID: 0},
	}}
	net := crossbar.NewLite(wdm.MSW, wdm.Shape{In: 3, Out: 3, K: 1})
	res, err := rec.Replay(net, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First event diverges (routes here); second must still succeed
	// because the first was cleaned up.
	if len(res.Divergence) != 1 || res.Divergence[0] != 0 {
		t.Errorf("divergence = %v, want [0]", res.Divergence)
	}
	if net.Len() != 1 {
		t.Errorf("network holds %d, want 1", net.Len())
	}
}

// TestReplayBlockedSuccessDoesNotClobberIDs: a recorded-blocked add
// carries no trace id (the zero value). When such an add succeeds on
// the replay network, its (immediately cleaned-up) replay id must not
// be registered under trace id 0, or a later `release 0` targets the
// wrong — already torn down — connection.
func TestReplayBlockedSuccessDoesNotClobberIDs(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Op: Add, Conn: conn(pw(0, 0), pw(1, 0)), Outcome: OK, ID: 0},
		{Op: Add, Conn: conn(pw(1, 0), pw(2, 0)), Outcome: Blocked},
		{Op: Release, ID: 0},
	}}
	net := crossbar.NewLite(wdm.MSW, wdm.Shape{In: 3, Out: 3, K: 1})
	res, err := tr.Replay(net, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(res.Divergence) != 1 || res.Divergence[0] != 1 {
		t.Errorf("divergence = %v, want [1]", res.Divergence)
	}
	if net.Len() != 0 {
		t.Errorf("network holds %d connections, want 0", net.Len())
	}
}
