package combin

import (
	"reflect"
	"testing"
)

func TestTuplesCount(t *testing.T) {
	cases := []struct {
		k      int
		lo, hi int64
		want   int
	}{
		{1, 1, 5, 5},
		{2, 1, 3, 9},
		{3, 0, 1, 8},
		{2, 2, 2, 1},
		{2, 3, 2, 0}, // empty range
	}
	for _, c := range cases {
		n := 0
		Tuples(c.k, c.lo, c.hi, func([]int64) bool { n++; return true })
		if n != c.want {
			t.Errorf("Tuples(k=%d, %d..%d) visited %d tuples, want %d", c.k, c.lo, c.hi, n, c.want)
		}
	}
}

func TestTuplesLexOrder(t *testing.T) {
	var got [][]int64
	Tuples(2, 1, 2, func(tp []int64) bool {
		cp := append([]int64(nil), tp...)
		got = append(got, cp)
		return true
	})
	want := [][]int64{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tuples order = %v, want %v", got, want)
	}
}

func TestTuplesEarlyStop(t *testing.T) {
	n := 0
	Tuples(3, 0, 9, func([]int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d tuples, want 7", n)
	}
}

func TestMixedRadixCount(t *testing.T) {
	n := 0
	MixedRadix([]int64{2, 3, 4}, func([]int64) bool { n++; return true })
	if n != 24 {
		t.Errorf("MixedRadix(2,3,4) visited %d, want 24", n)
	}
}

func TestMixedRadixZeroRadix(t *testing.T) {
	n := 0
	MixedRadix([]int64{2, 0, 4}, func([]int64) bool { n++; return true })
	if n != 0 {
		t.Errorf("MixedRadix with zero radix visited %d, want 0", n)
	}
}

func TestMixedRadixValuesInRange(t *testing.T) {
	radix := []int64{3, 1, 5}
	MixedRadix(radix, func(tp []int64) bool {
		for i, v := range tp {
			if v < 0 || v >= radix[i] {
				t.Fatalf("value %d at position %d out of range [0, %d)", v, i, radix[i])
			}
		}
		return true
	})
}

func TestSubsetsCount(t *testing.T) {
	for n := 0; n <= 10; n++ {
		count := 0
		Subsets(n, func(uint64) bool { count++; return true })
		if count != 1<<uint(n) {
			t.Errorf("Subsets(%d) visited %d masks, want %d", n, count, 1<<uint(n))
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Subsets(10, func(uint64) bool { count++; return count < 5 })
	if count != 5 {
		t.Errorf("early stop visited %d, want 5", count)
	}
}

func TestKSubsetsCountMatchesBinomial(t *testing.T) {
	for n := 0; n <= 9; n++ {
		for k := 0; k <= n+1; k++ {
			count := int64(0)
			KSubsets(n, k, func([]int) bool { count++; return true })
			want := Binomial(int64(n), int64(k)).Int64()
			if count != want {
				t.Errorf("KSubsets(%d, %d) visited %d, want C = %d", n, k, count, want)
			}
		}
	}
}

func TestKSubsetsSortedAndDistinct(t *testing.T) {
	seen := make(map[string]bool)
	KSubsets(6, 3, func(idx []int) bool {
		key := ""
		for i := 1; i < len(idx); i++ {
			if idx[i] <= idx[i-1] {
				t.Fatalf("subset %v not strictly increasing", idx)
			}
		}
		for _, v := range idx {
			key += string(rune('a' + v))
		}
		if seen[key] {
			t.Fatalf("subset %v visited twice", idx)
		}
		seen[key] = true
		return true
	})
	if len(seen) != 20 {
		t.Errorf("saw %d distinct subsets, want 20", len(seen))
	}
}
