package combin

// Tuples calls fn once for every tuple t of length k with t[i] in
// [lo, hi] (inclusive), in lexicographic order. If fn returns false the
// iteration stops early. The tuple slice is reused between calls; callers
// that retain it must copy it.
//
// Lemma 3's capacity sums range over all tuples (j_1, ..., j_k) with
// 1 <= j_i <= N; this iterator drives those sums and the brute-force
// assignment enumerators.
func Tuples(k int, lo, hi int64, fn func(t []int64) bool) {
	if k < 0 {
		panic("combin: Tuples: negative length")
	}
	if hi < lo {
		return // empty range: no tuples at all (even length-0? see below)
	}
	t := make([]int64, k)
	for i := range t {
		t[i] = lo
	}
	for {
		if !fn(t) {
			return
		}
		// Odometer increment.
		i := k - 1
		for ; i >= 0; i-- {
			if t[i] < hi {
				t[i]++
				break
			}
			t[i] = lo
		}
		if i < 0 {
			return
		}
	}
}

// MixedRadix calls fn once for every tuple t with 0 <= t[i] < radix[i],
// in lexicographic order, stopping early if fn returns false. The tuple
// slice is reused between calls. If any radix is zero there are no tuples.
func MixedRadix(radix []int64, fn func(t []int64) bool) {
	for _, r := range radix {
		if r <= 0 {
			return
		}
	}
	t := make([]int64, len(radix))
	for {
		if !fn(t) {
			return
		}
		i := len(t) - 1
		for ; i >= 0; i-- {
			if t[i] < radix[i]-1 {
				t[i]++
				break
			}
			t[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// Subsets calls fn once for every subset of {0, ..., n-1}, presented as a
// bitmask, in increasing mask order. Stops early if fn returns false.
// n must be at most 62.
func Subsets(n int, fn func(mask uint64) bool) {
	if n < 0 || n > 62 {
		panic("combin: Subsets: n out of range [0, 62]")
	}
	total := uint64(1) << uint(n)
	for mask := uint64(0); mask < total; mask++ {
		if !fn(mask) {
			return
		}
	}
}

// KSubsets calls fn once for every k-element subset of {0, ..., n-1},
// presented as a sorted index slice, in lexicographic order. The slice is
// reused between calls. Stops early if fn returns false.
func KSubsets(n, k int, fn func(idx []int) bool) {
	if k < 0 || n < 0 {
		panic("combin: KSubsets: negative argument")
	}
	if k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination.
		i := k - 1
		for ; i >= 0; i-- {
			if idx[i] < n-k+i {
				break
			}
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
