package combin_test

import (
	"fmt"

	"repro/internal/combin"
)

// The ingredients of the paper's capacity formulas: falling factorials
// (injective pairings), Stirling numbers (destination groupings), exact
// integer root comparisons (the theorems' r^(1/x) terms).
func ExampleStirling2() {
	// S(4, 2): ways to split 4 output-port copies of a wavelength into 2
	// multicast groups.
	fmt.Println(combin.Stirling2(4, 2))
	fmt.Println(combin.Falling(6, 2)) // P(6,2): ordered source choices
	fmt.Println(combin.CeilRoot(100, 3))
	// Output:
	// 7
	// 30
	// 5
}
