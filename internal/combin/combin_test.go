package combin

import (
	"math/big"
	"testing"
	"testing/quick"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

func TestFallingKnownValues(t *testing.T) {
	cases := []struct {
		x, i int64
		want int64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 1, 5},
		{5, 2, 20},
		{5, 5, 120},
		{5, 6, 0}, // more items than slots
		{3, 4, 0}, // ditto
		{10, 3, 720},
		{1, 1, 1},
		{12, 2, 132},
	}
	for _, c := range cases {
		got := Falling(c.x, c.i)
		if got.Cmp(bi(c.want)) != 0 {
			t.Errorf("Falling(%d, %d) = %s, want %d", c.x, c.i, got, c.want)
		}
	}
}

func TestFallingNegativeIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Falling(3, -1) did not panic")
		}
	}()
	Falling(3, -1)
}

func TestFallingEqualsBinomialTimesFactorial(t *testing.T) {
	// P(x, i) = C(x, i) * i! for 0 <= i <= x.
	for x := int64(0); x <= 20; x++ {
		for i := int64(0); i <= x; i++ {
			want := new(big.Int).Mul(Binomial(x, i), Factorial(i))
			got := Falling(x, i)
			if got.Cmp(want) != 0 {
				t.Fatalf("P(%d,%d) = %s, want C*i! = %s", x, i, got, want)
			}
		}
	}
}

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k, want int64
	}{
		{0, 0, 1},
		{5, 0, 1},
		{5, 2, 10},
		{5, 5, 1},
		{5, 6, 0},
		{10, 5, 252},
		{52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got.Cmp(bi(c.want)) != 0 {
			t.Errorf("Binomial(%d, %d) = %s, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	// C(n, k) = C(n-1, k-1) + C(n-1, k), checked by testing/quick.
	f := func(nRaw, kRaw uint8) bool {
		n := int64(nRaw%40) + 1
		k := int64(kRaw%40) + 1
		lhs := Binomial(n, k)
		rhs := new(big.Int).Add(Binomial(n-1, k-1), Binomial(n-1, k))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, 2) did not panic")
		}
	}()
	Binomial(-1, 2)
}

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(int64(n)); got.Cmp(bi(w)) != 0 {
			t.Errorf("Factorial(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestPow(t *testing.T) {
	if got := PowInt64(3, 4); got.Cmp(bi(81)) != 0 {
		t.Errorf("PowInt64(3, 4) = %s, want 81", got)
	}
	if got := PowInt64(7, 0); got.Cmp(bi(1)) != 0 {
		t.Errorf("PowInt64(7, 0) = %s, want 1", got)
	}
	if got := PowInt64(0, 0); got.Cmp(bi(1)) != 0 {
		t.Errorf("PowInt64(0, 0) = %s, want 1 (empty product)", got)
	}
}

func TestPowNegativeExponentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow with negative exponent did not panic")
		}
	}()
	PowInt64(2, -1)
}

func TestStirling2KnownValues(t *testing.T) {
	cases := []struct {
		n, j, want int64
	}{
		{0, 0, 1},
		{1, 0, 0},
		{1, 1, 1},
		{3, 2, 3},
		{4, 2, 7},
		{5, 3, 25},
		{6, 3, 90},
		{7, 4, 350},
		{9, 3, 3025},
		{10, 3, 9330},
		{10, 5, 42525},
		{5, 6, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.n, c.j); got.Cmp(bi(c.want)) != 0 {
			t.Errorf("Stirling2(%d, %d) = %s, want %d", c.n, c.j, got, c.want)
		}
	}
}

func TestStirling2Recurrence(t *testing.T) {
	// S(n, j) = j*S(n-1, j) + S(n-1, j-1), independently of the cached
	// triangle construction order.
	f := func(nRaw, jRaw uint8) bool {
		n := int64(nRaw%30) + 1
		j := int64(jRaw%30) + 1
		lhs := Stirling2(n, j)
		rhs := new(big.Int).Mul(bi(j), Stirling2(n-1, j))
		rhs.Add(rhs, Stirling2(n-1, j-1))
		return lhs.Cmp(rhs) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStirling2ExplicitFormula(t *testing.T) {
	// S(n, j) = (1/j!) * sum_{i=0}^{j} (-1)^i C(j, i) (j-i)^n.
	for n := int64(0); n <= 12; n++ {
		for j := int64(0); j <= n; j++ {
			sum := new(big.Int)
			for i := int64(0); i <= j; i++ {
				term := new(big.Int).Mul(Binomial(j, i), PowInt64(j-i, n))
				if i%2 == 1 {
					sum.Sub(sum, term)
				} else {
					sum.Add(sum, term)
				}
			}
			fact := Factorial(j)
			if new(big.Int).Mod(sum, fact).Sign() != 0 {
				t.Fatalf("explicit Stirling sum for (%d, %d) not divisible by %d!", n, j, j)
			}
			want := sum.Div(sum, fact)
			if got := Stirling2(n, j); got.Cmp(want) != 0 {
				t.Errorf("Stirling2(%d, %d) = %s, want %s", n, j, got, want)
			}
		}
	}
}

func TestStirlingRowSumsToBell(t *testing.T) {
	// Bell numbers: 1, 1, 2, 5, 15, 52, 203, 877, 4140.
	want := []int64{1, 1, 2, 5, 15, 52, 203, 877, 4140}
	for n, w := range want {
		if got := Bell(int64(n)); got.Cmp(bi(w)) != 0 {
			t.Errorf("Bell(%d) = %s, want %d", n, got, w)
		}
	}
}

func TestStirling2ConcurrentAccess(t *testing.T) {
	// The cache must be safe under concurrent growth.
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			for n := int64(0); n < 40; n++ {
				Stirling2(n+seed%3, n/2)
			}
			done <- true
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := Stirling2(10, 5); got.Cmp(bi(42525)) != 0 {
		t.Errorf("Stirling2(10,5) after concurrent access = %s, want 42525", got)
	}
}

func TestRootExceeds(t *testing.T) {
	cases := []struct {
		r, x, t int64
		want    bool
	}{
		{8, 3, 1, true},  // 8^(1/3) = 2 > 1
		{8, 3, 2, false}, // 2 > 2 is false
		{9, 2, 2, true},  // 3 > 2
		{9, 2, 3, false}, // 3 > 3 is false
		{10, 1, 9, true}, // 10 > 9
		{10, 1, 10, false},
		{7, 2, -1, true}, // any positive root exceeds a negative t
		{1, 5, 0, true},  // 1 > 0
	}
	for _, c := range cases {
		if got := RootExceeds(c.r, c.x, c.t); got != c.want {
			t.Errorf("RootExceeds(%d, %d, %d) = %v, want %v", c.r, c.x, c.t, got, c.want)
		}
	}
}

func TestCeilRoot(t *testing.T) {
	cases := []struct {
		r, x, want int64
	}{
		{1, 1, 1},
		{8, 3, 2},
		{9, 3, 3}, // 2^3 = 8 < 9 <= 27
		{16, 2, 4},
		{17, 2, 5},
		{1000000, 2, 1000},
		{1000001, 2, 1001},
		{64, 6, 2},
		{63, 6, 2},
		{65, 6, 3},
	}
	for _, c := range cases {
		if got := CeilRoot(c.r, c.x); got != c.want {
			t.Errorf("CeilRoot(%d, %d) = %d, want %d", c.r, c.x, got, c.want)
		}
	}
}

func TestCeilRootBig(t *testing.T) {
	// Agreement with the int64 version in the shared range.
	for r := int64(1); r <= 2000; r += 37 {
		for x := int64(1); x <= 5; x++ {
			want := CeilRoot(r, x)
			got := CeilRootBig(big.NewInt(r), x)
			if got != want {
				t.Fatalf("CeilRootBig(%d, %d) = %d, want %d", r, x, got, want)
			}
		}
	}
	// A value beyond int64: (10^25)^(1/5) = 10^5.
	huge := new(big.Int).Exp(bi(10), bi(25), nil)
	if got := CeilRootBig(huge, 5); got != 100000 {
		t.Errorf("CeilRootBig(10^25, 5) = %d, want 100000", got)
	}
	huge.Add(huge, bi(1))
	if got := CeilRootBig(huge, 5); got != 100001 {
		t.Errorf("CeilRootBig(10^25+1, 5) = %d, want 100001", got)
	}
}

func TestCeilRootBigPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { CeilRootBig(bi(0), 2) },
		func() { CeilRootBig(bi(5), 0) },
		func() { CeilRootBig(bi(-3), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CeilRootBig accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestCeilRootMatchesDefinition(t *testing.T) {
	f := func(rRaw uint16, xRaw uint8) bool {
		r := int64(rRaw%5000) + 1
		x := int64(xRaw%6) + 1
		c := CeilRoot(r, x)
		// c^x >= r and (c-1)^x < r.
		if !RootAtLeast(c, x, r) {
			return false
		}
		if c > 1 && RootAtLeast(c-1, x, r) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
