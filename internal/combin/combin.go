// Package combin provides the exact integer combinatorics used by the
// multicast-capacity formulas of Yang, Wang and Qiao's "Nonblocking WDM
// Multicast Switching Networks": falling factorials P(x,i), binomial
// coefficients, Stirling numbers of the second kind S(n,j), integer powers
// and integer root tests.
//
// All results are *exact* (math/big); the capacity of even a small WDM
// switch overflows int64 (e.g. the MAW capacity of an 8x8 4-wavelength
// switch has more than 50 decimal digits), so nothing in this package uses
// floating point.
package combin

import (
	"fmt"
	"math/big"
	"sync"
)

// Falling returns the falling factorial
//
//	P(x, i) = x (x-1) ... (x-i+1),
//
// the number of ways to injectively assign i distinguishable items to x
// slots. By convention P(x, 0) = 1. Falling panics if i < 0.
// If i > x (with x >= 0) the product contains a zero term and the result
// is 0, matching the combinatorial meaning.
func Falling(x, i int64) *big.Int {
	if i < 0 {
		panic(fmt.Sprintf("combin: Falling(%d, %d): negative i", x, i))
	}
	result := big.NewInt(1)
	var term big.Int
	for t := int64(0); t < i; t++ {
		f := x - t
		if f == 0 {
			return big.NewInt(0)
		}
		result.Mul(result, term.SetInt64(f))
	}
	return result
}

// Binomial returns the binomial coefficient C(n, k). It panics if n or k is
// negative; it returns 0 when k > n, matching the combinatorial meaning.
func Binomial(n, k int64) *big.Int {
	if n < 0 || k < 0 {
		panic(fmt.Sprintf("combin: Binomial(%d, %d): negative argument", n, k))
	}
	if k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(n, k)
}

// Factorial returns n!. It panics if n is negative.
func Factorial(n int64) *big.Int {
	if n < 0 {
		panic(fmt.Sprintf("combin: Factorial(%d): negative argument", n))
	}
	return new(big.Int).MulRange(1, n)
}

// Pow returns base**exp for non-negative exp. It panics if exp is negative.
func Pow(base *big.Int, exp int64) *big.Int {
	if exp < 0 {
		panic(fmt.Sprintf("combin: Pow(_, %d): negative exponent", exp))
	}
	return new(big.Int).Exp(base, big.NewInt(exp), nil)
}

// PowInt64 returns base**exp as a big integer for int64 base and
// non-negative exp.
func PowInt64(base, exp int64) *big.Int {
	return Pow(big.NewInt(base), exp)
}

// stirlingCache memoizes rows of the Stirling-number triangle. Rows are
// computed once per process and shared; access is guarded by a mutex
// because benchmarks exercise the formulas from parallel goroutines.
var stirlingCache = struct {
	sync.Mutex
	rows [][]*big.Int // rows[n][j] = S(n, j), j in [0, n]
}{}

// Stirling2 returns S(n, j), the Stirling number of the second kind: the
// number of ways to partition a set of n elements into j non-empty
// unlabelled groups. S(0, 0) = 1; S(n, 0) = 0 for n > 0; S(n, j) = 0 for
// j > n. Stirling2 panics on negative arguments.
//
// The paper's Lemma 3 uses S(N, j) to count the ways the N copies of an
// output wavelength (one per output port) can be divided into the
// destination sets of j distinct multicast connections.
func Stirling2(n, j int64) *big.Int {
	if n < 0 || j < 0 {
		panic(fmt.Sprintf("combin: Stirling2(%d, %d): negative argument", n, j))
	}
	if j > n {
		return big.NewInt(0)
	}
	stirlingCache.Lock()
	defer stirlingCache.Unlock()
	for int64(len(stirlingCache.rows)) <= n {
		m := int64(len(stirlingCache.rows))
		row := make([]*big.Int, m+1)
		if m == 0 {
			row[0] = big.NewInt(1)
		} else {
			prev := stirlingCache.rows[m-1]
			row[0] = big.NewInt(0)
			for q := int64(1); q <= m; q++ {
				// S(m, q) = q*S(m-1, q) + S(m-1, q-1)
				v := new(big.Int)
				if q < m {
					v.Mul(big.NewInt(q), prev[q])
				}
				v.Add(v, prev[q-1])
				row[q] = v
			}
		}
		stirlingCache.rows = append(stirlingCache.rows, row)
	}
	return new(big.Int).Set(stirlingCache.rows[n][j])
}

// Bell returns the n-th Bell number, the total number of partitions of an
// n-element set: Bell(n) = sum_j S(n, j). Used only as a cross-check of the
// Stirling triangle in tests and verification tools.
func Bell(n int64) *big.Int {
	sum := big.NewInt(0)
	for j := int64(0); j <= n; j++ {
		sum.Add(sum, Stirling2(n, j))
	}
	return sum
}

// RootExceeds reports whether r**(1/x) > t for positive integers r, x and
// non-negative integer t, i.e. whether r > t**x, using exact integer
// arithmetic. The nonblocking conditions of Theorems 1 and 2 compare an
// integer middle-stage count against expressions containing r^(1/x); this
// predicate lets those comparisons avoid floating point entirely.
func RootExceeds(r, x, t int64) bool {
	if r <= 0 || x <= 0 {
		panic(fmt.Sprintf("combin: RootExceeds(%d, %d, %d): r and x must be positive", r, x, t))
	}
	if t < 0 {
		return true
	}
	return big.NewInt(r).Cmp(PowInt64(t, x)) > 0
}

// CeilRoot returns ceil(r**(1/x)) for positive integers r and x, computed
// exactly.
func CeilRoot(r, x int64) int64 {
	if r <= 0 || x <= 0 {
		panic(fmt.Sprintf("combin: CeilRoot(%d, %d): arguments must be positive", r, x))
	}
	// Find the smallest t with t**x >= r.
	lo, hi := int64(1), int64(1)
	for !RootAtLeast(hi, x, r) {
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if RootAtLeast(mid, x, r) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// RootAtLeast reports whether t**x >= r using exact integer arithmetic.
func RootAtLeast(t, x, r int64) bool {
	return PowInt64(t, x).Cmp(big.NewInt(r)) >= 0
}

// CeilRootBig returns the smallest positive integer t with t**x >= c, for
// positive c and x. It is the arbitrary-precision variant of CeilRoot,
// needed because the nonblocking conditions evaluate (n-1)^x * r, which
// overflows int64 for large switch modules.
func CeilRootBig(c *big.Int, x int64) int64 {
	if x <= 0 || c.Sign() <= 0 {
		panic(fmt.Sprintf("combin: CeilRootBig(%s, %d): arguments must be positive", c, x))
	}
	atLeast := func(t int64) bool { return PowInt64(t, x).Cmp(c) >= 0 }
	lo, hi := int64(1), int64(1)
	for !atLeast(hi) {
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if atLeast(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
