package durable

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// corruptError marks a frame-level integrity failure: recovery
// truncates at it, Verify reports it; neither treats it as fatal.
type corruptError struct{ reason string }

func (e *corruptError) Error() string { return e.reason }

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	return io.ReadFull(r, buf)
}

// readFrame reads one [len][crc32c][payload] frame. It returns io.EOF
// at a clean end and *corruptError for a torn or bit-flipped frame.
func readFrame(br *bufio.Reader) ([]byte, int64, error) {
	var hdr [frameHeader]byte
	n, err := io.ReadFull(br, hdr[:])
	if err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil {
		return nil, 0, &corruptError{fmt.Sprintf("torn frame header (%d of %d bytes)", n, frameHeader)}
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	if length > maxRecordBytes {
		return nil, 0, &corruptError{fmt.Sprintf("frame length %d out of range", length)}
	}
	payload := make([]byte, length)
	n, err = io.ReadFull(br, payload)
	if err != nil {
		return nil, 0, &corruptError{fmt.Sprintf("torn frame payload (%d of %d bytes)", n, length)}
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, &corruptError{fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", want, got)}
	}
	return payload, int64(frameHeader) + int64(length), nil
}

// walkInfo is what a full log scan learned.
type walkInfo struct {
	lastSeq uint64
	records int
	sealed  bool
	// tailIndex/tailEnd locate the end of valid data: segment index in
	// the scanned slice and byte offset of the first byte past the last
	// good frame there.
	tailIndex int
	tailEnd   int64
	truncated *Truncation
	// perSegment mirrors records per segment for reporting.
	perSegment []segmentReportInternal
}

type segmentReportInternal struct {
	info    segmentInfo
	records int
	bytes   int64
}

// walkLog scans segments in order, invoking fn for every CRC-valid
// record. The first integrity failure (bad magic, torn frame, CRC
// mismatch, sequence discontinuity) stops the scan and is reported as
// a Truncation at its byte offset; later segments are not read. fn may
// be nil. snapSeq is the LastSeq of the snapshot priming this scan:
// a forward sequence jump at a segment boundary is accepted when every
// skipped record is covered by it (recovery rotates to snapSeq+1 after
// cutting a corrupted tail that left the log behind the snapshot).
func walkLog(segs []segmentInfo, snapSeq uint64, fn func(*Record) error) (*walkInfo, error) {
	wi := &walkInfo{tailIndex: -1}
	var prevSeq uint64
	for i, si := range segs {
		rep := segmentReportInternal{info: si}
		f, err := os.Open(si.path)
		if err != nil {
			return nil, fmt.Errorf("durable: open segment %s: %w", si.name, err)
		}
		br := bufio.NewReader(f)
		offset := int64(0)
		corrupt := func(reason string) {
			wi.truncated = &Truncation{Segment: si.name, Offset: offset, Reason: reason}
		}
		magic := make([]byte, len(segmentMagic))
		if n, err := io.ReadFull(br, magic); err != nil {
			corrupt(fmt.Sprintf("torn segment magic (%d of %d bytes)", n, len(segmentMagic)))
		} else if string(magic) != segmentMagic {
			corrupt("bad segment magic")
		} else {
			offset = int64(len(segmentMagic))
			first := true
			for {
				payload, n, err := readFrame(br)
				if err == io.EOF {
					break
				}
				if cerr, ok := err.(*corruptError); ok {
					corrupt(cerr.reason)
					break
				}
				if err != nil {
					f.Close()
					return nil, fmt.Errorf("durable: read segment %s: %w", si.name, err)
				}
				var rec Record
				if derr := json.Unmarshal(payload, &rec); derr != nil {
					corrupt(fmt.Sprintf("undecodable record: %v", derr))
					break
				}
				if prevSeq != 0 && rec.Seq != prevSeq+1 {
					// Only the first record of a segment named for it may
					// jump forward, and only across a snapshot-covered gap.
					jump := first && rec.Seq == si.firstSeq && rec.Seq > prevSeq && rec.Seq-1 <= snapSeq
					if !jump {
						corrupt(fmt.Sprintf("sequence discontinuity: %d after %d", rec.Seq, prevSeq))
						break
					}
				}
				first = false
				if fn != nil {
					if ferr := fn(&rec); ferr != nil {
						f.Close()
						return nil, ferr
					}
				}
				prevSeq = rec.Seq
				wi.lastSeq = rec.Seq
				wi.records++
				rep.records++
				wi.sealed = rec.Op == OpSeal
				offset += n
				rep.bytes = offset
			}
		}
		f.Close()
		wi.tailIndex = i
		wi.tailEnd = offset
		if rep.bytes == 0 {
			rep.bytes = offset
		}
		wi.perSegment = append(wi.perSegment, rep)
		if wi.truncated != nil {
			break
		}
	}
	return wi, nil
}

// Open recovers the data directory and returns the live Plane plus
// what recovery found. meta is the serving configuration's fabric
// identity: a log recorded against different fabric parameters is
// refused (replaying its routes would corrupt link bookkeeping).
//
// A corrupted tail is handled, not fatal: the log is truncated at the
// first bad frame (Recovery.Truncated reports segment, byte offset and
// reason), segments past it are quarantined with a .corrupt suffix,
// and the plane resumes appends at the last durable record — in a
// fresh segment whenever extending the cut tail could be mistaken for
// corruption by a later recovery.
func Open(opts Options, meta Meta) (*Plane, *Recovery, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("durable: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}

	state := NewState()
	rec := &Recovery{Meta: meta}

	// Newest CRC-valid snapshot primes the state; a corrupt newest
	// snapshot falls back to the previous generation, then to a full
	// log replay.
	snaps, err := listSnapshots(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	for _, si := range snaps {
		snap, serr := readSnapshotFile(si.path)
		if serr != nil {
			opts.Logger.Warn("snapshot unreadable, falling back",
				slog.String("snapshot", si.name), slog.String("error", serr.Error()))
			continue
		}
		if !snap.Meta.Compatible(meta) {
			return nil, nil, fmt.Errorf("durable: data dir %s was recorded for a different fabric (snapshot %s)", opts.Dir, si.name)
		}
		state.LoadSnapshot(snap)
		rec.SnapshotSeq = snap.LastSeq
		break
	}

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: %w", err)
	}
	replayed := 0
	wi, err := walkLog(segs, rec.SnapshotSeq, func(r *Record) error {
		if r.Op == OpMeta {
			if r.Meta != nil && !r.Meta.Compatible(meta) {
				return fmt.Errorf("durable: data dir %s was recorded for a different fabric (params %+v x%d)", opts.Dir, r.Meta.Params, r.Meta.Replicas)
			}
			return nil
		}
		if r.Seq <= rec.SnapshotSeq {
			return nil
		}
		state.Apply(r)
		replayed++
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	// Cut the corrupted tail and quarantine anything after it.
	tailRemoved := false
	if wi.truncated != nil {
		t := wi.truncated
		opts.Logger.Warn("wal corrupted tail truncated",
			slog.String("segment", t.Segment),
			slog.Int64("offset", t.Offset),
			slog.String("reason", t.Reason))
		if t.Offset < int64(len(segmentMagic)) {
			// The cut lands at or inside the segment magic: truncating
			// would leave a headerless husk that the next recovery reads
			// as "bad segment magic" at offset 0 — destroying any record
			// appended after this recovery. Nothing durable remains in
			// the file, so remove it; appends resume in a fresh segment.
			if err := os.Remove(filepath.Join(opts.Dir, t.Segment)); err != nil {
				return nil, nil, fmt.Errorf("durable: remove corrupted segment: %w", err)
			}
			tailRemoved = true
		} else if err := os.Truncate(filepath.Join(opts.Dir, t.Segment), t.Offset); err != nil {
			return nil, nil, fmt.Errorf("durable: truncate corrupted tail: %w", err)
		}
		for i := wi.tailIndex + 1; i < len(segs); i++ {
			q := segs[i].path + ".corrupt"
			opts.Logger.Warn("wal segment quarantined", slog.String("segment", segs[i].name))
			if err := os.Rename(segs[i].path, q); err != nil {
				return nil, nil, fmt.Errorf("durable: quarantine %s: %w", segs[i].name, err)
			}
		}
		rec.Truncated = t
	}

	lastSeq := wi.lastSeq
	if rec.SnapshotSeq > lastSeq {
		lastSeq = rec.SnapshotSeq
	}

	p := &Plane{
		opts:      opts,
		meta:      meta,
		seq:       lastSeq,
		synced:    lastSeq,
		visible:   lastSeq,
		segments:  len(segs),
		snapSeq:   rec.SnapshotSeq,
		closeDone: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)

	// Reopen the scanned tail for appends only when the next record
	// extends it contiguously. After a truncation, or when the snapshot
	// is ahead of the log, appending at lastSeq+1 would put a sequence
	// gap *inside* the segment — which the next recovery's discontinuity
	// check would cut at, destroying records acked after this recovery.
	// Those cases rotate to a fresh segment at lastSeq+1 instead;
	// walkLog accepts that jump at a segment boundary when the gap is
	// snapshot-covered.
	reuseTail := wi.tailIndex >= 0 && !tailRemoved
	if reuseTail && (wi.truncated != nil || rec.SnapshotSeq > wi.lastSeq) {
		// Still reusable if the tail holds no records and is already
		// named for the next sequence — it is exactly the fresh segment
		// rotation would create (and creating one would collide).
		reuseTail = wi.tailEnd == int64(len(segmentMagic)) && segs[wi.tailIndex].firstSeq == lastSeq+1
	}
	if reuseTail {
		tail := segs[wi.tailIndex]
		f, err := os.OpenFile(tail.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: reopen tail segment: %w", err)
		}
		p.f = f
		p.w = bufio.NewWriter(f)
		p.size = wi.tailEnd
		p.segments = wi.tailIndex + 1
	} else {
		f, err := createSegment(opts.Dir, lastSeq+1)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: %w", err)
		}
		syncDir(opts.Dir)
		p.f = f
		p.w = bufio.NewWriter(f)
		p.size = int64(len(segmentMagic))
		p.segments = wi.tailIndex + 2
		if tailRemoved {
			p.segments--
		}
	}
	p.sealed = state.Sealed

	go p.syncLoop()

	if wi.records == 0 && rec.SnapshotSeq == 0 {
		m := meta
		if _, err := p.Append(&Record{Op: OpMeta, Meta: &m}); err != nil {
			p.Close()
			return nil, nil, err
		}
	}

	rec.Sessions = state.SessionList()
	rec.Failed = state.FailedList()
	rec.NextSession = state.NextSession
	rec.LastSeq = lastSeq
	rec.Records = replayed
	rec.Sealed = state.Sealed
	rec.Elapsed = time.Since(start)
	return p, rec, nil
}

// SegmentReport is one segment's verification summary.
type SegmentReport struct {
	Name     string `json:"name"`
	FirstSeq uint64 `json:"first_seq"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
}

// SnapshotReport is one snapshot's verification summary.
type SnapshotReport struct {
	Name     string `json:"name"`
	LastSeq  uint64 `json:"last_seq"`
	Sessions int    `json:"sessions,omitempty"`
	Valid    bool   `json:"valid"`
	Error    string `json:"error,omitempty"`
}

// VerifyReport is the read-only integrity summary of a data directory.
type VerifyReport struct {
	Dir       string           `json:"dir"`
	Segments  []SegmentReport  `json:"segments"`
	Snapshots []SnapshotReport `json:"snapshots,omitempty"`
	Records   int              `json:"records"`
	LastSeq   uint64           `json:"last_seq"`
	Sessions  int              `json:"sessions"`
	Sealed    bool             `json:"sealed"`
	// Truncated reports the first bad frame — the same segment and
	// byte offset recovery would truncate at. Nil for a clean log.
	Truncated *Truncation `json:"truncated,omitempty"`
	Clean     bool        `json:"clean"`
}

// Verify scans a data directory read-only and reports its integrity.
// The reported truncation offset, if any, is byte-identical to where
// Open would cut the log.
func Verify(dir string) (*VerifyReport, error) {
	rep := &VerifyReport{Dir: dir}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var snapSeq uint64
	havePrimed := false
	state := NewState()
	for _, si := range snaps {
		sr := SnapshotReport{Name: si.name, LastSeq: si.lastSeq}
		snap, serr := readSnapshotFile(si.path)
		if serr != nil {
			sr.Error = serr.Error()
		} else {
			sr.Valid = true
			sr.Sessions = len(snap.Sessions)
			if !havePrimed {
				state.LoadSnapshot(snap)
				snapSeq = snap.LastSeq
				havePrimed = true
			}
		}
		rep.Snapshots = append(rep.Snapshots, sr)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	wi, err := walkLog(segs, snapSeq, func(r *Record) error {
		if r.Op != OpMeta && r.Seq > snapSeq {
			state.Apply(r)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, sr := range wi.perSegment {
		rep.Segments = append(rep.Segments, SegmentReport{
			Name:     sr.info.name,
			FirstSeq: sr.info.firstSeq,
			Records:  sr.records,
			Bytes:    sr.bytes,
		})
	}
	rep.Records = wi.records
	rep.LastSeq = wi.lastSeq
	if snapSeq > rep.LastSeq {
		rep.LastSeq = snapSeq
	}
	rep.Sessions = len(state.Sessions)
	rep.Sealed = state.Sealed
	rep.Truncated = wi.truncated
	rep.Clean = wi.truncated == nil
	return rep, nil
}

// ReadState replays a data directory read-only into its materialized
// state, returning the log's recorded Meta when one is present (from
// the newest valid snapshot or the meta record). Offline tooling uses
// this; the serving path uses Open.
func ReadState(dir string) (*State, *Meta, *VerifyReport, error) {
	rep := &VerifyReport{Dir: dir}
	var meta *Meta
	state := NewState()
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: %w", err)
	}
	var snapSeq uint64
	for _, si := range snaps {
		snap, serr := readSnapshotFile(si.path)
		if serr != nil {
			continue
		}
		m := snap.Meta
		meta = &m
		state.LoadSnapshot(snap)
		snapSeq = snap.LastSeq
		break
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("durable: %w", err)
	}
	wi, err := walkLog(segs, snapSeq, func(r *Record) error {
		if r.Op == OpMeta {
			if meta == nil && r.Meta != nil {
				m := *r.Meta
				meta = &m
			}
			return nil
		}
		if r.Seq > snapSeq {
			state.Apply(r)
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rep.Records = wi.records
	rep.LastSeq = wi.lastSeq
	if snapSeq > rep.LastSeq {
		rep.LastSeq = snapSeq
	}
	rep.Sealed = state.Sealed
	rep.Truncated = wi.truncated
	rep.Clean = wi.truncated == nil
	return state, meta, rep, nil
}

// WalkRecords invokes fn for every valid record in sequence order,
// read-only (offline inspection). It stops early if fn returns false
// and returns the truncation point, if any.
func WalkRecords(dir string, fn func(*Record) bool) (*Truncation, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	// The newest valid snapshot's LastSeq legitimizes boundary jumps,
	// exactly as in Open and Verify.
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	var snapSeq uint64
	for _, si := range snaps {
		if snap, serr := readSnapshotFile(si.path); serr == nil {
			snapSeq = snap.LastSeq
			break
		}
	}
	stop := fmt.Errorf("stop")
	wi, err := walkLog(segs, snapSeq, func(r *Record) error {
		if !fn(r) {
			return stop
		}
		return nil
	})
	if err == stop {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return wi.truncated, nil
}
