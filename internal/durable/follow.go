package durable

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Tail-follow reader. A Follower streams the log's records in sequence
// order as they become readable, surviving segment rotation and
// group-commit batching: it blocks until the record it wants has been
// flushed into a segment file (the Plane's visible watermark), opens
// segment files with its own descriptors, and re-lists the directory
// when a segment runs dry to pick up the rotation successor. It is the
// primary half of log-shipping replication — a replication server holds
// one Follower per connected standby.
//
// A Follower never reads past the visible watermark, so it cannot see a
// torn frame in a healthy log: everything at or below the watermark was
// buffered whole and flushed whole. A short or checksum-failing frame
// below the watermark therefore gets one retry (the read may have raced
// pruning) and is then reported as real corruption.

var (
	// ErrCompacted reports that the requested resume point has been
	// pruned into a snapshot; the consumer must bootstrap from a
	// snapshot instead of the log tail.
	ErrCompacted = errors.New("durable: requested sequence compacted into a snapshot")
	// ErrFollowerClosed is returned by Next after Close.
	ErrFollowerClosed = errors.New("durable: follower closed")
)

// errRetryFollow signals an internal transient condition (rotation or
// prune race): re-check the watermark and try again.
var errRetryFollow = errors.New("durable: follower retry")

// Follower is a sequential reader positioned after some sequence
// number. Not safe for concurrent use; Close may be called from another
// goroutine to unblock a pending Next.
type Follower struct {
	p    *Plane
	next uint64 // sequence number of the next record to deliver

	f        *os.File
	br       *bufio.Reader
	path     string
	segFirst uint64
	offset   int64 // byte offset of the next unread frame within f

	// corruptAt remembers the offset of a frame that failed to decode so
	// a second failure at the same spot is reported instead of retried.
	corruptAt int64

	done bool // guarded by p.mu; Close broadcasts on p.cond
}

// Follow returns a Follower that yields records with Seq > afterSeq in
// order. Pass 0 to stream the whole retained log; if afterSeq+1 has
// been pruned into a snapshot, the first Next returns ErrCompacted.
func (p *Plane) Follow(afterSeq uint64) *Follower {
	return &Follower{p: p, next: afterSeq + 1, corruptAt: -1}
}

// Close releases the follower's file handle and unblocks a concurrent
// Next, which returns ErrFollowerClosed.
func (fl *Follower) Close() {
	fl.p.mu.Lock()
	fl.done = true
	fl.p.cond.Broadcast()
	fl.p.mu.Unlock()
}

// Next blocks until the next record is readable and returns it. It
// returns ErrClosed once the log has closed (or crashed) and every
// flushed record has been delivered, ErrCompacted if the resume point
// has been pruned, and ErrFollowerClosed after Close.
func (fl *Follower) Next() (*Record, error) {
	for {
		fl.p.mu.Lock()
		for !fl.done && fl.p.visible < fl.next && !fl.p.closed && fl.p.err == nil {
			fl.p.cond.Wait()
		}
		done := fl.done
		visible := fl.p.visible
		planeDead := fl.p.closed || fl.p.err != nil
		fl.p.mu.Unlock()
		if done {
			fl.closeFile()
			return nil, ErrFollowerClosed
		}
		if visible < fl.next {
			// The plane ended before this sequence was flushed; nothing
			// more will ever become readable.
			fl.closeFile()
			return nil, ErrClosed
		}
		rec, err := fl.readNext(visible)
		if err == errRetryFollow {
			if planeDead {
				// No new flush can resolve the race; treat as EOF.
				fl.closeFile()
				return nil, ErrClosed
			}
			// Benign race with rotation or pruning: the segment list or
			// file content is mid-change. Back off briefly.
			time.Sleep(200 * time.Microsecond)
			continue
		}
		return rec, err
	}
}

// Pending reports whether a record is already readable without
// blocking; the replication server uses it to batch stream flushes.
func (fl *Follower) Pending() bool {
	fl.p.mu.Lock()
	defer fl.p.mu.Unlock()
	return fl.p.visible >= fl.next
}

// readNext reads forward until it delivers the record numbered
// fl.next. Caller guarantees fl.next <= visible.
func (fl *Follower) readNext(visible uint64) (*Record, error) {
	for {
		if fl.f == nil {
			if err := fl.openSegmentFor(fl.next); err != nil {
				return nil, err
			}
		}
		payload, n, err := readFrame(fl.br)
		if err == io.EOF {
			// Segment exhausted but the wanted record is flushed: it
			// lives in a rotation successor. (If listing finds none yet
			// we raced the rotation; retry.)
			rotated, rerr := fl.advanceSegment()
			if rerr != nil {
				return nil, rerr
			}
			if !rotated {
				return nil, errRetryFollow
			}
			continue
		}
		var corrupt *corruptError
		if errors.As(err, &corrupt) {
			// Below the watermark every frame was flushed whole, so a
			// bad read is either a race with pruning (the file vanished
			// under us mid-read) or genuine corruption. Re-open at the
			// same offset once; a repeat is real.
			if fl.corruptAt == fl.offset {
				return nil, fmt.Errorf("durable: follower: corrupt frame in %s at offset %d: %s", fl.path, fl.offset, corrupt.reason)
			}
			fl.corruptAt = fl.offset
			if rerr := fl.reopenAtOffset(); rerr != nil {
				return nil, rerr
			}
			return nil, errRetryFollow
		}
		if err != nil {
			return nil, fmt.Errorf("durable: follower: reading %s: %w", fl.path, err)
		}
		fl.offset += n
		fl.corruptAt = -1
		var rec Record
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			return nil, fmt.Errorf("durable: follower: decoding record in %s: %w", fl.path, derr)
		}
		if rec.Seq < fl.next {
			// Resumed mid-segment: skip records already delivered.
			continue
		}
		if rec.Seq != fl.next {
			return nil, fmt.Errorf("durable: follower: log discontinuity in %s: want seq %d, found %d", fl.path, fl.next, rec.Seq)
		}
		fl.next++
		return &rec, nil
	}
}

// openSegmentFor positions the follower at the start of the newest
// segment whose first sequence is <= seq. ErrCompacted if every
// retained segment starts after seq (or none remain).
func (fl *Follower) openSegmentFor(seq uint64) error {
	segs, err := listSegments(fl.p.opts.Dir)
	if err != nil {
		return fmt.Errorf("durable: follower: %w", err)
	}
	idx := -1
	for i := range segs {
		if segs[i].firstSeq <= seq {
			idx = i
		}
	}
	if idx < 0 {
		return ErrCompacted
	}
	return fl.openSegment(segs[idx])
}

// advanceSegment closes the current segment and opens its successor —
// the next segment on disk whose first sequence can contain fl.next.
// Returns false (and leaves the current segment open) when no successor
// exists yet.
func (fl *Follower) advanceSegment() (bool, error) {
	segs, err := listSegments(fl.p.opts.Dir)
	if err != nil {
		return false, fmt.Errorf("durable: follower: %w", err)
	}
	for i := range segs {
		if segs[i].firstSeq > fl.segFirst && segs[i].firstSeq <= fl.next {
			fl.closeFile()
			if oerr := fl.openSegment(segs[i]); oerr != nil {
				return false, oerr
			}
			return true, nil
		}
	}
	return false, nil
}

// openSegment opens one segment file and verifies its magic.
func (fl *Follower) openSegment(si segmentInfo) error {
	f, err := os.Open(si.path)
	if err != nil {
		if os.IsNotExist(err) {
			// Pruned between listing and open; the caller re-resolves.
			return errRetryFollow
		}
		return fmt.Errorf("durable: follower: %w", err)
	}
	br := bufio.NewReader(f)
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != segmentMagic {
		f.Close()
		return fmt.Errorf("durable: follower: segment %s: bad magic", si.name)
	}
	fl.f = f
	fl.br = br
	fl.path = si.path
	fl.segFirst = si.firstSeq
	fl.offset = int64(len(segmentMagic))
	return nil
}

// reopenAtOffset discards buffered state and re-reads the current
// segment from the follower's frame offset.
func (fl *Follower) reopenAtOffset() error {
	path, offset := fl.path, fl.offset
	fl.closeFile()
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return errRetryFollow
		}
		return fmt.Errorf("durable: follower: %w", err)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("durable: follower: %w", err)
	}
	fl.f = f
	fl.br = bufio.NewReader(f)
	fl.path = path
	fl.offset = offset
	return nil
}

func (fl *Follower) closeFile() {
	if fl.f != nil {
		fl.f.Close()
		fl.f = nil
		fl.br = nil
	}
}
