package durable

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

func testMeta() Meta {
	return Meta{
		Params:   multistage.Params{N: 16, K: 2, R: 4, M: 7, Model: wdm.MSW, Construction: multistage.MSWDominant},
		Replicas: 2,
	}
}

func testOptions(t *testing.T, dir string) Options {
	t.Helper()
	return Options{
		Dir:       dir,
		SyncDelay: -1, // sync every batch immediately: deterministic tests
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

func route(conn string) *multistage.RouteRecord {
	return &multistage.RouteRecord{
		Conn: conn,
		In:   []multistage.RouteLeg{{Middle: 0, Wave: 0}},
		Out:  []multistage.RouteHop{{Middle: 0, Out: 1, Wave: 1}},
	}
}

func mustOpen(t *testing.T, dir string) (*Plane, *Recovery) {
	t.Helper()
	p, rec, err := Open(testOptions(t, dir), testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return p, rec
}

func mustAppend(t *testing.T, p *Plane, rec *Record) uint64 {
	t.Helper()
	seq, err := p.Append(rec)
	if err != nil {
		t.Fatalf("Append %s: %v", rec.Op, err)
	}
	return seq
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, rec := mustOpen(t, dir)
	if len(rec.Sessions) != 0 || rec.LastSeq != 0 {
		t.Fatalf("fresh recovery not empty: %+v", rec)
	}
	mustAppend(t, p, &Record{Op: OpConnect, Session: 1, Fabric: 0, Route: route("0.0>5.0")})
	mustAppend(t, p, &Record{Op: OpConnect, Session: 2, Fabric: 1, Route: route("1.0>6.0,9.0")})
	mustAppend(t, p, &Record{Op: OpBranch, Session: 1, Fabric: 0, Branches: 1, Route: route("0.0>5.0,8.0")})
	mustAppend(t, p, &Record{Op: OpConnect, Session: 3, Fabric: 0, Route: route("2.0>7.0")})
	mustAppend(t, p, &Record{Op: OpDisconnect, Session: 3})
	mustAppend(t, p, &Record{Op: OpFail, Fabric: 1, Middle: 2, Migrated: []SessionRoute{
		{Session: 2, Fabric: 1, Migrations: 1, Route: *route("1.0>6.0,9.0")},
	}})
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2, rec2 := mustOpen(t, dir)
	defer p2.Close()
	if got := len(rec2.Sessions); got != 2 {
		t.Fatalf("recovered %d sessions, want 2: %+v", got, rec2.Sessions)
	}
	if rec2.Sessions[0].Session != 1 || rec2.Sessions[0].Branches != 1 {
		t.Errorf("session 1 state wrong: %+v", rec2.Sessions[0])
	}
	if rec2.Sessions[1].Session != 2 || rec2.Sessions[1].Migrations != 1 {
		t.Errorf("session 2 state wrong: %+v", rec2.Sessions[1])
	}
	if want := map[int][]int{1: {2}}; !reflect.DeepEqual(rec2.Failed, want) {
		t.Errorf("failed middles = %v, want %v", rec2.Failed, want)
	}
	if rec2.NextSession != 3 {
		t.Errorf("NextSession = %d, want 3", rec2.NextSession)
	}
	if rec2.Sealed {
		t.Errorf("unsealed log recovered as sealed")
	}
	if rec2.Truncated != nil {
		t.Errorf("clean log reported truncation: %v", rec2.Truncated)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SyncDelay = time.Millisecond
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const workers, per = 8, 40
	var wg sync.WaitGroup
	seqs := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := p.Append(&Record{Op: OpConnect, Session: uint64(w*per + i + 1), Route: route("0.0>5.0")})
				if err != nil {
					t.Errorf("worker %d append %d: %v", w, i, err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	// +1 for the meta record.
	if st.Appends != workers*per+1 {
		t.Errorf("appends = %d, want %d", st.Appends, workers*per+1)
	}
	if st.SyncedSeq != st.LastSeq {
		t.Errorf("synced %d lags last %d after all appends acked", st.SyncedSeq, st.LastSeq)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Errorf("syncs = %d with %d appends", st.Syncs, st.Appends)
	}
	seen := make(map[uint64]bool)
	for _, s := range seqs {
		for _, q := range s {
			if seen[q] {
				t.Fatalf("duplicate sequence %d", q)
			}
			seen[q] = true
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := mustOpen(t, dir)
	if len(rec.Sessions) != workers*per {
		t.Errorf("recovered %d sessions, want %d", len(rec.Sessions), workers*per)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 40
	for i := 1; i <= n; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce >= 3 segments, got %d", len(segs))
	}
	_, rec := mustOpen(t, dir)
	if len(rec.Sessions) != n {
		t.Errorf("recovered %d sessions across segments, want %d", len(rec.Sessions), n)
	}
}

// corruptTail flips one byte inside the final record's payload of the
// last segment and returns the expected truncation offset (the start
// of that record's frame).
func corruptTail(t *testing.T, dir string) (string, int64) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	tail := segs[len(segs)-1]
	wi, err := walkLog([]segmentInfo{tail}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wi.records == 0 {
		t.Fatal("tail segment has no records to corrupt")
	}
	// Find the final frame's start by rescanning and keeping the
	// previous offset.
	f, err := os.ReadFile(tail.path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk frames to the last one.
	off := int64(len(segmentMagic))
	last := off
	for off < wi.tailEnd {
		length := int64(uint32(f[off]) | uint32(f[off+1])<<8 | uint32(f[off+2])<<16 | uint32(f[off+3])<<24)
		last = off
		off += frameHeader + length
	}
	f[last+frameHeader+2] ^= 0x40 // flip a payload bit
	if err := os.WriteFile(tail.path, f, 0o644); err != nil {
		t.Fatal(err)
	}
	return tail.name, last
}

func TestCorruptedTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	for i := 1; i <= 5; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	seg, wantOff := corruptTail(t, dir)

	// Verify (read-only) must report the same offset recovery cuts at.
	rep, err := Verify(dir)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.Clean || rep.Truncated == nil {
		t.Fatalf("Verify missed the corruption: %+v", rep)
	}
	if rep.Truncated.Segment != seg || rep.Truncated.Offset != wantOff {
		t.Errorf("Verify truncation %s@%d, want %s@%d", rep.Truncated.Segment, rep.Truncated.Offset, seg, wantOff)
	}
	if !strings.Contains(rep.Truncated.Reason, "crc mismatch") {
		t.Errorf("reason %q, want crc mismatch", rep.Truncated.Reason)
	}

	p2, rec := mustOpen(t, dir)
	if rec.Truncated == nil || rec.Truncated.Offset != wantOff || rec.Truncated.Segment != seg {
		t.Fatalf("recovery truncation = %+v, want %s@%d", rec.Truncated, seg, wantOff)
	}
	if len(rec.Sessions) != 4 {
		t.Errorf("recovered %d sessions after cut, want 4", len(rec.Sessions))
	}
	// The log must be writable and clean after the cut.
	mustAppend(t, p2, &Record{Op: OpConnect, Session: 9, Route: route("3.0>5.0")})
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err = Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Errorf("log still dirty after recovery: %+v", rep.Truncated)
	}
	if rep.Sessions != 5 {
		t.Errorf("sessions after re-append = %d, want 5", rep.Sessions)
	}
}

func TestCorruptedTailTornRecord(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	for i := 1; i <= 4; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	tail := segs[len(segs)-1]
	fi, err := os.Stat(tail.path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-payload, as a crash mid-write would.
	if err := os.Truncate(tail.path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	wi, err := walkLog([]segmentInfo{tail}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantOff := wi.truncated.Offset

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean || rep.Truncated.Offset != wantOff || !strings.Contains(rep.Truncated.Reason, "torn") {
		t.Fatalf("Verify = %+v, want torn at %d", rep.Truncated, wantOff)
	}

	p2, rec := mustOpen(t, dir)
	defer p2.Close()
	if rec.Truncated == nil || rec.Truncated.Offset != wantOff {
		t.Fatalf("recovery truncation = %+v, want offset %d", rec.Truncated, wantOff)
	}
	if len(rec.Sessions) != 3 {
		t.Errorf("recovered %d sessions, want 3 (torn 4th dropped)", len(rec.Sessions))
	}
	fi, err = os.Stat(tail.path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != wantOff {
		t.Errorf("tail size after truncation = %d, want %d", fi.Size(), wantOff)
	}
}

// TestTornMagicTailRecovery covers a crash that tears the tail
// segment inside its magic header: recovery must not leave a
// headerless husk open for appends, because the next recovery would
// read it as "bad segment magic" at offset 0 and destroy every record
// acked in between.
func TestTornMagicTailRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}
	tail := segs[len(segs)-1]
	// Tear the tail mid-magic, as a crash right after rotation would.
	if err := os.Truncate(tail.path, 3); err != nil {
		t.Fatal(err)
	}

	p2, rec := mustOpen(t, dir)
	if rec.Truncated == nil || rec.Truncated.Segment != tail.name || rec.Truncated.Offset != 0 {
		t.Fatalf("truncation = %+v, want %s@0", rec.Truncated, tail.name)
	}
	survivors := len(rec.Sessions)
	// Records acked after this recovery must survive the next one.
	mustAppend(t, p2, &Record{Op: OpConnect, Session: 100, Route: route("1.0>6.0")})
	mustAppend(t, p2, &Record{Op: OpConnect, Session: 101, Route: route("2.0>7.0")})
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("log dirty after recovery + append: %+v", rep.Truncated)
	}
	p3, rec2 := mustOpen(t, dir)
	defer p3.Close()
	if rec2.Truncated != nil {
		t.Fatalf("second recovery truncated: %v", rec2.Truncated)
	}
	if len(rec2.Sessions) != survivors+2 {
		t.Errorf("recovered %d sessions, want %d (post-recovery appends lost)", len(rec2.Sessions), survivors+2)
	}
}

// TestTruncationBehindSnapshotRotates covers a corrupt frame at a
// sequence the snapshot already covers: resuming appends inside the
// truncated segment would leave a sequence gap that the next
// recovery's discontinuity check cuts at, silently discarding every
// record acked in between. Recovery must rotate to a fresh segment
// instead, and later scans must accept the snapshot-covered jump.
func TestTruncationBehindSnapshotRotates(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	for i := 1; i <= 5; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	st := NewState()
	for i := 1; i <= 5; i++ {
		st.Sessions[uint64(i)] = &SessionRoute{Session: uint64(i), Route: *route("0.0>5.0")}
	}
	st.NextSession = 5
	if err := p.WriteSnapshot(&Snapshot{
		LastSeq:     p.SyncedSeq(),
		NextSession: st.NextSession,
		Sessions:    st.SessionList(),
	}); err != nil {
		t.Fatal(err)
	}
	snapSeq := p.SyncedSeq()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the final record — a frame at a sequence at/below
	// the snapshot's LastSeq.
	corruptTail(t, dir)

	p2, rec := mustOpen(t, dir)
	if rec.Truncated == nil {
		t.Fatal("corruption not detected")
	}
	if rec.SnapshotSeq != snapSeq {
		t.Fatalf("SnapshotSeq = %d, want %d", rec.SnapshotSeq, snapSeq)
	}
	if len(rec.Sessions) != 5 {
		t.Fatalf("recovered %d sessions, want 5 (snapshot covers the cut record)", len(rec.Sessions))
	}
	mustAppend(t, p2, &Record{Op: OpConnect, Session: 6, Route: route("1.0>6.0")})
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("snapshot-covered boundary jump misread as corruption: %+v", rep.Truncated)
	}
	p3, rec2 := mustOpen(t, dir)
	defer p3.Close()
	if rec2.Truncated != nil {
		t.Fatalf("second recovery truncated: %v", rec2.Truncated)
	}
	if len(rec2.Sessions) != 6 {
		t.Errorf("recovered %d sessions, want 6 (post-recovery append lost)", len(rec2.Sessions))
	}
}

// TestSnapshotFallbackKeepsLogCoverage: the older retained snapshot is
// only a usable fallback if the log still holds every record past ITS
// LastSeq — pruning against the newest snapshot would silently lose
// the sessions recorded between the two generations.
func TestSnapshotFallbackKeepsLogCoverage(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512 // force rotation so pruning has segments to eat
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	writeSnap := func(n int) {
		t.Helper()
		st := NewState()
		for i := 1; i <= n; i++ {
			st.Sessions[uint64(i)] = &SessionRoute{Session: uint64(i), Route: *route("0.0>5.0")}
		}
		st.NextSession = uint64(n)
		if err := p.WriteSnapshot(&Snapshot{
			LastSeq:     p.SyncedSeq(),
			NextSession: st.NextSession,
			Sessions:    st.SessionList(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 15; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	writeSnap(15)
	// Sessions recorded between the two generations: the newest
	// snapshot covers them, the fallback needs the log for them.
	for i := 16; i <= 30; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	writeSnap(30)
	mustAppend(t, p, &Record{Op: OpConnect, Session: 31, Route: route("1.0>6.0")})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := listSnapshots(dir)
	if len(snaps) != keepSnapshots {
		t.Fatalf("%d snapshots retained, want %d", len(snaps), keepSnapshots)
	}
	// Corrupt the newest snapshot; recovery must fall back to the older
	// generation without losing sessions 16..30.
	b, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(snaps[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, rec := mustOpen(t, dir)
	defer p2.Close()
	if rec.SnapshotSeq == 0 {
		t.Fatal("fallback snapshot not used")
	}
	if len(rec.Sessions) != 31 {
		t.Errorf("fallback recovered %d sessions, want 31 (records between generations pruned away?)", len(rec.Sessions))
	}
}

func TestSealAndCleanRecovery(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	mustAppend(t, p, &Record{Op: OpConnect, Session: 1, Route: route("0.0>5.0")})
	mustAppend(t, p, &Record{Op: OpDisconnect, Session: 1})
	if err := p.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := p.Append(&Record{Op: OpConnect, Session: 2}); !errors.Is(err, ErrClosed) {
		t.Errorf("append after seal = %v, want ErrClosed", err)
	}
	p2, rec := mustOpen(t, dir)
	defer p2.Close()
	if !rec.Sealed {
		t.Error("sealed log not recovered as sealed")
	}
	if len(rec.Sessions) != 0 {
		t.Errorf("sealed log recovered %d sessions, want 0", len(rec.Sessions))
	}
	if rec.NextSession != 1 {
		t.Errorf("NextSession = %d, want 1", rec.NextSession)
	}
}

func TestCrashDropsUnackedKeepsAcked(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SyncDelay = time.Second // hold the batch open so the crash hits it
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	// The meta record rides the first slow batch; wait it out.
	if err := p.Sync(); err != nil {
		t.Fatal(err)
	}
	seqs := make(chan uint64, 1)
	errs := make(chan error, 1)
	go func() {
		seq, err := p.Append(&Record{Op: OpConnect, Session: 7, Route: route("0.0>5.0")})
		seqs <- seq
		errs <- err
	}()
	// Give the append time to buffer the frame, then crash before the
	// 1s group-commit window closes.
	time.Sleep(50 * time.Millisecond)
	p.Crash()
	<-seqs
	if err := <-errs; !errors.Is(err, ErrCrashed) {
		t.Fatalf("in-flight append after crash = %v, want ErrCrashed", err)
	}
	if _, err := p.Append(&Record{Op: OpConnect, Session: 8}); !errors.Is(err, ErrCrashed) {
		t.Errorf("append after crash = %v, want ErrCrashed", err)
	}

	_, rec := mustOpen(t, dir)
	if len(rec.Sessions) != 0 {
		t.Errorf("unacked session survived the crash: %+v", rec.Sessions)
	}
	if rec.Truncated != nil {
		t.Errorf("crash with dropped buffer left a dirty log: %v", rec.Truncated)
	}
}

func TestSnapshotRecoveryAndPruning(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512 // force rotation so pruning has segments to eat
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	before, _ := listSegments(dir)
	if len(before) < 3 {
		t.Fatalf("rotation produced %d segments, need >= 3 for a pruning test", len(before))
	}
	st := NewState()
	for i := 1; i <= 30; i++ {
		st.Sessions[uint64(i)] = &SessionRoute{Session: uint64(i), Route: *route("0.0>5.0")}
	}
	st.NextSession = 30
	if err := p.WriteSnapshot(&Snapshot{
		LastSeq:     p.SyncedSeq(),
		NextSession: st.NextSession,
		Sessions:    st.SessionList(),
		Failed:      st.FailedList(),
	}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Tail records past the snapshot.
	mustAppend(t, p, &Record{Op: OpDisconnect, Session: 30})
	mustAppend(t, p, &Record{Op: OpConnect, Session: 31, Route: route("1.0>6.0")})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Covered segments are pruned; the segment that was active at
	// snapshot time is kept (it is the append tail) and may have
	// rotated once since.
	segs, _ := listSegments(dir)
	if len(segs) > 2 {
		t.Errorf("pruning left %d segments, want <= 2 (had %d)", len(segs), len(before))
	}

	p2, rec := mustOpen(t, dir)
	defer p2.Close()
	if rec.SnapshotSeq == 0 {
		t.Error("recovery ignored the snapshot")
	}
	if len(rec.Sessions) != 30 { // 30 connects - 1 disconnect + 1 connect
		t.Errorf("recovered %d sessions, want 30", len(rec.Sessions))
	}
	if rec.NextSession != 31 {
		t.Errorf("NextSession = %d, want 31", rec.NextSession)
	}
	found := false
	for _, s := range rec.Sessions {
		if s.Session == 30 {
			t.Error("disconnected session 30 survived snapshot+tail replay")
		}
		if s.Session == 31 {
			found = true
		}
	}
	if !found {
		t.Error("tail session 31 lost")
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	for i := 1; i <= 3; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	snap := &Snapshot{LastSeq: p.SyncedSeq(), NextSession: 3}
	st := NewState()
	for i := 1; i <= 3; i++ {
		st.Sessions[uint64(i)] = &SessionRoute{Session: uint64(i), Route: *route("0.0>5.0")}
	}
	snap.Sessions = st.SessionList()
	if err := p.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _ := listSnapshots(dir)
	if len(snaps) == 0 {
		t.Fatal("no snapshot written")
	}
	// Flip a byte inside the snapshot payload.
	b, err := os.ReadFile(snaps[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x01
	if err := os.WriteFile(snaps[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := mustOpen(t, dir)
	if rec.SnapshotSeq != 0 {
		t.Errorf("corrupt snapshot was trusted (SnapshotSeq=%d)", rec.SnapshotSeq)
	}
	if len(rec.Sessions) != 3 {
		t.Errorf("fallback replay recovered %d sessions, want 3", len(rec.Sessions))
	}
}

func TestMetaMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	mustAppend(t, p, &Record{Op: OpConnect, Session: 1, Route: route("0.0>5.0")})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	other := testMeta()
	other.Params.N = 32
	if _, _, err := Open(testOptions(t, dir), other); err == nil {
		t.Fatal("Open accepted a log recorded for a different fabric")
	} else if !strings.Contains(err.Error(), "different fabric") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReadStateOffline(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	mustAppend(t, p, &Record{Op: OpConnect, Session: 1, Fabric: 1, Route: route("0.0>5.0")})
	mustAppend(t, p, &Record{Op: OpFail, Fabric: 1, Middle: 3})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	state, meta, rep, err := ReadState(dir)
	if err != nil {
		t.Fatalf("ReadState: %v", err)
	}
	if meta == nil || !meta.Compatible(testMeta()) {
		t.Errorf("meta = %+v, want %+v", meta, testMeta())
	}
	if len(state.Sessions) != 1 || !state.Failed[1][3] {
		t.Errorf("state = %d sessions, failed %v", len(state.Sessions), state.FailedList())
	}
	if !rep.Clean {
		t.Errorf("clean log reported dirty: %+v", rep.Truncated)
	}
	var ops []string
	if _, err := WalkRecords(dir, func(r *Record) bool {
		ops = append(ops, r.Op)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{OpMeta, OpConnect, OpFail}
	if !reflect.DeepEqual(ops, want) {
		t.Errorf("walked ops %v, want %v", ops, want)
	}
}

// TestSegmentCleanupFile ensures the quarantine path renames segments
// past a mid-log corruption instead of silently replaying them.
func TestQuarantineBeyondCorruption(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i), Route: route("0.0>5.0")})
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt the magic of the middle segment: everything after it must
	// be quarantined, not replayed.
	mid := segs[1]
	b, _ := os.ReadFile(mid.path)
	b[0] ^= 0xff
	if err := os.WriteFile(mid.path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, rec := mustOpen(t, dir)
	defer p2.Close()
	if rec.Truncated == nil || rec.Truncated.Segment != mid.name || rec.Truncated.Offset != 0 {
		t.Fatalf("truncation = %+v, want %s@0", rec.Truncated, mid.name)
	}
	left, _ := listSegments(dir)
	if len(left) != 2 {
		t.Errorf("%d segments remain, want 2 (first intact + truncated middle)", len(left))
	}
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if len(quarantined) != len(segs)-2 {
		t.Errorf("%d quarantined files, want %d", len(quarantined), len(segs)-2)
	}
}
