package durable

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// collectFollower drains records from fl into a channel until a
// terminal error, reporting the error on done.
func collectFollower(fl *Follower) (<-chan *Record, <-chan error) {
	out := make(chan *Record, 1024)
	done := make(chan error, 1)
	go func() {
		defer close(out)
		for {
			rec, err := fl.Next()
			if err != nil {
				done <- err
				return
			}
			out <- rec
		}
	}()
	return out, done
}

// TestFollowerAcrossRotation streams a log that rotates segments many
// times mid-stream and checks the follower delivers every record in
// sequence order, crossing each rotation boundary.
func TestFollowerAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512 // rotate every few records
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fl := p.Follow(0)
	out, done := collectFollower(fl)

	const n = 100
	for i := 0; i < n; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i + 1), Route: route("0.0>1.0")})
	}
	if p.Stats().Segments < 3 {
		t.Fatalf("want several segments, got %d", p.Stats().Segments)
	}

	// Drain exactly the meta record plus n connects, in order.
	var got []*Record
	deadline := time.After(5 * time.Second)
	for len(got) < n+1 {
		select {
		case rec := <-out:
			got = append(got, rec)
		case err := <-done:
			t.Fatalf("follower died early after %d records: %v", len(got), err)
		case <-deadline:
			t.Fatalf("timeout: got %d of %d records", len(got), n+1)
		}
	}
	for i, rec := range got {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if got[0].Op != OpMeta {
		t.Fatalf("first record op %s, want %s", got[0].Op, OpMeta)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Op != OpConnect || got[i].Session != uint64(i) {
			t.Fatalf("record %d: op %s session %d, want connect %d", i, got[i].Op, got[i].Session, i)
		}
	}

	// Closing the plane ends the stream with ErrClosed once drained.
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("terminal error %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not terminate after plane close")
	}
}

// TestFollowerResumeFromSeq mimics a standby reconnecting after a
// dropped connection: a fresh follower opened at the last applied
// sequence delivers exactly the remainder, with no gap or replay —
// including when the resume point sits mid-segment.
func TestFollowerResumeFromSeq(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 512
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i + 1), Route: route("0.0>1.0")})
	}
	lastSeq := p.LastSeq()

	for _, after := range []uint64{0, 1, 17, 30, lastSeq - 1, lastSeq} {
		fl := p.Follow(after)
		want := after + 1
		for want <= lastSeq {
			rec, err := fl.Next()
			if err != nil {
				t.Fatalf("resume after %d: Next at seq %d: %v", after, want, err)
			}
			if rec.Seq != want {
				t.Fatalf("resume after %d: got seq %d, want %d", after, rec.Seq, want)
			}
			want++
		}
		fl.Close()
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestFollowerLiveTail checks a follower blocked at the tail wakes for
// new appends (group-commit visibility) rather than polling stale EOF.
func TestFollowerLiveTail(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	defer p.Close()

	seq := mustAppend(t, p, &Record{Op: OpConnect, Session: 1, Route: route("0.0>1.0")})
	fl := p.Follow(seq) // positioned at the live tail
	defer fl.Close()
	out, done := collectFollower(fl)

	var appendWG sync.WaitGroup
	appendWG.Add(1)
	go func() {
		defer appendWG.Done()
		time.Sleep(10 * time.Millisecond)
		for i := 0; i < 10; i++ {
			mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(100 + i), Route: route("0.0>1.0")})
		}
	}()
	for i := 0; i < 10; i++ {
		select {
		case rec := <-out:
			if rec.Session != uint64(100+i) {
				t.Fatalf("tail record %d: session %d, want %d", i, rec.Session, 100+i)
			}
		case err := <-done:
			t.Fatalf("follower died: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for tail record %d", i)
		}
	}
	appendWG.Wait()
}

// TestFollowerCompacted: once pruning has dropped the head of the log,
// a follower asked to resume from before the prune horizon reports
// ErrCompacted so the replication server falls back to a snapshot.
func TestFollowerCompacted(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(t, dir)
	opts.SegmentBytes = 256
	p, _, err := Open(opts, testMeta())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer p.Close()
	for i := 0; i < 40; i++ {
		mustAppend(t, p, &Record{Op: OpConnect, Session: uint64(i + 1), Route: route("0.0>1.0")})
	}
	// Two snapshot generations so prune actually removes head segments.
	for g := 0; g < keepSnapshots; g++ {
		if err := p.WriteSnapshot(&Snapshot{LastSeq: p.SyncedSeq() - uint64(keepSnapshots-1-g)}); err != nil {
			t.Fatalf("WriteSnapshot: %v", err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	if segs[0].firstSeq == 1 {
		t.Skip("pruning removed nothing; nothing to assert")
	}
	fl := p.Follow(0)
	if _, err := fl.Next(); !errors.Is(err, ErrCompacted) {
		t.Fatalf("Next after compaction: %v, want ErrCompacted", err)
	}
	fl.Close()

	// A resume inside the retained tail still works.
	fl2 := p.Follow(segs[0].firstSeq - 1)
	rec, err := fl2.Next()
	if err != nil {
		t.Fatalf("retained-tail Next: %v", err)
	}
	if rec.Seq != segs[0].firstSeq {
		t.Fatalf("retained-tail seq %d, want %d", rec.Seq, segs[0].firstSeq)
	}
	fl2.Close()
}

// TestFollowerCloseUnblocks: Close from another goroutine unblocks a
// Next waiting at the tail.
func TestFollowerCloseUnblocks(t *testing.T) {
	dir := t.TempDir()
	p, _ := mustOpen(t, dir)
	defer p.Close()
	fl := p.Follow(p.LastSeq())
	errc := make(chan error, 1)
	go func() {
		_, err := fl.Next()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fl.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrFollowerClosed) {
			t.Fatalf("Next after Close: %v, want ErrFollowerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

// TestAppendReplicaContiguity: the replica append path accepts only the
// exact next sequence — gaps and replays are protocol errors — and a
// replicated log recovers byte-identically to the source state.
func TestAppendReplicaContiguity(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, _ := mustOpen(t, srcDir)
	for i := 0; i < 10; i++ {
		mustAppend(t, src, &Record{Op: OpConnect, Session: uint64(i + 1), Route: route(fmt.Sprintf("%d.0>%d.0", i, i+1))})
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close source: %v", err)
	}

	dst, _ := mustOpen(t, dstDir)
	// dst already holds its own meta record at seq 1; replicate the
	// source log from seq 2 to keep sequences aligned.
	src2, _ := mustOpen(t, srcDir)
	fl := src2.Follow(1)
	for i := 0; i < 10; i++ {
		r, err := fl.Next()
		if err != nil {
			t.Fatalf("source Next: %v", err)
		}
		if err := dst.AppendReplica(r); err != nil {
			t.Fatalf("AppendReplica seq %d: %v", r.Seq, err)
		}
		// Replays and gaps must be rejected.
		if err := dst.AppendReplica(r); err == nil {
			t.Fatalf("AppendReplica accepted a replay of seq %d", r.Seq)
		}
		gap := *r
		gap.Seq = r.Seq + 2
		if err := dst.AppendReplica(&gap); err == nil {
			t.Fatalf("AppendReplica accepted a gap at seq %d", gap.Seq)
		}
	}
	fl.Close()
	src2.Close()
	if err := dst.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := dst.Close(); err != nil {
		t.Fatalf("Close replica: %v", err)
	}

	srcState, _, _, err := ReadState(srcDir)
	if err != nil {
		t.Fatalf("ReadState source: %v", err)
	}
	dstState, _, _, err := ReadState(dstDir)
	if err != nil {
		t.Fatalf("ReadState replica: %v", err)
	}
	if len(dstState.Sessions) != len(srcState.Sessions) {
		t.Fatalf("replica has %d sessions, source %d", len(dstState.Sessions), len(srcState.Sessions))
	}
	for id, want := range srcState.Sessions {
		got, ok := dstState.Sessions[id]
		if !ok {
			t.Fatalf("replica missing session %d", id)
		}
		if got.Route.Conn != want.Route.Conn {
			t.Fatalf("session %d: replica route %q, source %q", id, got.Route.Conn, want.Route.Conn)
		}
	}
}
