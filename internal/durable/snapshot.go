package durable

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"
)

// keepSnapshots is how many checkpoint generations survive pruning:
// the newest plus one fallback in case the newest is found corrupt at
// recovery time.
const keepSnapshots = 2

// WriteSnapshot persists a checkpoint atomically (temp file + fsync +
// rename + directory fsync), then prunes snapshots beyond the retained
// generations and log segments wholly covered by the oldest retained
// one. Pass the state captured by the controller; snap.Meta and
// snap.TakenUnixNs are filled in here.
func (p *Plane) WriteSnapshot(snap *Snapshot) error {
	snap.Meta = p.meta
	if err := writeSnapshotFile(p.opts.Dir, snap); err != nil {
		return err
	}

	p.mu.Lock()
	p.snapSeq = snap.LastSeq
	p.snapUnix = snap.TakenUnixNs
	p.mu.Unlock()

	p.prune()
	return nil
}

// WriteSnapshotTo persists a checkpoint into dir without an open Plane
// — the standby-bootstrap path: a replication stream that has fallen
// off the primary's retained log receives the primary's current
// snapshot, writes it here into an empty data directory, and reopens
// the Plane on top (Open rotates to a fresh segment at LastSeq+1). The
// caller provides snap.Meta; the directory is created if absent.
func WriteSnapshotTo(dir string, snap *Snapshot) error {
	if snap.TakenUnixNs == 0 {
		snap.TakenUnixNs = time.Now().UnixNano()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	return writeSnapshotFile(dir, snap)
}

// writeSnapshotFile is the atomic write core shared by WriteSnapshot
// and WriteSnapshotTo: temp file + fsync + rename + directory fsync.
func writeSnapshotFile(dir string, snap *Snapshot) error {
	if snap.TakenUnixNs == 0 {
		snap.TakenUnixNs = time.Now().UnixNano()
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("durable: encode snapshot: %w", err)
	}
	final := filepath.Join(dir, snapshotName(snap.LastSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(snapshotMagic); err == nil {
		err = writeFrame(w, payload)
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	syncDir(dir)
	return nil
}

// prune removes snapshot generations beyond keepSnapshots and log
// segments every record of which is covered by the OLDEST retained
// snapshot. Recovery falls back to that generation when newer
// snapshots are corrupt, and the fallback needs every record past its
// LastSeq still on disk — pruning against the newest would silently
// lose the records between the generations. The active (final) segment
// is never removed. Pruning is best-effort — failure leaves extra
// files, never missing state.
func (p *Plane) prune() {
	snaps, err := listSnapshots(p.opts.Dir)
	if err != nil || len(snaps) == 0 {
		return
	}
	for i := keepSnapshots; i < len(snaps); i++ {
		if rerr := os.Remove(snaps[i].path); rerr != nil {
			p.opts.Logger.Warn("snapshot prune", slog.String("error", rerr.Error()))
		}
	}
	oldest := len(snaps) - 1
	if oldest > keepSnapshots-1 {
		oldest = keepSnapshots - 1
	}
	lastSeq := snaps[oldest].lastSeq
	segs, err := listSegments(p.opts.Dir)
	if err != nil {
		return
	}
	// A segment's records all precede the next segment's first
	// sequence; it is disposable once that whole range is checkpointed.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq > lastSeq+1 {
			break
		}
		if rerr := os.Remove(segs[i].path); rerr != nil {
			p.opts.Logger.Warn("segment prune", slog.String("error", rerr.Error()))
			break
		}
	}
	syncDir(p.opts.Dir)
}

// readSnapshotFile loads and CRC-checks one snapshot.
func readSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic := make([]byte, len(snapshotMagic))
	if _, err := readFull(br, magic); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: short magic", filepath.Base(path))
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("durable: snapshot %s: bad magic", filepath.Base(path))
	}
	payload, _, err := readFrame(br)
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: decode: %w", filepath.Base(path), err)
	}
	return &snap, nil
}
