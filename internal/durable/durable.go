// Package durable is the crash-safe state plane of the serving path: a
// segmented, CRC32C-framed, append-only write-ahead log plus periodic
// snapshots, from which a controller recovers its full session table
// and failure-plane state after a hard stop.
//
// The design leans on the paper rather than on generality. The
// theorems' nonblocking guarantee is a statement about *state*: any
// admissible session set below the bound is realizable, and a recorded
// route (multistage.RouteRecord) re-applies through Reinstall with no
// router search. The log therefore stores exact routes, not requests —
// recovery replays records into an empty fabric of the same parameters,
// where a set of routes that coexisted at crash time is mutually
// conflict-free by construction. Recovery cannot block, whatever the
// middle-stage provisioning or failure state was.
//
// Log layout (one directory per controller):
//
//	wal-<first-seq, 16 hex>.log   segments: 8-byte magic, then frames
//	snap-<last-seq, 16 hex>.snap  snapshots: 8-byte magic, one frame
//
// Every frame is [4-byte LE payload length][4-byte LE CRC32C][payload],
// payload JSON of one Record. Appends are group-committed: the hot path
// buffers the frame and waits for the shared fsync, which a background
// syncer issues after at most Options.SyncDelay — so the per-append
// sync cost is amortized across the batch and the latency cap is
// explicit. A record is acknowledged only after the fsync covering it
// returns.
//
// Recovery loads the newest CRC-valid snapshot, then replays the log
// tail (records with Seq beyond the snapshot). A corrupted or torn
// tail does not fail recovery: the log is truncated at the first bad
// frame, the byte offset is reported, and serving resumes from what
// was durably acknowledged — exactly the contract fsync gives.
package durable

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/multistage"
)

// Record operations. Connect/branch/fail records carry full
// RouteRecords, so replay is an idempotent upsert of per-session state:
// applying a record twice (possible across the snapshot boundary)
// converges to the same state.
const (
	// OpMeta is the first record of a fresh log: fabric parameters and
	// replica count, making the log self-describing for offline tools.
	OpMeta = "meta"
	// OpConnect acknowledges a new session with its exact route.
	OpConnect = "connect"
	// OpBranch acknowledges a session grow; Route is the full route
	// after the grow (not a delta).
	OpBranch = "branch"
	// OpDisconnect acknowledges a teardown. It is appended *before* the
	// fabric release, so a crash between the two recovers to the
	// acknowledged state (session gone).
	OpDisconnect = "disconnect"
	// OpFail records a middle-module failure together with the
	// post-migration routes of every moved session and the ids of
	// dropped ones.
	OpFail = "fail"
	// OpRepair records a middle-module repair.
	OpRepair = "repair"
	// OpSeal marks a clean drain: everything before it was flushed and
	// the controller shut down with an empty table.
	OpSeal = "seal"
)

// Meta identifies the fabric a log belongs to. Recovery refuses a log
// whose parameters do not match the serving configuration — replaying
// routes into a different geometry would corrupt link bookkeeping.
type Meta struct {
	Params   multistage.Params `json:"params"`
	Replicas int               `json:"replicas"`
	// Backend is the fabric backend the routes were exported by (msw,
	// maw, awg, mesh). Empty in logs written before pluggable backends
	// existed; BackendName derives the name from the construction then.
	Backend string `json:"backend,omitempty"`
}

// BackendName resolves which backend the log belongs to. Pre-backend
// logs recorded only the construction, so an empty Backend falls back
// to the construction's backend (mirrors backend.ForConstruction; kept
// local so the storage layer does not depend on the routing registry).
func (m Meta) BackendName() string {
	if m.Backend != "" {
		return m.Backend
	}
	switch m.Params.Construction {
	case multistage.MAWDominant:
		return "maw"
	case multistage.AWGClos:
		return "awg"
	default:
		return "msw"
	}
}

// Compatible reports whether two metas describe the same fabric
// geometry (the fields Reinstall depends on).
func (m Meta) Compatible(o Meta) bool {
	a, b := m.Params, o.Params
	return m.Replicas == o.Replicas &&
		m.BackendName() == o.BackendName() &&
		a.N == b.N && a.K == b.K && a.R == b.R && a.M == b.M &&
		a.Model == b.Model && a.Construction == b.Construction
}

// SessionRoute is one session's durable state: its stable id, the
// plane it rides, and its exact route.
type SessionRoute struct {
	Session    uint64                 `json:"session"`
	Fabric     int                    `json:"fabric"`
	Branches   int                    `json:"branches,omitempty"`
	Migrations int                    `json:"migrations,omitempty"`
	Route      multistage.RouteRecord `json:"route"`
}

// Record is one logical WAL entry. Seq is assigned by Append and is
// strictly increasing across segments.
type Record struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// Session/Fabric/Route describe the affected session for
	// connect/branch/disconnect.
	Session    uint64                  `json:"session,omitempty"`
	Fabric     int                     `json:"fabric,omitempty"`
	Branches   int                     `json:"branches,omitempty"`
	Migrations int                     `json:"migrations,omitempty"`
	Route      *multistage.RouteRecord `json:"route,omitempty"`
	// Middle is the failed/repaired module for fail/repair.
	Middle int `json:"middle,omitempty"`
	// Migrated/Dropped are a fail record's session outcomes.
	Migrated []SessionRoute `json:"migrated,omitempty"`
	Dropped  []uint64       `json:"dropped,omitempty"`
	// Meta is set on OpMeta records.
	Meta *Meta `json:"meta,omitempty"`
	// TP is the W3C traceparent of the request that produced this
	// record, when its span was sampled. It rides the record through
	// replication streams so a standby's apply/fsync spans join the
	// primary's trace instead of starting orphan trees. Replay ignores
	// it.
	TP string `json:"tp,omitempty"`
}

// Snapshot is the periodic full-state checkpoint. LastSeq is the WAL
// position observed *before* the state was captured, so replaying
// records past LastSeq over the snapshot re-applies at most a few
// already-reflected upserts (harmless — see Record) and never misses
// one.
type Snapshot struct {
	Meta        Meta           `json:"meta"`
	LastSeq     uint64         `json:"last_seq"`
	NextSession uint64         `json:"next_session"`
	TakenUnixNs int64          `json:"taken_unix_ns"`
	Sessions    []SessionRoute `json:"sessions"`
	// Failed maps fabric plane -> failed middle modules.
	Failed map[int][]int `json:"failed,omitempty"`
}

// State is the materialized view a log replays into: the live session
// set, the failure plane, and the session-id high-water mark.
type State struct {
	Sessions    map[uint64]*SessionRoute
	Failed      map[int]map[int]bool
	NextSession uint64
	Sealed      bool
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Sessions: make(map[uint64]*SessionRoute),
		Failed:   make(map[int]map[int]bool),
	}
}

// LoadSnapshot primes the state from a checkpoint.
func (s *State) LoadSnapshot(snap *Snapshot) {
	for i := range snap.Sessions {
		sr := snap.Sessions[i]
		s.Sessions[sr.Session] = &sr
	}
	for plane, mids := range snap.Failed {
		set := make(map[int]bool, len(mids))
		for _, m := range mids {
			set[m] = true
		}
		s.Failed[plane] = set
	}
	if snap.NextSession > s.NextSession {
		s.NextSession = snap.NextSession
	}
}

// Apply folds one record into the state. Unknown ops are ignored (a
// newer writer's records must not fail an older reader outright).
func (s *State) Apply(rec *Record) {
	if rec.Session >= s.NextSession {
		s.NextSession = rec.Session
	}
	switch rec.Op {
	case OpConnect, OpBranch:
		if rec.Route == nil {
			return
		}
		s.Sessions[rec.Session] = &SessionRoute{
			Session:    rec.Session,
			Fabric:     rec.Fabric,
			Branches:   rec.Branches,
			Migrations: rec.Migrations,
			Route:      *rec.Route,
		}
		s.Sealed = false
	case OpDisconnect:
		delete(s.Sessions, rec.Session)
	case OpFail:
		set := s.Failed[rec.Fabric]
		if set == nil {
			set = make(map[int]bool)
			s.Failed[rec.Fabric] = set
		}
		set[rec.Middle] = true
		for i := range rec.Migrated {
			sr := rec.Migrated[i]
			// Update-if-present only: a migrated session's connect
			// record always precedes the fail record, so if the id is
			// absent here a later disconnect removed it and the fail
			// record must not resurrect it.
			if _, ok := s.Sessions[sr.Session]; !ok {
				continue
			}
			s.Sessions[sr.Session] = &sr
			if sr.Session >= s.NextSession {
				s.NextSession = sr.Session
			}
		}
		for _, id := range rec.Dropped {
			delete(s.Sessions, id)
		}
	case OpRepair:
		delete(s.Failed[rec.Fabric], rec.Middle)
	case OpSeal:
		s.Sealed = true
	}
}

// SessionList returns the live sessions ordered by id.
func (s *State) SessionList() []SessionRoute {
	out := make([]SessionRoute, 0, len(s.Sessions))
	for _, sr := range s.Sessions {
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return out
}

// FailedList returns the failure plane as sorted middle lists per
// plane index.
func (s *State) FailedList() map[int][]int {
	out := make(map[int][]int, len(s.Failed))
	for plane, set := range s.Failed {
		if len(set) == 0 {
			continue
		}
		mids := make([]int, 0, len(set))
		for m := range set {
			mids = append(mids, m)
		}
		sort.Ints(mids)
		out[plane] = mids
	}
	return out
}

// Truncation reports where recovery cut a corrupted tail.
type Truncation struct {
	Segment string `json:"segment"`
	// Offset is the byte offset of the first bad frame within the
	// segment file (the new file size after the cut).
	Offset int64  `json:"offset"`
	Reason string `json:"reason"`
}

func (t *Truncation) String() string {
	return fmt.Sprintf("%s@%d: %s", t.Segment, t.Offset, t.Reason)
}

// Recovery is what Open reconstructed: the state to reinstall, where
// the log stands, and what recovery had to do to get there.
type Recovery struct {
	Meta     Meta
	Sessions []SessionRoute // ordered by id
	Failed   map[int][]int  // plane -> failed middles
	// NextSession is the session-id high-water mark; the controller
	// resumes its counter at this value.
	NextSession uint64
	LastSeq     uint64
	// SnapshotSeq is the LastSeq of the snapshot recovery loaded
	// (0 = replayed from the log's beginning).
	SnapshotSeq uint64
	// Records is how many log records were replayed over the snapshot.
	Records int
	// Sealed is true when the log tail is a clean-drain seal.
	Sealed bool
	// Truncated is non-nil when a corrupted tail was cut.
	Truncated *Truncation
	// Elapsed is recovery wall time (scan + replay, not reinstall).
	Elapsed time.Duration
}
