package durable

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	segmentMagic  = "WDMWAL1\n"
	snapshotMagic = "WDMSNP1\n"
	frameHeader   = 8 // 4-byte LE payload length + 4-byte LE CRC32C
	// maxRecordBytes bounds a single frame; anything larger in a length
	// header is treated as corruption, not an allocation request.
	maxRecordBytes = 1 << 24

	defaultSyncDelay    = 2 * time.Millisecond
	defaultSegmentBytes = 16 << 20
)

// castagnoli is the CRC32C table (iSCSI polynomial), the same check
// used by leveldb/rocksdb log formats.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrClosed is returned by Append after Close or Seal.
	ErrClosed = errors.New("durable: log closed")
	// ErrCrashed is returned once Crash has simulated a hard stop.
	ErrCrashed = errors.New("durable: log crashed (fault injection)")
)

// Options configures a Plane.
type Options struct {
	// Dir is the data directory (created if absent).
	Dir string
	// SyncDelay is the group-commit latency cap: the syncer batches
	// appends for at most this long before issuing one fsync for all of
	// them. 0 means the 2ms default; negative syncs every batch
	// immediately (test mode).
	SyncDelay time.Duration
	// SegmentBytes rotates the log when the active segment exceeds this
	// size (default 16 MiB).
	SegmentBytes int64
	// OnFsync, if set, observes every fsync duration (metrics hook).
	OnFsync func(time.Duration)
	// Committer, if set, extends the durability barrier: the group-commit
	// engine calls Committer(upTo) after the batch fsync covering
	// sequence upTo succeeds and before any append in the batch is
	// acknowledged. A replication layer uses it to wait for a standby's
	// ack, so "Append returned" implies "durable on the standby too".
	// Called without the Plane lock held; it must not append to the same
	// Plane and it must return (use its own timeout to degrade).
	Committer func(upTo uint64)
	Logger    *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.SyncDelay == 0 {
		o.SyncDelay = defaultSyncDelay
	}
	if o.SyncDelay < 0 {
		o.SyncDelay = 0
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Stats is a point-in-time view of the log for gauges and dashboards.
type Stats struct {
	Appends       uint64 `json:"appends"`
	Syncs         uint64 `json:"syncs"`
	LastSeq       uint64 `json:"last_seq"`
	SyncedSeq     uint64 `json:"synced_seq"`
	UnsyncedBytes int64  `json:"unsynced_bytes"`
	AppendedBytes int64  `json:"appended_bytes"`
	Segments      int    `json:"segments"`
	SegmentSize   int64  `json:"segment_size"`
	// LastSnapshotUnixNs is 0 until the first snapshot is written or
	// loaded.
	LastSnapshotUnixNs int64  `json:"last_snapshot_unix_ns"`
	LastSnapshotSeq    uint64 `json:"last_snapshot_seq"`
	Sealed             bool   `json:"sealed"`
}

// Plane is the open write-ahead log. Appends are safe for concurrent
// use; a successful Append means the record's frame was fsynced.
type Plane struct {
	opts Options
	meta Meta

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File
	w    *bufio.Writer
	size int64 // bytes in the active segment, including buffered

	seq     uint64 // last assigned sequence number
	synced  uint64 // last sequence covered by a completed fsync
	visible uint64 // last sequence flushed to the segment file (readable by followers)
	// batchFsyncNs / batchCommitNs hold the most recent group commit's
	// fsync duration and Committer (replication ack) duration. They are
	// written under the lock just before the batch's waiters are
	// released, so AppendTimed reads its own batch's split — a later
	// batch can only overwrite them after this batch's waiters ran.
	batchFsyncNs  int64
	batchCommitNs int64
	appended      int64 // cumulative framed bytes handed to the log
	flushed       int64 // cumulative framed bytes covered by fsync
	appends       uint64
	syncs         uint64
	segments      int
	syncing       bool // an fsync is in flight outside the lock
	closed        bool
	crashed       bool
	sealed        bool
	err           error // sticky: first write/fsync failure poisons the log
	snapSeq       uint64
	snapUnix      int64
	snapErr       error
	closeDone     chan struct{}
}

// Meta returns the fabric identity the log was opened with.
func (p *Plane) Meta() Meta { return p.meta }

// Dir returns the data directory.
func (p *Plane) Dir() string { return p.opts.Dir }

// Stats returns a consistent snapshot of log counters.
func (p *Plane) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Appends:            p.appends,
		Syncs:              p.syncs,
		LastSeq:            p.seq,
		SyncedSeq:          p.synced,
		UnsyncedBytes:      p.appended - p.flushed,
		AppendedBytes:      p.appended,
		Segments:           p.segments,
		SegmentSize:        p.size,
		LastSnapshotUnixNs: p.snapUnix,
		LastSnapshotSeq:    p.snapSeq,
		Sealed:             p.sealed,
	}
}

// SyncedSeq returns the durable high-water mark: every record with
// Seq <= SyncedSeq has been fsynced.
func (p *Plane) SyncedSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.synced
}

// VisibleSeq returns the readable high-water mark: every record with
// Seq <= VisibleSeq has been flushed into a segment file and can be
// read back by a Follower. It runs ahead of SyncedSeq by at most one
// group-commit batch (flush happens before the batch fsync).
func (p *Plane) VisibleSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.visible
}

// LastSeq returns the last assigned sequence number (appended, not
// necessarily flushed or fsynced yet).
func (p *Plane) LastSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// Err returns the sticky log error, if any.
func (p *Plane) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Append assigns the record the next sequence number, frames it into
// the active segment, and blocks until the group-commit fsync covering
// it completes. The assigned sequence is returned; on error the record
// must be treated as not persisted (though it may still surface after
// a crash — the usual ambiguous-write caveat).
func (p *Plane) Append(rec *Record) (uint64, error) {
	seq, _, _, err := p.AppendTimed(rec)
	return seq, err
}

// AppendTimed is Append plus the phase split of the group commit that
// made the record durable: fsyncD is the batch's fsync duration and
// commitD the Committer barrier's (replication ack) duration, both 0
// when the batch had none. The split is per batch, not per record —
// every appender released by one group commit reports the same pair.
func (p *Plane) AppendTimed(rec *Record) (seq uint64, fsyncD, commitD time.Duration, err error) {
	p.mu.Lock()
	if p.err != nil {
		err = p.err
		p.mu.Unlock()
		return 0, 0, 0, err
	}
	if p.closed {
		p.mu.Unlock()
		return 0, 0, 0, ErrClosed
	}
	p.seq++
	rec.Seq = p.seq
	payload, merr := json.Marshal(rec)
	if merr != nil {
		p.seq--
		p.mu.Unlock()
		return 0, 0, 0, fmt.Errorf("durable: encode record: %w", merr)
	}
	if len(payload) > maxRecordBytes {
		p.seq--
		p.mu.Unlock()
		return 0, 0, 0, fmt.Errorf("durable: record of %d bytes exceeds frame limit", len(payload))
	}
	if werr := writeFrame(p.w, payload); werr != nil {
		p.failLocked(fmt.Errorf("durable: append: %w", werr))
		err = p.err
		p.mu.Unlock()
		return 0, 0, 0, err
	}
	n := int64(frameHeader + len(payload))
	p.size += n
	p.appended += n
	p.appends++
	if rec.Op == OpSeal {
		p.sealed = true
	} else {
		p.sealed = false
	}
	seq = p.seq
	// Wake the syncer, then wait for the batched fsync to cover us.
	p.cond.Broadcast()
	for p.synced < seq && p.err == nil {
		p.cond.Wait()
	}
	err = p.err
	fsyncD = time.Duration(p.batchFsyncNs)
	commitD = time.Duration(p.batchCommitNs)
	p.mu.Unlock()
	return seq, fsyncD, commitD, err
}

// AppendReplica frames a record that already carries a sequence number
// — a primary's, shipped over a replication stream — into the log. The
// record must extend the log contiguously (rec.Seq == LastSeq()+1); a
// gap or replay is a protocol error, not a write. Unlike Append it does
// not block on the group-commit fsync: a standby acknowledges whole
// batches with an explicit Sync before replying, so per-record waits
// would only serialize the stream.
func (p *Plane) AppendReplica(rec *Record) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	if p.closed {
		return ErrClosed
	}
	if rec.Seq != p.seq+1 {
		return fmt.Errorf("durable: replica append seq %d does not extend last seq %d", rec.Seq, p.seq)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("durable: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return fmt.Errorf("durable: record of %d bytes exceeds frame limit", len(payload))
	}
	if werr := writeFrame(p.w, payload); werr != nil {
		p.failLocked(fmt.Errorf("durable: replica append: %w", werr))
		return p.err
	}
	p.seq = rec.Seq
	n := int64(frameHeader + len(payload))
	p.size += n
	p.appended += n
	p.appends++
	p.sealed = rec.Op == OpSeal
	// Wake the syncer; durability is confirmed by a later Sync().
	p.cond.Broadcast()
	return nil
}

// failLocked records the first error and releases every waiter; the
// log is poisoned from here on (the caller decides whether to keep
// serving without durability).
func (p *Plane) failLocked(err error) {
	if p.err == nil {
		p.err = err
		p.opts.Logger.Warn("wal failed", slog.String("error", err.Error()))
	}
	p.cond.Broadcast()
}

// syncLoop is the group-commit engine: it wakes when appends are
// pending, sleeps the batching window, flushes the buffer, and issues
// one fsync for the whole batch. The mutex is released during the
// fsync so new appends keep buffering — the next batch forms while the
// current one hits the disk.
func (p *Plane) syncLoop() {
	defer close(p.closeDone)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for p.seq == p.synced && !p.closed && p.err == nil {
			p.cond.Wait()
		}
		if p.closed || p.err != nil {
			return
		}
		if p.opts.SyncDelay > 0 {
			p.mu.Unlock()
			time.Sleep(p.opts.SyncDelay)
			p.mu.Lock()
			if p.closed || p.err != nil {
				return
			}
		}
		if err := p.w.Flush(); err != nil {
			p.failLocked(fmt.Errorf("durable: flush: %w", err))
			return
		}
		target := p.seq
		batchBytes := p.appended
		// The whole batch is in the segment file now (though not yet
		// fsynced): publish it to followers so a replication stream can
		// ship it while the fsync is in flight. Rotation below cannot
		// strand a follower — every frame <= target landed before the
		// new segment file exists.
		p.visible = target
		p.cond.Broadcast()
		syncF := p.f
		var oldF *os.File
		if p.size >= p.opts.SegmentBytes {
			if err := p.rotateLocked(target + 1); err != nil {
				p.failLocked(err)
				return
			}
			oldF = syncF
		}
		p.syncing = true
		p.mu.Unlock()
		start := time.Now()
		serr := syncF.Sync()
		d := time.Since(start)
		if oldF != nil {
			oldF.Close()
			syncDir(p.opts.Dir)
		}
		if p.opts.OnFsync != nil && serr == nil {
			p.opts.OnFsync(d)
		}
		// Extend the durability barrier (replication ack) before any
		// appender in the batch is released: a record acknowledged to a
		// client is then durable on the standby as well.
		var commitD time.Duration
		if serr == nil && p.opts.Committer != nil {
			cstart := time.Now()
			p.opts.Committer(target)
			commitD = time.Since(cstart)
		}
		p.mu.Lock()
		p.syncing = false
		if serr != nil {
			p.failLocked(fmt.Errorf("durable: fsync: %w", serr))
			return
		}
		p.syncs++
		p.synced = target
		p.flushed = batchBytes
		p.batchFsyncNs = d.Nanoseconds()
		p.batchCommitNs = commitD.Nanoseconds()
		p.cond.Broadcast()
	}
}

// rotateLocked switches the active segment. The outgoing file has been
// flushed; frames appended while its final fsync is in flight buffer
// into the new segment.
func (p *Plane) rotateLocked(firstSeq uint64) error {
	f, err := createSegment(p.opts.Dir, firstSeq)
	if err != nil {
		return fmt.Errorf("durable: rotate: %w", err)
	}
	p.f = f
	p.w = bufio.NewWriter(f)
	p.size = int64(len(segmentMagic))
	p.segments++
	return nil
}

// Sync forces a flush+fsync of everything appended so far (used by
// snapshotting and tests; the hot path relies on group commit).
func (p *Plane) Sync() error {
	p.mu.Lock()
	target := p.seq
	for p.synced < target && p.err == nil && !p.closed {
		p.cond.Broadcast()
		p.cond.Wait()
	}
	err := p.err
	p.mu.Unlock()
	return err
}

// Seal appends a clean-shutdown marker, waits for it to be durable,
// and closes the log. A sealed log recovers to an explicit
// "clean drain" state.
func (p *Plane) Seal() error {
	if _, err := p.Append(&Record{Op: OpSeal}); err != nil {
		p.Close()
		return err
	}
	return p.Close()
}

// Close flushes, fsyncs, and closes the log. Blocked appenders are
// released (their records are made durable by the final fsync).
func (p *Plane) Close() error {
	p.mu.Lock()
	if p.closed {
		err := p.err
		p.mu.Unlock()
		if err != nil && !errors.Is(err, ErrCrashed) {
			return err
		}
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	for p.syncing {
		p.cond.Wait()
	}
	var err error
	if p.err == nil {
		if ferr := p.w.Flush(); ferr != nil {
			err = fmt.Errorf("durable: close flush: %w", ferr)
		} else if serr := p.f.Sync(); serr != nil {
			err = fmt.Errorf("durable: close fsync: %w", serr)
		} else {
			p.visible = p.seq
			if p.opts.Committer != nil {
				// Let the replication stream drain the final records
				// before the appenders they cover are released.
				target := p.seq
				p.cond.Broadcast()
				p.mu.Unlock()
				p.opts.Committer(target)
				p.mu.Lock()
			}
			p.synced = p.seq
			p.flushed = p.appended
		}
		if err != nil {
			p.failLocked(err)
		}
	} else {
		err = p.err
	}
	p.f.Close()
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.closeDone
	return err
}

// Crash simulates a hard stop (kill -9) for fault injection and tests:
// the user-space buffer is dropped without flushing and the file is
// closed, so frames not yet covered by a group-commit fsync are lost —
// exactly the records whose Append had not yet acknowledged. Acked
// records survive by definition.
func (p *Plane) Crash() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.crashed = true
	p.cond.Broadcast()
	for p.syncing {
		p.cond.Wait()
	}
	// Drop the buffered frames on the floor: Reset points the writer at
	// a discard so nothing buffered reaches the file descriptor.
	p.w.Reset(discardWriter{})
	p.f.Close()
	p.failLocked(ErrCrashed)
	p.mu.Unlock()
	<-p.closeDone
}

type discardWriter struct{}

func (discardWriter) Write(b []byte) (int, error) { return len(b), nil }

// writeFrame emits [len][crc32c][payload].
func writeFrame(w *bufio.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func segmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

func snapshotName(lastSeq uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lastSeq)
}

func createSegment(dir string, firstSeq uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// segmentInfo identifies one on-disk log segment.
type segmentInfo struct {
	name     string
	path     string
	firstSeq uint64
}

type snapshotInfo struct {
	name    string
	path    string
	lastSeq uint64
}

// listSegments returns the data directory's segments ordered by first
// sequence number. Files with unparseable names are ignored.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segmentInfo{name: name, path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// listSnapshots returns snapshots ordered newest first.
func listSnapshots(dir string) ([]snapshotInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []snapshotInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		if err != nil {
			continue
		}
		snaps = append(snaps, snapshotInfo{name: name, path: filepath.Join(dir, name), lastSeq: seq})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].lastSeq > snaps[j].lastSeq })
	return snaps, nil
}
