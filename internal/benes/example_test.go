package benes_test

import (
	"fmt"

	"repro/internal/benes"
)

// The looping algorithm configures the 2x2 switch columns for any
// permutation; evaluation confirms the realization.
func ExampleNetwork_RoutePermutation() {
	b, err := benes.New(8)
	if err != nil {
		panic(err)
	}
	perm := []int{3, 7, 0, 1, 6, 2, 5, 4}
	if err := b.RoutePermutation(perm); err != nil {
		panic(err)
	}
	ok := true
	for i, want := range perm {
		if b.Output(i) != want {
			ok = false
		}
	}
	fmt.Printf("realized: %v, crosspoints: %d (crossbar would use %d)\n",
		ok, benes.Crosspoints(8), 8*8)
	// Output: realized: true, crosspoints: 80 (crossbar would use 64)
}
