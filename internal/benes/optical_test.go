package benes

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

func TestOpticalCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		o, err := NewOptical(n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := o.Fabric().Crosspoints(), Crosspoints(n); got != want {
			t.Errorf("n=%d: %d gates built, closed form says %d", n, got, want)
		}
		if got := o.Fabric().Count(fabric.Converter); got != 0 {
			t.Errorf("n=%d: Beneš fabric has %d converters, want 0", n, got)
		}
		// Two splitters and two combiners per 2x2 switch.
		if got, want := o.Fabric().Count(fabric.Splitter), 2*Switches(n); got != want {
			t.Errorf("n=%d: %d splitters, want %d", n, got, want)
		}
	}
}

// TestOpticalRealizesAllPermutationsN4 propagates real signals through
// the gate-level Beneš fabric for every permutation of 4 elements.
func TestOpticalRealizesAllPermutationsN4(t *testing.T) {
	o, err := NewOptical(4)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	permute(4, func(p []int) {
		perm := append([]int(nil), p...)
		if _, err := o.Realize(perm); err != nil {
			t.Fatalf("perm %v: %v", perm, err)
		}
		count++
	})
	if count != 24 {
		t.Fatalf("visited %d permutations", count)
	}
}

func TestOpticalRealizesRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{8, 16, 32} {
		o, err := NewOptical(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			if _, err := o.Realize(rng.Perm(n)); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

// TestOpticalLossGrowsWithDepth: every extra switch column costs
// splitting + gate + combining loss, so the worst-path loss grows
// linearly with 2 log2 n - 1 — the optical argument for wide-and-
// shallow designs at small N.
func TestOpticalLossGrowsWithDepth(t *testing.T) {
	losses := map[int]float64{}
	for _, n := range []int{4, 8, 16} {
		o, err := NewOptical(n)
		if err != nil {
			t.Fatal(err)
		}
		perm := make([]int, n)
		for i := range perm {
			perm[i] = (i + 1) % n
		}
		res, err := o.Realize(perm)
		if err != nil {
			t.Fatal(err)
		}
		losses[n] = res.MaxLossDB
		if res.MaxGates != Levels(n) {
			t.Errorf("n=%d: path crosses %d gates, want one per column = %d", n, res.MaxGates, Levels(n))
		}
	}
	if !(losses[4] < losses[8] && losses[8] < losses[16]) {
		t.Errorf("loss not increasing with depth: %v", losses)
	}
}

func TestOpticalConfigureValidation(t *testing.T) {
	o, err := NewOptical(4)
	if err != nil {
		t.Fatal(err)
	}
	other, _ := New(8)
	_ = other.RoutePermutation([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err := o.Configure(other); err == nil {
		t.Error("size mismatch accepted")
	}
	fresh, _ := New(4)
	if err := o.Configure(fresh); err == nil {
		t.Error("unrouted network accepted")
	}
}
