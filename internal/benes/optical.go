package benes

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// Optical is a gate-level realization of a configured Beneš network:
// every 2x2 switch becomes two 1x2 splitters, four SOA gates and two
// 2x1 combiners (the same technology as the paper's crossbars — a "bar"
// or "cross" state is two gates on). Building it from real elements lets
// the Beneš baseline be verified the same way as the crossbar designs:
// by propagating signals and checking arrivals.
type Optical struct {
	n   int
	fab *fabric.Fabric
	// gates[level][switch] = the four gates of that 2x2 switch in
	// (in0->out0, in0->out1, in1->out0, in1->out1) order.
	gates [][][4]fabric.ElemID
}

// NewOptical builds the element graph for an n-port Beneš network
// (n a power of two), with all switches dark.
func NewOptical(n int) (*Optical, error) {
	if _, err := New(n); err != nil {
		return nil, err
	}
	o := &Optical{n: n, fab: fabric.New()}
	levels := Levels(n)
	o.gates = make([][][4]fabric.ElemID, levels)

	// wires[i] is the element currently driving line i between columns.
	wires := make([]fabric.ElemID, n)
	for i := 0; i < n; i++ {
		wires[i] = o.fab.AddInput(wdm.Port(i))
	}
	for lvl := 0; lvl < levels; lvl++ {
		o.gates[lvl] = make([][4]fabric.ElemID, n/2)
		next := make([]fabric.ElemID, n)
		for s := 0; s < n/2; s++ {
			in0, in1 := topology(n, lvl, s)
			sp0 := o.fab.AddSplitter(fmt.Sprintf("L%d.S%d.split0", lvl, s))
			sp1 := o.fab.AddSplitter(fmt.Sprintf("L%d.S%d.split1", lvl, s))
			o.fab.Connect(wires[in0], sp0)
			o.fab.Connect(wires[in1], sp1)
			cb0 := o.fab.AddCombiner(fmt.Sprintf("L%d.S%d.comb0", lvl, s))
			cb1 := o.fab.AddCombiner(fmt.Sprintf("L%d.S%d.comb1", lvl, s))
			var g [4]fabric.ElemID
			for gi, wire := range []struct {
				from fabric.ElemID
				to   fabric.ElemID
			}{{sp0, cb0}, {sp0, cb1}, {sp1, cb0}, {sp1, cb1}} {
				gate := o.fab.AddGate(fmt.Sprintf("L%d.S%d.g%d", lvl, s, gi))
				o.fab.Connect(wire.from, gate)
				o.fab.Connect(gate, wire.to)
				g[gi] = gate
			}
			o.gates[lvl][s] = g
			next[in0], next[in1] = cb0, cb1
		}
		wires = next
	}
	for i := 0; i < n; i++ {
		out := o.fab.AddOutput(wdm.Port(i))
		o.fab.Connect(wires[i], out)
	}
	if err := o.fab.Validate(); err != nil {
		return nil, fmt.Errorf("benes: optical construction bug: %w", err)
	}
	return o, nil
}

// topology returns the two global line indices switch s of column lvl
// connects, in the flattened recursive layout. Lines never move: a
// parent switch's upper combiner stays on its in0 line, so the upper
// subnetwork of depth d+1 lives on the lines whose d-th "choice bit" is
// 0 (interleaved, not contiguous). collect() enumerates subnetworks
// contiguously (upper block first), so the subnetwork index translates
// to the physical line-path bits by a bit reversal.
func topology(n, lvl, s int) (int, int) {
	levels := Levels(n)
	// Distance from the nearer edge selects the recursion depth.
	d := lvl
	if mirror := levels - 1 - lvl; mirror < d {
		d = mirror
	}
	perSub := (n >> d) / 2 // switches per depth-d subnetwork
	sb := s / perSub       // contiguous subnetwork index (collect's order)
	t := s % perSub        // local switch inside the subnetwork
	path := bitReverse(sb, d)
	return (2*t)<<d | path, (2*t+1)<<d | path
}

// bitReverse reverses the low `bits` bits of v.
func bitReverse(v, bits int) int {
	out := 0
	for i := 0; i < bits; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}

// Configure drives the gates from a routed logical network: bar state
// lights gates (in0->out0, in1->out1); cross lights (in0->out1,
// in1->out0).
func (o *Optical) Configure(b *Network) error {
	if b.n != o.n {
		return fmt.Errorf("benes: size mismatch %d vs %d", b.n, o.n)
	}
	if b.root == nil {
		return fmt.Errorf("benes: network not routed")
	}
	states := make([][]bool, Levels(o.n))
	for lvl := range states {
		states[lvl] = make([]bool, o.n/2)
	}
	collect(b.root, 0, 0, states)
	for lvl, col := range states {
		for s, crossed := range col {
			g := o.gates[lvl][s]
			o.fab.SetGate(g[0], !crossed)
			o.fab.SetGate(g[3], !crossed)
			o.fab.SetGate(g[1], crossed)
			o.fab.SetGate(g[2], crossed)
		}
	}
	return nil
}

// collect flattens the recursive configuration into (column, switch)
// cross/bar states. A config of size m contributes its input column at
// depth d, its output column mirrored, and recurses into the middle.
// Sub-switch indices interleave exactly as topology() lays lines out:
// the upper subnetwork handles even pairs of the block, lower the odd
// ones — matching the convention that a straight input switch sends its
// even input up.
func collect(c *config, depth, offset int, states [][]bool) {
	if c.n == 2 {
		states[depth][offset] = c.cross
		return
	}
	half := c.n / 2
	outCol := len(states) - 1 - depth
	for s := 0; s < half; s++ {
		states[depth][offset+s] = c.inCross[s]
		states[outCol][offset+s] = c.outCross[s]
	}
	collect(c.upper, depth+1, offset, states)
	collect(c.lower, depth+1, offset+half/2, states)
}

// Realize routes the permutation logically, configures the optics,
// injects one signal per input, propagates, and checks every arrival —
// the optical proof that the looping algorithm's switch settings carry
// the permutation. It returns the propagation result for loss/crosstalk
// inspection.
func (o *Optical) Realize(perm []int) (*fabric.Result, error) {
	logical, err := New(o.n)
	if err != nil {
		return nil, err
	}
	if err := logical.RoutePermutation(perm); err != nil {
		return nil, err
	}
	if err := o.Configure(logical); err != nil {
		return nil, err
	}
	o.fab.ClearSignals()
	for i := 0; i < o.n; i++ {
		o.fab.Inject(wdm.PortWave{Port: wdm.Port(i), Wave: 0}, i)
	}
	res, err := o.fab.Propagate()
	if err != nil {
		return nil, err
	}
	for i, want := range perm {
		slot := wdm.PortWave{Port: wdm.Port(want), Wave: 0}
		sig, ok := res.Arrived[slot]
		if !ok {
			return res, fmt.Errorf("benes: input %d's signal never reached output %d", i, want)
		}
		if sig.ID != i {
			return res, fmt.Errorf("benes: output %d received signal %d, want %d", want, sig.ID, i)
		}
	}
	return res, nil
}

// Fabric exposes the element graph (for cost audits and DOT export).
func (o *Optical) Fabric() *fabric.Fabric { return o.fab }
