package benes

import "testing"

// FuzzRoutePermutation derives a permutation of 8 elements from the fuzz
// input (Lehmer-code style) and checks that the looping algorithm always
// realizes it exactly.
func FuzzRoutePermutation(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(40319))
	f.Add(uint32(12345))
	net, err := New(8)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, code uint32) {
		perm := lehmer(8, code%40320)
		if err := net.RoutePermutation(perm); err != nil {
			t.Fatalf("route %v: %v", perm, err)
		}
		for i, want := range perm {
			if got := net.Output(i); got != want {
				t.Fatalf("perm %v: input %d -> %d, want %d", perm, i, got, want)
			}
		}
	})
}

// lehmer decodes a factorial-number-system code into a permutation.
func lehmer(n int, code uint32) []int {
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, n)
	fact := uint32(1)
	for i := 2; i < n; i++ {
		fact *= uint32(i)
	}
	for i := 0; i < n; i++ {
		idx := int(code / fact)
		code %= fact
		perm[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
		if n-1-i > 0 {
			fact /= uint32(n - 1 - i)
		}
	}
	return perm
}

// FuzzComplete checks the partial-demand completion never produces a
// non-permutation from valid partial input.
func FuzzComplete(f *testing.F) {
	f.Add(uint16(0x3210))
	f.Fuzz(func(t *testing.T, raw uint16) {
		dest := make([]int, 4)
		for i := range dest {
			v := int(raw>>(4*i))&0x7 - 1 // -1..6
			if v >= 4 {
				v = -1
			}
			dest[i] = v
		}
		full, err := Complete(dest)
		if err != nil {
			return // invalid partial demand (dup/out of range): fine
		}
		seen := map[int]bool{}
		for i, v := range full {
			if v < 0 || v >= 4 || seen[v] {
				t.Fatalf("Complete(%v) = %v is not a permutation", dest, full)
			}
			seen[v] = true
			if dest[i] != -1 && dest[i] != v {
				t.Fatalf("Complete(%v) changed demanded entry %d", dest, i)
			}
		}
	})
}
