package benes_test

import (
	"fmt"

	"repro/internal/benes"
)

// A permutation realized as light: the looping algorithm sets the 2x2
// switch states and propagation through the SOA-gate fabric confirms
// every signal lands where it should. Loss grows with the column count
// (2 log2 N - 1), not the port count — the depth-vs-width trade against
// the crossbar designs.
func ExampleOptical() {
	o, err := benes.NewOptical(8)
	if err != nil {
		panic(err)
	}
	res, err := o.Realize([]int{5, 3, 7, 1, 0, 6, 2, 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d signals through %d gates/path, worst loss %.1f dB\n",
		len(res.Arrived), res.MaxGates, res.MaxLossDB)
	// Output: delivered 8 signals through 5 gates/path, worst loss 35.1 dB
}
