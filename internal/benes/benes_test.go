package benes

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

func mustRoute(t *testing.T, n int, perm []int) *Network {
	t.Helper()
	b, err := New(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RoutePermutation(perm); err != nil {
		t.Fatalf("route %v: %v", perm, err)
	}
	return b
}

func checkRealizes(t *testing.T, b *Network, perm []int) {
	t.Helper()
	for i, want := range perm {
		if got := b.Output(i); got != want {
			t.Fatalf("perm %v: input %d exits at %d, want %d", perm, i, got, want)
		}
	}
}

func TestNewValidatesSize(t *testing.T) {
	for _, n := range []int{0, 1, 3, 6, 12} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
	for _, n := range []int{2, 4, 8, 64} {
		if _, err := New(n); err != nil {
			t.Errorf("New(%d): %v", n, err)
		}
	}
}

func TestBaseCase(t *testing.T) {
	checkRealizes(t, mustRoute(t, 2, []int{0, 1}), []int{0, 1})
	checkRealizes(t, mustRoute(t, 2, []int{1, 0}), []int{1, 0})
}

// TestAllPermutationsN4 and N8 prove rearrangeability exhaustively: the
// looping algorithm realizes every one of the 24 / 40320 permutations.
func TestAllPermutationsN4(t *testing.T) {
	permute(4, func(p []int) {
		checkRealizes(t, mustRoute(t, 4, p), p)
	})
}

func TestAllPermutationsN8(t *testing.T) {
	if testing.Short() {
		t.Skip("40320 permutations in -short mode")
	}
	b, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	permute(8, func(p []int) {
		if err := b.RoutePermutation(p); err != nil {
			t.Fatalf("route %v: %v", p, err)
		}
		for i, want := range p {
			if got := b.Output(i); got != want {
				t.Fatalf("perm %v: input %d -> %d, want %d", p, i, got, want)
			}
		}
		count++
	})
	if count != 40320 {
		t.Fatalf("visited %d permutations, want 8!", count)
	}
}

func TestRandomPermutationsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{16, 64, 256} {
		b, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			p := rng.Perm(n)
			if err := b.RoutePermutation(p); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			for i, want := range p {
				if got := b.Output(i); got != want {
					t.Fatalf("n=%d trial %d: input %d -> %d, want %d", n, trial, i, got, want)
				}
			}
		}
	}
}

func TestRoutePermutationValidation(t *testing.T) {
	b, _ := New(4)
	for _, p := range [][]int{
		{0, 1, 2},     // short
		{0, 1, 2, 2},  // repeat
		{0, 1, 2, 4},  // out of range
		{0, 1, 2, -1}, // negative
	} {
		if err := b.RoutePermutation(p); err == nil {
			t.Errorf("accepted %v", p)
		}
	}
	// Unconfigured evaluation panics.
	fresh, _ := New(4)
	defer func() {
		if recover() == nil {
			t.Error("Output on unconfigured network did not panic")
		}
	}()
	fresh.Output(0)
}

func TestCounts(t *testing.T) {
	cases := []struct{ n, levels, switches, xpts int }{
		{2, 1, 1, 4},
		{4, 3, 6, 24},
		{8, 5, 20, 80},
		{16, 7, 56, 224},
	}
	for _, c := range cases {
		if got := Levels(c.n); got != c.levels {
			t.Errorf("Levels(%d) = %d, want %d", c.n, got, c.levels)
		}
		if got := Switches(c.n); got != c.switches {
			t.Errorf("Switches(%d) = %d, want %d", c.n, got, c.switches)
		}
		if got := Crosspoints(c.n); got != c.xpts {
			t.Errorf("Crosspoints(%d) = %d, want %d", c.n, got, c.xpts)
		}
	}
}

func TestComplete(t *testing.T) {
	full, err := Complete([]int{3, -1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if full[0] != 3 || full[2] != 0 {
		t.Errorf("demanded entries changed: %v", full)
	}
	seen := map[int]bool{}
	for _, v := range full {
		if seen[v] {
			t.Fatalf("not a permutation: %v", full)
		}
		seen[v] = true
	}
	if _, err := Complete([]int{0, 0, -1, -1}); err == nil {
		t.Error("duplicate demand accepted")
	}
	if _, err := Complete([]int{9, -1}); err == nil {
		t.Error("out-of-range demand accepted")
	}
}

func TestWDMAssignment(t *testing.T) {
	w, err := NewWDM(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := wdm.Assignment{
		{Source: wdm.PortWave{Port: 0, Wave: 0}, Dests: []wdm.PortWave{{Port: 5, Wave: 0}}},
		{Source: wdm.PortWave{Port: 0, Wave: 1}, Dests: []wdm.PortWave{{Port: 2, Wave: 1}}},
		{Source: wdm.PortWave{Port: 3, Wave: 0}, Dests: []wdm.PortWave{{Port: 0, Wave: 0}}},
	}
	if err := w.RouteAssignment(a); err != nil {
		t.Fatal(err)
	}
	for _, c := range a {
		if got := w.Output(c.Source); got != c.Dests[0] {
			t.Errorf("%v delivered to %v, want %v", c.Source, got, c.Dests[0])
		}
	}
	if got := w.Crosspoints(); got != 2*Crosspoints(8) {
		t.Errorf("WDM crosspoints = %d", got)
	}
}

func TestWDMRejectsMulticast(t *testing.T) {
	w, _ := NewWDM(4, 1)
	a := wdm.Assignment{
		{Source: wdm.PortWave{Port: 0}, Dests: []wdm.PortWave{{Port: 1}, {Port: 2}}},
	}
	if err := w.RouteAssignment(a); err == nil {
		t.Error("multicast accepted by the unicast Beneš baseline")
	}
}

func TestWDMRejectsWavelengthShift(t *testing.T) {
	w, _ := NewWDM(4, 2)
	a := wdm.Assignment{
		{Source: wdm.PortWave{Port: 0, Wave: 0}, Dests: []wdm.PortWave{{Port: 1, Wave: 1}}},
	}
	if err := w.RouteAssignment(a); err == nil {
		t.Error("wavelength-shifting connection accepted by MSW planes")
	}
}

func TestBenesCheaperThanCrossbarAndClos(t *testing.T) {
	// The classical hierarchy at N=1024: Beneš < Clos < crossbar.
	n := 1024
	benes := Crosspoints(n) // 2*1024*19 = 38,912... check: 4*(512*19)
	crossbarCost := n * n   // k=1
	if benes >= crossbarCost {
		t.Errorf("Beneš %d not below crossbar %d", benes, crossbarCost)
	}
	// Clos (from Table 2, k=1 MSW): ~1.18M/2 at k=2 → 589,824 at k=1.
	closCost := 589824
	if benes >= closCost {
		t.Errorf("Beneš %d not below Clos %d", benes, closCost)
	}
}

// permute enumerates all permutations of {0..n-1} (Heap's algorithm).
func permute(n int, visit func([]int)) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			visit(p)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				p[i], p[k-1] = p[k-1], p[i]
			} else {
				p[0], p[k-1] = p[k-1], p[0]
			}
		}
	}
	rec(n)
}
