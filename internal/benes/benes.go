// Package benes implements the Beneš rearrangeable permutation network
// and its looping routing algorithm — the classical O(N log N) baseline
// the paper's strictly nonblocking designs are weighed against.
//
// A Beneš network on N = 2^t ports is built from 2x2 switches: a column
// of N/2 input switches, two nested Beneš networks of size N/2, and a
// column of N/2 output switches (2 log2 N - 1 columns in total). It can
// realize *every* permutation — with rearrangement: routing is computed
// for the whole permutation at once by the looping algorithm, unlike the
// paper's networks which admit connections online without disturbing
// existing ones.
//
// In the repository's cost story this provides the third point of the
// classical hierarchy for unicast traffic:
//
//	crossbar     kN^2 crosspoints        strictly nonblocking
//	Clos (§3)    ~kN^1.5 log/loglog      strictly nonblocking (multicast!)
//	Beneš        2kN(2 log2 N - 1)       rearrangeable, unicast
//
// A WDM variant (k parallel planes, MSW-style) carries one permutation
// per wavelength.
package benes

import (
	"fmt"
	"math/bits"
)

// Network is a configured Beneš network of size n (a power of two).
type Network struct {
	n    int
	root *config
}

// config is one recursion level's switch state.
type config struct {
	n                 int
	inCross, outCross []bool // per 2x2 switch: crossed or straight
	upper, lower      *config
	cross             bool // base case (n == 2): the single switch
}

// New returns an unconfigured Beneš network on n ports. n must be a
// power of two and at least 2.
func New(n int) (*Network, error) {
	if n < 2 || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("benes: n = %d must be a power of two >= 2", n)
	}
	return &Network{n: n}, nil
}

// Size returns the port count.
func (b *Network) Size() int { return b.n }

// Levels returns the number of switch columns: 2 log2 n - 1.
func Levels(n int) int { return 2*bits.Len(uint(n-1)) - 1 }

// Switches returns the 2x2 switch count: (n/2) * (2 log2 n - 1).
func Switches(n int) int { return n / 2 * Levels(n) }

// Crosspoints returns the crosspoint count at 4 per 2x2 switch:
// 2n(2 log2 n - 1).
func Crosspoints(n int) int { return 4 * Switches(n) }

// RoutePermutation configures the network to realize the permutation:
// input i connects to output perm[i]. perm must be a full permutation of
// {0..n-1}; route partial demands by completing them (see Complete).
// The looping algorithm decides, cycle by cycle, which input of every
// input switch enters the upper subnetwork, then recurses.
func (b *Network) RoutePermutation(perm []int) error {
	if len(perm) != b.n {
		return fmt.Errorf("benes: permutation has %d entries, want %d", len(perm), b.n)
	}
	seen := make([]bool, b.n)
	for i, v := range perm {
		if v < 0 || v >= b.n || seen[v] {
			return fmt.Errorf("benes: not a permutation at index %d (value %d)", i, v)
		}
		seen[v] = true
	}
	cfg, err := route(perm)
	if err != nil {
		return err
	}
	b.root = cfg
	return nil
}

func route(perm []int) (*config, error) {
	n := len(perm)
	if n == 2 {
		return &config{n: 2, cross: perm[0] == 1}, nil
	}
	half := n / 2
	inv := make([]int, n)
	for i, v := range perm {
		inv[v] = i
	}

	// subnet[i] = +1 if input i enters the upper subnetwork, -1 lower.
	subnet := make([]int, n)
	for start := 0; start < n; start++ {
		if subnet[start] != 0 {
			continue
		}
		// Open a new loop: send this input up, then alternate around the
		// cycle of sibling constraints.
		subnet[start] = +1
		i := start
		for {
			// The sibling input on i's switch goes the other way.
			j := i ^ 1
			if subnet[j] != 0 {
				if subnet[j] != -subnet[i] {
					return nil, fmt.Errorf("benes: looping inconsistency at input %d", j)
				}
				break
			}
			subnet[j] = -subnet[i]
			// j's output has a sibling on its output switch, which must
			// be fed from the other subnetwork — follow it back to its
			// input.
			next := inv[perm[j]^1]
			if subnet[next] != 0 {
				if subnet[next] != -subnet[j] {
					return nil, fmt.Errorf("benes: looping inconsistency at input %d", next)
				}
				break
			}
			subnet[next] = -subnet[j]
			i = next
		}
	}

	// Derive switch states and the two sub-permutations. Convention:
	// straight input switch sends its even input up; straight output
	// switch feeds its even output from the upper subnetwork.
	cfg := &config{
		n:        n,
		inCross:  make([]bool, half),
		outCross: make([]bool, half),
	}
	upPerm := make([]int, half)
	downPerm := make([]int, half)
	for s := 0; s < half; s++ {
		evenUp := subnet[2*s] == +1
		cfg.inCross[s] = !evenUp
		inUp, inDown := 2*s, 2*s+1
		if !evenUp {
			inUp, inDown = inDown, inUp
		}
		upPerm[s] = perm[inUp] / 2
		downPerm[s] = perm[inDown] / 2
	}
	for t := 0; t < half; t++ {
		evenFromUp := subnet[inv[2*t]] == +1
		cfg.outCross[t] = !evenFromUp
	}

	var err error
	if cfg.upper, err = route(upPerm); err != nil {
		return nil, err
	}
	if cfg.lower, err = route(downPerm); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Output evaluates the configured network: the output port input i's
// signal exits at. It panics if the network has not been routed.
func (b *Network) Output(i int) int {
	if b.root == nil {
		panic("benes: network not configured; call RoutePermutation first")
	}
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("benes: input %d out of range", i))
	}
	return b.root.eval(i)
}

func (c *config) eval(i int) int {
	if c.n == 2 {
		if c.cross {
			return i ^ 1
		}
		return i
	}
	s := i / 2
	goesUp := (i%2 == 0) != c.inCross[s]
	var t int
	if goesUp {
		t = c.upper.eval(s)
	} else {
		t = c.lower.eval(s)
	}
	// Output switch t: straight feeds its even output from upper.
	fromUpEven := !c.outCross[t]
	if goesUp == fromUpEven {
		return 2 * t
	}
	return 2*t + 1
}

// Complete fills a partial demand (dest[i] = -1 for idle inputs) into a
// full permutation by matching unused inputs to unused outputs in order,
// so RoutePermutation can route it; Output remains meaningful for the
// demanded inputs.
func Complete(dest []int) ([]int, error) {
	n := len(dest)
	out := make([]int, n)
	usedOut := make([]bool, n)
	for i, v := range dest {
		out[i] = v
		if v == -1 {
			continue
		}
		if v < 0 || v >= n || usedOut[v] {
			return nil, fmt.Errorf("benes: invalid partial demand at input %d (output %d)", i, v)
		}
		usedOut[v] = true
	}
	next := 0
	for i, v := range out {
		if v != -1 {
			continue
		}
		for usedOut[next] {
			next++
		}
		out[i] = next
		usedOut[next] = true
	}
	return out, nil
}
