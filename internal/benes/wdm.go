package benes

import (
	"fmt"

	"repro/internal/wdm"
)

// WDM is the k-wavelength Beneš variant: k parallel single-wavelength
// planes (the MSW structure of the paper's Fig. 4, applied to the Beneš
// topology). Each plane carries one permutation; a full WDM demand is k
// permutations at once, rearrangeably.
type WDM struct {
	n, k   int
	planes []*Network
}

// NewWDM builds a k-plane Beneš network on n ports.
func NewWDM(n, k int) (*WDM, error) {
	if k < 1 {
		return nil, fmt.Errorf("benes: k = %d must be positive", k)
	}
	w := &WDM{n: n, k: k}
	for p := 0; p < k; p++ {
		plane, err := New(n)
		if err != nil {
			return nil, err
		}
		w.planes = append(w.planes, plane)
	}
	return w, nil
}

// RouteAssignment configures the planes to carry a unicast MSW
// assignment: every connection has fanout 1 and keeps its wavelength
// (Beneš switches cannot split or convert light). Unused slots idle.
func (w *WDM) RouteAssignment(a wdm.Assignment) error {
	d := wdm.Dim{N: w.n, K: w.k}
	if err := d.CheckAssignment(wdm.MSW, a); err != nil {
		return fmt.Errorf("benes: %w", err)
	}
	dests := make([][]int, w.k)
	for p := range dests {
		dests[p] = make([]int, w.n)
		for i := range dests[p] {
			dests[p][i] = -1
		}
	}
	for _, c := range a {
		if c.Fanout() != 1 {
			return fmt.Errorf("benes: connection %v is multicast; the Beneš baseline is unicast-only", c)
		}
		dests[c.Source.Wave][c.Source.Port] = int(c.Dests[0].Port)
	}
	for p := 0; p < w.k; p++ {
		full, err := Complete(dests[p])
		if err != nil {
			return err
		}
		if err := w.planes[p].RoutePermutation(full); err != nil {
			return err
		}
	}
	return nil
}

// Output evaluates the configured plane for one input slot.
func (w *WDM) Output(slot wdm.PortWave) wdm.PortWave {
	out := w.planes[slot.Wave].Output(int(slot.Port))
	return wdm.PortWave{Port: wdm.Port(out), Wave: slot.Wave}
}

// Crosspoints returns the WDM Beneš crosspoint count: k planes of
// 2n(2 log2 n - 1).
func (w *WDM) Crosspoints() int { return w.k * Crosspoints(w.n) }
