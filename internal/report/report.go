// Package report renders the experiment tables printed by the cmd tools
// and benchmarks in a layout mirroring the paper's Tables 1 and 2:
// monospace columns, right-aligned numbers, optional title and footnote.
package report

import (
	"fmt"
	"io"
	"math/big"
	"strings"
)

// Table accumulates rows and renders them column-aligned.
type Table struct {
	Title    string
	Header   []string
	Footnote string
	rows     [][]string
}

// New returns a table with the given title and column headers.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
	if t.Footnote != "" {
		fmt.Fprintf(w, "  %s\n", t.Footnote)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV writes the table as RFC-4180-ish CSV (header row + data
// rows; no title or footnote) so experiment output can feed straight
// into plotting tools. Thousands separators are stripped from numeric
// cells so the values parse as numbers.
func (t *Table) FprintCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if looksNumeric(c) {
				c = strings.ReplaceAll(c, ",", "")
			}
			parts[i] = csvEscape(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// pad right-aligns numeric-looking cells and left-aligns text.
func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	if looksNumeric(s) {
		return strings.Repeat(" ", w-len(s)) + s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' || r == '-' || r == '+' || r == 'e' || r == 'E' || r == '%' || r == ',':
		case r == '^' || r == 'x': // scientific shorthand like "10^40" or "1.2x"
		default:
			return false
		}
	}
	return true
}

// Int formats an int with thousands separators: 1234567 -> "1,234,567".
func Int(v int) string { return group(fmt.Sprintf("%d", v)) }

// Big formats a big integer. Values up to 15 digits keep full precision
// with separators; larger values collapse to scientific notation with the
// digit count, e.g. "1.0779e+28", matching how the paper's capacity
// numbers are best read.
func Big(v *big.Int) string {
	s := v.String()
	digits := strings.TrimPrefix(s, "-")
	if len(digits) <= 15 {
		return group(s)
	}
	f := new(big.Float).SetPrec(64).SetInt(v)
	return f.Text('e', 4)
}

// Float formats a float with the given decimal places.
func Float(v float64, places int) string {
	return fmt.Sprintf("%.*f", places, v)
}

// Ratio formats a/b as a multiplier, e.g. "12.50x"; "inf" when b = 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

func group(s string) string {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	n := len(s)
	if n <= 3 {
		if neg {
			return "-" + s
		}
		return s
	}
	var b strings.Builder
	if neg {
		b.WriteByte('-')
	}
	head := n % 3
	if head > 0 {
		b.WriteString(s[:head])
		if n > head {
			b.WriteByte(',')
		}
	}
	for i := head; i < n; i += 3 {
		b.WriteString(s[i : i+3])
		if i+3 < n {
			b.WriteByte(',')
		}
	}
	return b.String()
}
