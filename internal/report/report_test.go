package report

import (
	"math/big"
	"strings"
	"testing"
)

func TestTableLayout(t *testing.T) {
	tb := New("Demo", "model", "crosspoints", "converters")
	tb.AddRow("MSW", "18", "0")
	tb.AddRow("MSDW", "36", "6")
	tb.Footnote = "N=3, k=2"
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, rule, 2 rows, footnote
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "crosspoints") {
		t.Errorf("missing header: %q", lines[1])
	}
	// Numeric cells right-align under their header.
	hIdx := strings.Index(lines[1], "crosspoints")
	rowCell := lines[3][hIdx : hIdx+len("crosspoints")]
	if !strings.HasSuffix(rowCell, "18") {
		t.Errorf("numeric cell not right-aligned: %q", rowCell)
	}
}

func TestAddRowPadsShortRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("only")
	if tb.Len() != 1 {
		t.Fatal("row not recorded")
	}
	if !strings.Contains(tb.String(), "only") {
		t.Error("cell lost")
	}
}

func TestFprintCSV(t *testing.T) {
	tb := New("Title Is Dropped", "N", "model", "crosspoints")
	tb.AddRow("64", "MSW", "8,192")
	tb.AddRow(`we"ird`, "a,b", "1")
	var b strings.Builder
	if err := tb.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "N,model,crosspoints\n64,MSW,8192\n\"we\"\"ird\",\"a,b\",1\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
	if strings.Contains(got, "Title") {
		t.Error("title leaked into CSV")
	}
}

func TestInt(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for v, want := range cases {
		if got := Int(v); got != want {
			t.Errorf("Int(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestBig(t *testing.T) {
	small := big.NewInt(123456789)
	if got := Big(small); got != "123,456,789" {
		t.Errorf("Big(small) = %q", got)
	}
	huge := new(big.Int).Exp(big.NewInt(10), big.NewInt(40), nil)
	got := Big(huge)
	if !strings.Contains(got, "e+") {
		t.Errorf("Big(10^40) = %q, want scientific form", got)
	}
}

func TestFloatAndRatio(t *testing.T) {
	if got := Float(3.14159, 2); got != "3.14" {
		t.Errorf("Float = %q", got)
	}
	if got := Ratio(10, 4); got != "2.50x" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "inf" {
		t.Errorf("Ratio by zero = %q", got)
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"123", "1,234", "3.14", "-5", "1.2e+10", "85%", "2.50x"} {
		if !looksNumeric(s) {
			t.Errorf("%q should look numeric", s)
		}
	}
	for _, s := range []string{"", "MSW", "k=2", "10 20"} {
		if looksNumeric(s) {
			t.Errorf("%q should not look numeric", s)
		}
	}
}
