package mesh

import (
	"fmt"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

// Add routes a multicast session onto the ring as a light-hierarchy:
// a main walk from the source toward its farthest destination in one
// ring direction, with one reverse-direction spur per destination that
// could not be served on the walk itself. Wavelengths are tried
// first-fit, each in both ring orientations; the whole hierarchy rides
// the one wavelength that admits it (wavelength continuity — the ring
// has no converters).
//
// Add returns an error wrapping multistage.ErrBlocked when no
// wavelength admits the session. The BlockedError carries the
// split_incapable code when even an idle ring could not route it (the
// sparse-splitting placement structurally refuses the request);
// otherwise the block is plain occupancy.
func (net *Network) Add(c wdm.Connection) (int, error) {
	if err := net.Shape().CheckConnection(net.params.Model, c); err != nil {
		return 0, err
	}
	if id, busy := net.srcBusy[c.Source]; busy {
		return 0, fmt.Errorf("mesh: source slot %v already used by connection %d", c.Source, id)
	}
	for _, d := range c.Dests {
		if id, busy := net.dstBusy[d]; busy {
			return 0, fmt.Errorf("mesh: destination slot %v already used by connection %d", d, id)
		}
	}
	c = c.Normalize()

	src := int(c.Source.Port)
	destSet := make(map[int]bool)
	for _, d := range c.Dests {
		if int(d.Port) != src {
			destSet[int(d.Port)] = true
		}
	}
	dests := make([]int, 0, len(destSet))
	for d := range destSet {
		dests = append(dests, d)
	}

	// Purely source-local session (every destination slot sits at the
	// source node): no edges, no wavelength claim.
	if len(dests) == 0 {
		if net.failedNode[src] {
			net.blockedCount++
			return 0, &multistage.BlockedError{
				Detail: fmt.Sprintf("mesh: node %d out of service", src),
				Report: net.blockReport("add", c, src, nil),
			}
		}
		id := net.commit(c, 0, nil)
		net.routedCount++
		return id, nil
	}

	for w := 0; w < net.k; w++ {
		for _, dir := range []int{+1, -1} {
			hops, ok := net.plan(src, dests, wdm.Wavelength(w), dir, false)
			if !ok {
				continue
			}
			net.observe(multistage.RouteStep{
				Round: w, Middle: src, State: multistage.MiddleSelected,
				Wave: w, Serves: dests,
			})
			id := net.commit(c, wdm.Wavelength(w), hops)
			net.routedCount++
			return id, nil
		}
	}

	// Every wavelength refused. Classify: if an idle ring would route
	// the request, this is occupancy; otherwise the sparse-splitting
	// structure itself is incapable.
	net.blockedCount++
	for _, dir := range []int{+1, -1} {
		if _, ok := net.plan(src, dests, 0, dir, true); ok {
			net.observe(multistage.RouteStep{
				Middle: src, State: multistage.MiddleOutLinkBusy, Wave: -1, Rejected: dests,
			})
			return 0, &multistage.BlockedError{
				Detail: fmt.Sprintf("mesh: no wavelength admits the hierarchy from node %d to %v (k=%d)", src, dests, net.k),
				Report: net.blockReport("add", c, src, dests),
			}
		}
	}
	net.observe(multistage.RouteStep{
		Middle: src, State: multistage.MiddleSplitLimit, Wave: -1, Rejected: dests,
	})
	return 0, &multistage.BlockedError{
		Code: multistage.CodeSplitIncapable,
		Detail: fmt.Sprintf("mesh: request needs splitting a multicast-incapable node cannot provide (MC every %d nodes, fanout x=%d)",
			net.params.R, net.params.X),
		Report: net.blockReport("add", c, src, dests),
	}
}

// plan attempts to lay out the light-hierarchy for one (wavelength,
// orientation) pair. dir is +1 (clockwise) or -1. dry plans against an
// idle, fault-free ring — the structural-feasibility probe Add uses to
// classify a total failure.
//
// The hierarchy: walk src -> farthest destination in direction dir,
// serving destinations at MC nodes by drop-and-continue; every
// destination the walk cannot drop at (an MI node cannot branch) is
// deferred and served by a spur in direction -dir from the nearest MC
// node beyond it with splitter capacity left. Spur ranges claim
// opposite-direction edges, so they never collide with the walk; a
// plannedSpur set keeps them disjoint from each other.
func (net *Network) plan(src int, dests []int, w wdm.Wavelength, dir int, dry bool) ([]hop, bool) {
	n := net.n
	node := func(t int) int { return ((src+t*dir)%n + n) % n }
	dist := func(v int) int { return (((v-src)*dir)%n + n) % n }

	if !dry && net.failedNode[src] {
		return nil, false
	}

	maxDist := 0
	destAt := make(map[int]bool, len(dests)) // keyed by walk distance
	for _, d := range dests {
		if !dry && net.failedNode[d] {
			return nil, false
		}
		t := dist(d)
		destAt[t] = true
		if t > maxDist {
			maxDist = t
		}
	}

	// Walk feasibility: every edge free on w, every intermediate node
	// in service.
	hops := make([]hop, 0, maxDist)
	for t := 0; t < maxDist; t++ {
		h := hop{from: node(t), to: node(t + 1)}
		if !dry {
			if t > 0 && net.failedNode[h.from] {
				return nil, false
			}
			if net.edgeSlot(h)[w] != freeSlot {
				return nil, false
			}
		}
		hops = append(hops, h)
	}

	// branches[t] counts output branches committed at walk node t
	// (continue + drop + hosted spurs); MC nodes may branch up to X,
	// MI nodes never.
	branches := make(map[int]int, maxDist+1)
	for t := 0; t <= maxDist; t++ {
		if t < maxDist {
			branches[t] = 1 // walk continues
		}
	}
	var deferred []int
	for t := 1; t <= maxDist; t++ {
		if !destAt[t] {
			continue
		}
		if t == maxDist {
			branches[t]++ // terminal drop: MI may terminate, MC drops
			continue
		}
		// Mid-walk destination: drop-and-continue needs a splitter.
		if net.MulticastCapable(node(t)) && branches[t]+1 <= net.params.X {
			branches[t]++
			continue
		}
		deferred = append(deferred, t)
	}

	plannedSpur := make(map[hop]bool)
	for _, td := range deferred {
		hostT := -1
		for t := td + 1; t <= maxDist; t++ {
			if net.MulticastCapable(node(t)) && branches[t]+1 <= net.params.X {
				hostT = t
				break
			}
		}
		if hostT < 0 {
			return nil, false
		}
		// Spur: host walks back over the span in direction -dir,
		// terminating at the deferred destination.
		spur := make([]hop, 0, hostT-td)
		ok := true
		for s := hostT; s > td; s-- {
			h := hop{from: node(s), to: node(s - 1)}
			if plannedSpur[h] {
				ok = false
				break
			}
			if !dry && net.edgeSlot(h)[w] != freeSlot {
				ok = false
				break
			}
			spur = append(spur, h)
		}
		if !ok {
			return nil, false
		}
		branches[hostT]++
		for _, h := range spur {
			plannedSpur[h] = true
		}
		hops = append(hops, spur...)
	}
	return hops, true
}

// commit materializes a planned hierarchy under a fresh id.
func (net *Network) commit(c wdm.Connection, w wdm.Wavelength, hops []hop) int {
	return net.commitRouted(c, &routed{conn: c, wave: w, hops: hops})
}

func (net *Network) observe(step multistage.RouteStep) {
	if net.observer != nil {
		net.observer(step)
	}
}

// blockReport assembles the forensic account of a mesh block in the
// shared vocabulary: SrcModule is the source node, Uncovered the
// destination nodes, Utilization the directed-edge occupancy. The ring
// has no middle modules to diagnose, so Middles stays empty.
func (net *Network) blockReport(op string, c wdm.Connection, src int, dests []int) *multistage.BlockReport {
	return &multistage.BlockReport{
		Op:          op,
		Conn:        wdm.FormatConnection(c),
		SrcModule:   src,
		SrcWave:     int(c.Source.Wave),
		LastHopWave: -1,
		X:           net.params.X,
		Uncovered:   append([]int(nil), dests...),
		Utilization: net.Utilization(),
	}
}

// AddAssignment routes all connections of an assignment, rolling back
// on the first failure.
func (net *Network) AddAssignment(a wdm.Assignment) ([]int, error) {
	ids := make([]int, 0, len(a))
	for i, c := range a {
		id, err := net.Add(c)
		if err != nil {
			for _, rid := range ids {
				_ = net.Release(rid)
			}
			return nil, fmt.Errorf("connection %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
