// Package mesh implements a WDM ring-mesh fabric with light-hierarchy
// multicast routing under sparse splitting, after "Light-Hierarchy: The
// Optimal Structure for Multicast Routing in WDM Mesh Networks"
// (arXiv 1012.0017) and its multicast-incapable branching-node
// avoidance companion (arXiv 1012.0027). It is an alternative fabric
// backend to the paper's three-stage Clos constructions
// (internal/multistage): same external N x N k-wavelength contract,
// same control-plane surface (route / release / reinstall / block
// forensics / failure migration), entirely different internal physics.
//
// Topology and capabilities:
//
//   - N nodes on a bidirectional ring; node i is also network port i.
//     Each direction of each span carries k wavelengths, so the fabric
//     has N clockwise and N counter-clockwise (edge, wavelength) pairs.
//   - Sparse splitting: only every R-th node (i % R == 0) carries a
//     light splitter and is multicast-capable (MC). MC nodes may split
//     an incoming signal into at most X output branches (drop counts as
//     a branch). All other nodes are multicast-incapable (MI): they can
//     forward or terminate a light path, never branch it.
//   - Wavelength continuity: a session rides ONE wavelength end to end
//     (no converters in the mesh). The source/destination Wave fields
//     of a connection are tunable transceiver slots at the nodes; the
//     ring wavelength is the router's to choose.
//
// Routing builds a light-hierarchy per session: a main walk from the
// source toward its farthest destination (serving MC destinations by
// drop-and-continue), plus one reverse-direction spur per deferred MI
// destination, hosted by the first MC node beyond it — the
// "multicast-incapable branching node avoidance" move: branching is
// placed only where a splitter exists, and an MI destination terminates
// its branch. Light-hierarchies may revisit a node (once per
// direction), which is exactly what lets a spur double back over the
// walk's span on the opposite ring direction.
//
// Nonblocking bound: every session claims exactly one wavelength, and
// the router is deterministic, so any k concurrently admissible
// sessions that are individually routable on an idle ring always find
// a free wavelength — the mesh analogue of the Clos sufficient bound,
// asserted by the cross-backend conformance suite. A request that is
// unroutable even on an idle ring is rejected with the stable
// split_incapable code: the sparse-splitting placement, not occupancy,
// refused it.
package mesh

import (
	"fmt"
	"sort"

	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

const freeSlot = -1

// Normalize validates mesh parameters expressed in the repository's
// common parameter vocabulary (multistage.Params): N nodes, K
// wavelengths per fiber direction, R the MC-node spacing (every R-th
// node carries a splitter; R must divide N), X the splitter fanout
// (0 defaults to 2, the smallest fanout that can host a spur), M the
// node count (0 defaults to N; anything else is rejected — mesh
// "middles" are the nodes themselves, which is what lets the serving
// path's failure plane address node failures with the same vocabulary
// it uses for Clos middle modules).
func Normalize(p multistage.Params) (multistage.Params, error) {
	if p.N < 3 {
		return p, fmt.Errorf("mesh: N=%d, a ring needs at least 3 nodes", p.N)
	}
	if p.K <= 0 {
		return p, fmt.Errorf("mesh: k=%d must be positive", p.K)
	}
	if p.R <= 0 || p.N%p.R != 0 {
		return p, fmt.Errorf("mesh: MC spacing R=%d must divide N=%d", p.R, p.N)
	}
	switch p.Model {
	case wdm.MSW, wdm.MSDW, wdm.MAW:
	default:
		return p, fmt.Errorf("mesh: unknown model %v", p.Model)
	}
	if p.M == 0 {
		p.M = p.N
	}
	if p.M != p.N {
		return p, fmt.Errorf("mesh: M=%d, but mesh middles are the N=%d nodes themselves", p.M, p.N)
	}
	if p.X == 0 {
		p.X = 2
	}
	if p.X < 1 {
		return p, fmt.Errorf("mesh: splitter fanout X=%d must be at least 1", p.X)
	}
	if p.Depth != 0 && p.Depth != 3 {
		return p, fmt.Errorf("mesh: Depth=%d not supported", p.Depth)
	}
	p.Depth = 3
	return p, nil
}

// SufficientSessions returns the session count the mesh serves without
// ever blocking: one per wavelength (each session claims exactly one λ
// across every edge it touches).
func SufficientSessions(k int) int { return k }

// routed is the bookkeeping for one live session.
type routed struct {
	conn wdm.Connection
	wave wdm.Wavelength
	// hops are the directed ring edges the session occupies, in claim
	// order: walk first (source to farthest destination), then spurs.
	hops []hop
}

type hop struct {
	from, to int // to == (from±1) mod n
}

// Network is a live ring-mesh fabric. Like multistage.Network it is
// not safe for concurrent use; the serving path serializes access.
type Network struct {
	params multistage.Params
	n, k   int

	// cw[i][w]: connection id occupying the clockwise edge i -> i+1 on
	// wavelength w; ccw[i][w]: the counter-clockwise edge i+1 -> i.
	cw, ccw [][]int

	conns   map[int]*routed
	nextID  int
	srcBusy map[wdm.PortWave]int
	dstBusy map[wdm.PortWave]int
	// failedNode marks nodes out of service (the failure plane's
	// "middle modules").
	failedNode map[int]bool

	routedCount  int64
	blockedCount int64

	observer func(multistage.RouteStep)
}

// New builds a ring-mesh fabric from the (normalized) parameters.
func New(p multistage.Params) (*Network, error) {
	p, err := Normalize(p)
	if err != nil {
		return nil, err
	}
	net := &Network{
		params:  p,
		n:       p.N,
		k:       p.K,
		cw:      makeEdges(p.N, p.K),
		ccw:     makeEdges(p.N, p.K),
		conns:   make(map[int]*routed),
		srcBusy: make(map[wdm.PortWave]int),
		dstBusy: make(map[wdm.PortWave]int),
	}
	return net, nil
}

func makeEdges(n, k int) [][]int {
	e := make([][]int, n)
	for i := range e {
		row := make([]int, k)
		for w := range row {
			row[w] = freeSlot
		}
		e[i] = row
	}
	return e
}

// Params returns the normalized parameters the fabric was built with.
func (net *Network) Params() multistage.Params { return net.params }

// Shape returns the external N x N k-wavelength shape.
func (net *Network) Shape() wdm.Shape {
	return wdm.Shape{In: net.n, Out: net.n, K: net.k}
}

// MulticastCapable reports whether node i carries a splitter.
func (net *Network) MulticastCapable(i int) bool { return i%net.params.R == 0 }

// Len returns the number of live sessions.
func (net *Network) Len() int { return len(net.conns) }

// Stats returns how many Add calls succeeded and how many blocked.
func (net *Network) Stats() (routedOK, blocked int64) {
	return net.routedCount, net.blockedCount
}

// Connections returns a snapshot of all live connections keyed by id.
func (net *Network) Connections() map[int]wdm.Connection {
	out := make(map[int]wdm.Connection, len(net.conns))
	for id, rc := range net.conns {
		out[id] = rc.conn.Clone()
	}
	return out
}

// Connection returns the live connection with the given id.
func (net *Network) Connection(id int) (wdm.Connection, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return wdm.Connection{}, false
	}
	return rc.conn.Clone(), true
}

// edgeSlot returns the occupancy row for the directed edge from -> to.
func (net *Network) edgeSlot(h hop) []int {
	if (h.from+1)%net.n == h.to {
		return net.cw[h.from]
	}
	return net.ccw[h.to]
}

// Utilization maps the ring's directed-edge occupancy onto the
// repository's common per-stage gauge: clockwise edges report as the
// "input stage", counter-clockwise edges (walks in the other
// orientation and spurs) as the "output stage".
func (net *Network) Utilization() multistage.Utilization {
	var u multistage.Utilization
	scan := func(edges [][]int) (busyTotal, total, busiest int) {
		for i := range edges {
			busy := 0
			for _, v := range edges[i] {
				total++
				if v != freeSlot {
					busyTotal++
					busy++
				}
			}
			if busy > busiest {
				busiest = busy
			}
		}
		return
	}
	u.InBusy, u.InTotal, u.BusiestInLink = scan(net.cw)
	u.OutBusy, u.OutTotal, u.BusiestOutLink = scan(net.ccw)
	if u.InTotal > 0 {
		u.InLinkBusy = float64(u.InBusy) / float64(u.InTotal)
	}
	if u.OutTotal > 0 {
		u.OutLinkBusy = float64(u.OutBusy) / float64(u.OutTotal)
	}
	return u
}

// Cost counts the ring's hardware: one 2x2 wavelength-selective
// crosspoint per node per wavelength (pass/drop on each direction),
// one X-way splitter per MC node, and a mux/demux pair per node for
// the k-wavelength spans.
func (net *Network) Cost() crossbar.Cost {
	mc := net.n / net.params.R
	return crossbar.Cost{
		Crosspoints: net.n * net.k * 4,
		Splitters:   mc,
		Combiners:   mc,
		Muxes:       net.n,
		Demuxes:     net.n,
	}
}

// SetRouteObserver installs fn as the routing observer (nil removes
// it). The mesh router reports one step per wavelength attempt.
func (net *Network) SetRouteObserver(fn func(multistage.RouteStep)) { net.observer = fn }

// Release tears down a live session and frees every edge wavelength it
// occupied.
func (net *Network) Release(id int) error {
	rc, ok := net.conns[id]
	if !ok {
		return fmt.Errorf("mesh: no connection with id %d", id)
	}
	net.freeRoute(rc)
	delete(net.conns, id)
	delete(net.srcBusy, rc.conn.Source)
	for _, d := range rc.conn.Dests {
		delete(net.dstBusy, d)
	}
	return nil
}

func (net *Network) freeRoute(rc *routed) {
	for _, h := range rc.hops {
		net.edgeSlot(h)[rc.wave] = freeSlot
	}
}

func (net *Network) claimRoute(id int, rc *routed) {
	for _, h := range rc.hops {
		net.edgeSlot(h)[rc.wave] = id
	}
}

// Reset releases every live session.
func (net *Network) Reset() {
	ids := make([]int, 0, len(net.conns))
	for id := range net.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := net.Release(id); err != nil {
			panic("mesh: Reset lost track of connection: " + err.Error())
		}
	}
}

// nodesTouched returns the sorted set of nodes a session's light
// visits: the source, every destination, and every edge endpoint.
func (rc *routed) nodesTouched() []int {
	set := map[int]bool{int(rc.conn.Source.Port): true}
	for _, d := range rc.conn.Dests {
		set[int(d.Port)] = true
	}
	for _, h := range rc.hops {
		set[h.from] = true
		set[h.to] = true
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// remapID moves a live session to a new id, updating every index.
func (net *Network) remapID(from, to int) {
	rc, ok := net.conns[from]
	if !ok {
		panic(fmt.Sprintf("mesh: remapID: no connection %d", from))
	}
	if _, clash := net.conns[to]; clash {
		panic(fmt.Sprintf("mesh: remapID: id %d already live", to))
	}
	delete(net.conns, from)
	net.conns[to] = rc
	net.srcBusy[rc.conn.Source] = to
	for _, d := range rc.conn.Dests {
		net.dstBusy[d] = to
	}
	net.claimRoute(to, rc)
}
