package mesh

import (
	"fmt"
	"sort"

	"repro/internal/multistage"
)

// Node failure handling. The mesh's failure plane speaks the same
// vocabulary as the Clos constructions' middle-module plane — here the
// "middles" are the ring nodes themselves (Normalize pins M = N), so
// FailMiddle(j) takes node j out of service: the router will not
// source, terminate, or forward new light through it. Existing
// sessions are untouched until rerouted.

// FailMiddle marks node j out of service. Failing an already-failed
// node is a no-op.
func (net *Network) FailMiddle(j int) error {
	if j < 0 || j >= net.n {
		return fmt.Errorf("mesh: no node %d", j)
	}
	if net.failedNode == nil {
		net.failedNode = make(map[int]bool)
	}
	net.failedNode[j] = true
	return nil
}

// RepairMiddle returns a failed node to service.
func (net *Network) RepairMiddle(j int) error {
	if j < 0 || j >= net.n {
		return fmt.Errorf("mesh: no node %d", j)
	}
	delete(net.failedNode, j)
	return nil
}

// FailedMiddles lists the currently failed nodes in order.
func (net *Network) FailedMiddles() []int {
	out := make([]int, 0, len(net.failedNode))
	for j := range net.failedNode {
		out = append(out, j)
	}
	sort.Ints(out)
	return out
}

// AffectedBy returns the ids of live sessions whose light touches node
// j (as source, destination, or pass-through), in id order.
func (net *Network) AffectedBy(j int) []int {
	var out []int
	for id, rc := range net.conns {
		for _, node := range rc.nodesTouched() {
			if node == j {
				out = append(out, id)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// MiddlesUsed lists the nodes a live session's light touches, in order.
// It reports false for an unknown id.
func (net *Network) MiddlesUsed(id int) ([]int, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return nil, false
	}
	return rc.nodesTouched(), true
}

// RerouteAround releases every session touching node j (typically just
// failed) and re-routes it around the failure set. Sessions keep their
// ids; the ids that could not be re-placed are dropped.
func (net *Network) RerouteAround(j int) (restored, dropped []int, err error) {
	migrated, dropped, err := net.RerouteAroundReport(j)
	for _, m := range migrated {
		restored = append(restored, m.ID)
	}
	return restored, dropped, err
}

// RerouteAroundReport is RerouteAround with per-session migration
// bookkeeping: old and new node sets per restored session. A session
// whose source or destination sits ON the failed node is necessarily
// dropped (no reroute can move an endpoint).
func (net *Network) RerouteAroundReport(j int) (migrated []multistage.Migration, dropped []int, err error) {
	affected := net.AffectedBy(j)
	for _, id := range affected {
		from, _ := net.MiddlesUsed(id)
		conn := net.conns[id].conn.Clone()
		if err := net.Release(id); err != nil {
			return migrated, dropped, fmt.Errorf("mesh: releasing %d: %w", id, err)
		}
		newID, addErr := net.Add(conn)
		if addErr != nil {
			if multistage.IsBlocked(addErr) {
				dropped = append(dropped, id)
				continue
			}
			return migrated, dropped, fmt.Errorf("mesh: re-adding %d: %w", id, addErr)
		}
		net.remapID(newID, id)
		to, _ := net.MiddlesUsed(id)
		migrated = append(migrated, multistage.Migration{ID: id, From: from, To: to})
	}
	return migrated, dropped, nil
}
