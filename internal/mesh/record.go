package mesh

import (
	"fmt"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

// RouteRecord exports the durable description of a live session in the
// repository's common record shape. The mesh has no input-stage legs,
// so In stays empty; each directed ring edge the session occupies
// becomes one Out hop {Middle: from-node, Out: to-node, Wave: ring λ},
// in claim order (walk first, then spurs). A purely source-local
// session exports with no hops at all.
func (net *Network) RouteRecord(id int) (multistage.RouteRecord, bool) {
	rc, ok := net.conns[id]
	if !ok {
		return multistage.RouteRecord{}, false
	}
	rec := multistage.RouteRecord{Conn: wdm.FormatConnection(rc.conn)}
	for _, h := range rc.hops {
		rec.Out = append(rec.Out, multistage.RouteHop{
			Middle: h.from, Out: h.to, Wave: rc.wave,
		})
	}
	return rec, true
}

// Reinstall re-applies a previously exported record verbatim — the WAL
// recovery and cluster standby path. The route is validated as a chain
// of adjacent directed ring edges on one wavelength and claimed exactly
// as recorded; no routing decisions are re-made, so a reinstalled
// session is bit-identical to the one that was exported.
func (net *Network) Reinstall(rec multistage.RouteRecord) (int, error) {
	c, err := wdm.ParseConnection(rec.Conn)
	if err != nil {
		return 0, fmt.Errorf("mesh: reinstall: %w", err)
	}
	if err := net.Shape().CheckConnection(net.params.Model, c); err != nil {
		return 0, fmt.Errorf("mesh: reinstall: %w", err)
	}
	if len(rec.In) > 0 {
		return 0, fmt.Errorf("mesh: reinstall: record has %d input-stage legs; mesh records carry edges in Out only", len(rec.In))
	}
	if id, busy := net.srcBusy[c.Source]; busy {
		return 0, fmt.Errorf("mesh: reinstall: source slot %v already used by connection %d", c.Source, id)
	}
	for _, d := range c.Dests {
		if id, busy := net.dstBusy[d]; busy {
			return 0, fmt.Errorf("mesh: reinstall: destination slot %v already used by connection %d", d, id)
		}
	}
	c = c.Normalize()

	rc := &routed{conn: c, wave: 0}
	for i, hp := range rec.Out {
		if hp.Middle < 0 || hp.Middle >= net.n || hp.Out < 0 || hp.Out >= net.n {
			return 0, fmt.Errorf("mesh: reinstall: hop %d nodes %d->%d out of range [0,%d)", i, hp.Middle, hp.Out, net.n)
		}
		h := hop{from: hp.Middle, to: hp.Out}
		if (h.from+1)%net.n != h.to && (h.to+1)%net.n != h.from {
			return 0, fmt.Errorf("mesh: reinstall: hop %d: %d->%d is not a ring edge", i, h.from, h.to)
		}
		if hp.Wave < 0 || int(hp.Wave) >= net.k {
			return 0, fmt.Errorf("mesh: reinstall: hop %d wavelength %d out of range [0,%d)", i, hp.Wave, net.k)
		}
		if i == 0 {
			rc.wave = hp.Wave
		} else if hp.Wave != rc.wave {
			return 0, fmt.Errorf("mesh: reinstall: hop %d rides λ%d, session rides λ%d (wavelength continuity)", i, hp.Wave, rc.wave)
		}
		if owner := net.edgeSlot(h)[rc.wave]; owner != freeSlot {
			return 0, fmt.Errorf("mesh: reinstall: edge %d->%d λ%d already held by connection %d", h.from, h.to, rc.wave, owner)
		}
		for _, prev := range rc.hops {
			if prev == h {
				return 0, fmt.Errorf("mesh: reinstall: edge %d->%d claimed twice", h.from, h.to)
			}
		}
		rc.hops = append(rc.hops, h)
	}

	id := net.commitRouted(c, rc)
	net.routedCount++
	return id, nil
}

// commitRouted registers an already-validated route under a fresh id.
func (net *Network) commitRouted(c wdm.Connection, rc *routed) int {
	id := net.nextID
	net.claimRoute(id, rc)
	net.conns[id] = rc
	net.srcBusy[c.Source] = id
	for _, d := range c.Dests {
		net.dstBusy[d] = id
	}
	net.nextID++
	return id
}

// reinstallRouted puts a previously released route back under a
// specific id — the rollback path for AddBranch and reroute. The edges
// must still be free (the caller released them moments ago).
func (net *Network) reinstallRouted(id int, rc *routed) error {
	if _, clash := net.conns[id]; clash {
		return fmt.Errorf("mesh: id %d already live", id)
	}
	for _, h := range rc.hops {
		if owner := net.edgeSlot(h)[rc.wave]; owner != freeSlot {
			return fmt.Errorf("mesh: edge %d->%d λ%d no longer free (held by %d)", h.from, h.to, rc.wave, owner)
		}
	}
	net.claimRoute(id, rc)
	net.conns[id] = rc
	net.srcBusy[rc.conn.Source] = id
	for _, d := range rc.conn.Dests {
		net.dstBusy[d] = id
	}
	return nil
}
