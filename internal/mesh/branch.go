package mesh

import (
	"errors"
	"fmt"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

// AddBranch grows a live session by additional destination slots,
// keeping its id stable — the "join" operation of a long-lived
// multicast session. The grow is atomic: the session is released and
// re-routed with the enlarged destination set; if the enlarged
// hierarchy cannot be placed, the original route is replayed edge for
// edge (the replay claims exactly what the release just freed, so it
// cannot block) and the original error surfaces with its report
// re-tagged as a branch operation.
func (net *Network) AddBranch(id int, dests ...wdm.PortWave) error {
	rc, ok := net.conns[id]
	if !ok {
		return fmt.Errorf("mesh: no connection with id %d", id)
	}
	if len(dests) == 0 {
		return nil
	}
	old := &routed{
		conn: rc.conn.Clone(),
		wave: rc.wave,
		hops: append([]hop(nil), rc.hops...),
	}
	grown := rc.conn.Clone()
	grown.Dests = append(grown.Dests, dests...)
	grown = grown.Normalize()

	if err := net.Shape().CheckConnection(net.params.Model, grown); err != nil {
		return err
	}
	for _, d := range dests {
		if owner, busy := net.dstBusy[d]; busy {
			return fmt.Errorf("mesh: destination slot %v already used by connection %d", d, owner)
		}
	}

	// A grow is one logical operation: neither the internal re-route nor
	// the restore counts as a fresh routed session, and only a blocked
	// grow counts as a blocking event.
	routed0, blocked0 := net.routedCount, net.blockedCount

	if err := net.Release(id); err != nil {
		return fmt.Errorf("mesh: AddBranch releasing %d: %w", id, err)
	}
	newID, err := net.Add(grown)
	if err == nil {
		net.remapID(newID, id)
		net.routedCount, net.blockedCount = routed0, blocked0
		return nil
	}
	if rerr := net.reinstallRouted(id, old); rerr != nil {
		return fmt.Errorf("mesh: AddBranch: connection %d lost — restore after failed grow: %v (grow: %w)", id, rerr, err)
	}
	net.routedCount, net.blockedCount = routed0, blocked0+1
	var be *multistage.BlockedError
	if errors.As(err, &be) && be.Report != nil {
		be.Report.Op = "branch"
	}
	return err
}
