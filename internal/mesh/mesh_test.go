package mesh

import (
	"reflect"
	"testing"

	"repro/internal/multistage"
	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func mustNew(t *testing.T, n, k, r, x int) *Network {
	t.Helper()
	net, err := New(multistage.Params{
		N: n, K: k, R: r, X: x, Model: wdm.MSW, Construction: multistage.MSWDominant,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return net
}

func TestNormalizeRejections(t *testing.T) {
	base := multistage.Params{N: 12, K: 2, R: 3, Model: wdm.MSW}
	cases := []struct {
		name   string
		mutate func(*multistage.Params)
	}{
		{"tiny ring", func(p *multistage.Params) { p.N = 2 }},
		{"no wavelengths", func(p *multistage.Params) { p.K = 0 }},
		{"R not dividing N", func(p *multistage.Params) { p.R = 5 }},
		{"M not N", func(p *multistage.Params) { p.M = 7 }},
		{"bad depth", func(p *multistage.Params) { p.Depth = 5 }},
	}
	for _, tc := range cases {
		p := base
		tc.mutate(&p)
		if _, err := Normalize(p); err == nil {
			t.Errorf("%s: Normalize accepted %+v", tc.name, p)
		}
	}
	p, err := Normalize(base)
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", base, err)
	}
	if p.M != 12 || p.X != 2 || p.Depth != 3 {
		t.Errorf("Normalize defaults: M=%d X=%d Depth=%d, want 12 2 3", p.M, p.X, p.Depth)
	}
}

func TestUnicastRouteAndRelease(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(5, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	u := net.Utilization()
	if u.InBusy != 5 || u.OutBusy != 0 {
		t.Errorf("unicast 0->5 should hold 5 clockwise edges, got in=%d out=%d", u.InBusy, u.OutBusy)
	}
	nodes, ok := net.MiddlesUsed(id)
	if !ok || !reflect.DeepEqual(nodes, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("MiddlesUsed = %v %v", nodes, ok)
	}
	if err := net.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	u = net.Utilization()
	if u.InBusy != 0 || u.OutBusy != 0 || net.Len() != 0 {
		t.Errorf("after release: in=%d out=%d len=%d", u.InBusy, u.OutBusy, net.Len())
	}
}

func TestMulticastSpurForMIDestination(t *testing.T) {
	// MC nodes are 0,3,6,9. Destination 4 is MI mid-walk, so it must be
	// served by a spur hosted at MC node 6 (the first MC node beyond it),
	// doubling back 6->5->4 on counter-clockwise edges.
	net := mustNew(t, 12, 2, 3, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(4, 0), pw(6, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	u := net.Utilization()
	if u.InBusy != 6 || u.OutBusy != 2 {
		t.Errorf("walk+spur should hold 6 cw + 2 ccw edges, got in=%d out=%d", u.InBusy, u.OutBusy)
	}
	rec, ok := net.RouteRecord(id)
	if !ok {
		t.Fatal("RouteRecord missing")
	}
	if len(rec.In) != 0 || len(rec.Out) != 8 {
		t.Errorf("record: %d in-legs %d hops, want 0 and 8", len(rec.In), len(rec.Out))
	}
	spur := rec.Out[len(rec.Out)-2:]
	if spur[0].Middle != 6 || spur[0].Out != 5 || spur[1].Middle != 5 || spur[1].Out != 4 {
		t.Errorf("spur hops = %+v, want 6->5->4", spur)
	}
}

func TestDropAndContinueAtMCDestination(t *testing.T) {
	// Destination 3 is MC: drop-and-continue, no spur, no extra edges.
	net := mustNew(t, 12, 2, 3, 2)
	if _, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(3, 0), pw(6, 0)}}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	u := net.Utilization()
	if u.InBusy != 6 || u.OutBusy != 0 {
		t.Errorf("drop-and-continue should hold 6 cw edges only, got in=%d out=%d", u.InBusy, u.OutBusy)
	}
}

func TestSplitIncapableCode(t *testing.T) {
	// X=1: no node can branch at all, so any multicast with two off-node
	// destinations is structurally unroutable — the stable code fires.
	net := mustNew(t, 12, 2, 3, 1)
	_, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0), pw(4, 0)}})
	if !multistage.IsBlocked(err) {
		t.Fatalf("want blocked, got %v", err)
	}
	if code := multistage.BlockedCode(err); code != multistage.CodeSplitIncapable {
		t.Errorf("BlockedCode = %q, want %q", code, multistage.CodeSplitIncapable)
	}
	rep, ok := multistage.AsBlockReport(err)
	if !ok || rep.SrcModule != 0 {
		t.Errorf("block report = %+v", rep)
	}
	if _, blocked := net.Stats(); blocked != 1 {
		t.Errorf("blocked count = %d, want 1", blocked)
	}
}

func TestOccupancyBlockIsGeneric(t *testing.T) {
	// N=6, k=1, all nodes MC. Fill the whole clockwise ring and the
	// counter-clockwise edge 2->1, then ask for 2->5: both orientations
	// are busy, but an idle ring would route it — the block must NOT
	// carry the structural split_incapable code.
	net := mustNew(t, 6, 1, 1, 2)
	for _, c := range []wdm.Connection{
		{Source: pw(0, 0), Dests: []wdm.PortWave{pw(3, 0)}}, // cw 0,1,2
		{Source: pw(3, 0), Dests: []wdm.PortWave{pw(0, 0)}}, // cw 3,4,5
		{Source: pw(1, 0), Dests: []wdm.PortWave{pw(4, 0)}}, // ccw 1->0->5->4
		{Source: pw(4, 0), Dests: []wdm.PortWave{pw(1, 0)}}, // ccw 4->3->2->1
	} {
		if _, err := net.Add(c); err != nil {
			t.Fatalf("setup Add(%v): %v", c, err)
		}
	}
	_, err := net.Add(wdm.Connection{Source: pw(2, 0), Dests: []wdm.PortWave{pw(5, 0)}})
	if !multistage.IsBlocked(err) {
		t.Fatalf("want blocked, got %v", err)
	}
	if code := multistage.BlockedCode(err); code != "" {
		t.Errorf("occupancy block carries code %q, want none", code)
	}
}

func TestWavelengthContinuityFirstFit(t *testing.T) {
	// Two sessions over the same span must land on different wavelengths.
	net := mustNew(t, 6, 2, 1, 2)
	if _, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0)}}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	id2, err := net.Add(wdm.Connection{Source: pw(0, 1), Dests: []wdm.PortWave{pw(2, 1)}})
	if err != nil {
		t.Fatalf("Add second: %v", err)
	}
	rec, _ := net.RouteRecord(id2)
	// Both ring orientations are free on λ1 for the second session, but
	// first-fit should have packed λ0 cw first, pushing this one to λ1
	// or to the reverse orientation on λ0.
	for _, h := range rec.Out {
		if h.Wave == 0 && ((h.Middle+1)%6 == h.Out) {
			t.Errorf("second session reuses a busy cw λ0 edge: %+v", h)
		}
	}
}

func TestReinstallRoundTrip(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	c := wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(4, 0), pw(6, 0)}}
	id, err := net.Add(c)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	rec, _ := net.RouteRecord(id)
	before := net.Utilization()
	if err := net.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	id2, err := net.Reinstall(rec)
	if err != nil {
		t.Fatalf("Reinstall: %v", err)
	}
	rec2, _ := net.RouteRecord(id2)
	if !reflect.DeepEqual(rec, rec2) {
		t.Errorf("reinstalled record differs:\n  %+v\n  %+v", rec, rec2)
	}
	if after := net.Utilization(); !reflect.DeepEqual(before, after) {
		t.Errorf("utilization differs after reinstall: %+v vs %+v", before, after)
	}
	// Double reinstall must refuse: the slots are busy again.
	if _, err := net.Reinstall(rec); err == nil {
		t.Error("Reinstall over a live session succeeded")
	}
}

func TestReinstallRejectsCorruptRecords(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(3, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	rec, _ := net.RouteRecord(id)
	if err := net.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}

	chord := rec
	chord.Out = append([]multistage.RouteHop(nil), rec.Out...)
	chord.Out[1].Out = 7 // 1->7 is not a ring edge
	if _, err := net.Reinstall(chord); err == nil {
		t.Error("Reinstall accepted a non-ring edge")
	}
	jump := rec
	jump.Out = append([]multistage.RouteHop(nil), rec.Out...)
	jump.Out[2].Wave = 1 // breaks wavelength continuity
	if _, err := net.Reinstall(jump); err == nil {
		t.Error("Reinstall accepted a wavelength discontinuity")
	}
	legs := rec
	legs.In = []multistage.RouteLeg{{Middle: 0}}
	if _, err := net.Reinstall(legs); err == nil {
		t.Error("Reinstall accepted input-stage legs")
	}
}

func TestFailureRerouteOtherDirection(t *testing.T) {
	net := mustNew(t, 6, 1, 1, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := net.FailMiddle(1); err != nil {
		t.Fatalf("FailMiddle: %v", err)
	}
	if got := net.AffectedBy(1); !reflect.DeepEqual(got, []int{id}) {
		t.Fatalf("AffectedBy = %v", got)
	}
	migrated, dropped, err := net.RerouteAroundReport(1)
	if err != nil || len(dropped) != 0 || len(migrated) != 1 {
		t.Fatalf("reroute: migrated=%v dropped=%v err=%v", migrated, dropped, err)
	}
	if migrated[0].ID != id {
		t.Errorf("id changed across reroute: %+v", migrated[0])
	}
	nodes, _ := net.MiddlesUsed(id)
	for _, j := range nodes {
		if j == 1 {
			t.Errorf("rerouted session still touches failed node: %v", nodes)
		}
	}
	if err := net.RepairMiddle(1); err != nil {
		t.Fatalf("RepairMiddle: %v", err)
	}
	if got := net.FailedMiddles(); len(got) != 0 {
		t.Errorf("FailedMiddles after repair = %v", got)
	}
}

func TestFailureAtEndpointDrops(t *testing.T) {
	net := mustNew(t, 6, 1, 1, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := net.FailMiddle(2); err != nil {
		t.Fatalf("FailMiddle: %v", err)
	}
	migrated, dropped, err := net.RerouteAroundReport(2)
	if err != nil || len(migrated) != 0 || !reflect.DeepEqual(dropped, []int{id}) {
		t.Fatalf("endpoint failure: migrated=%v dropped=%v err=%v", migrated, dropped, err)
	}
	if net.Len() != 0 {
		t.Errorf("dropped session still live")
	}
}

func TestAddBranchGrowAndRestore(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	id, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(3, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := net.AddBranch(id, pw(6, 0)); err != nil {
		t.Fatalf("AddBranch: %v", err)
	}
	c, ok := net.Connection(id)
	if !ok || len(c.Dests) != 2 {
		t.Fatalf("grown connection = %+v %v", c, ok)
	}
	routedN, blockedN := net.Stats()
	if routedN != 1 || blockedN != 0 {
		t.Errorf("stats after grow = %d/%d, want 1/0", routedN, blockedN)
	}

	// A grow the splitters cannot place must restore the original.
	tight := mustNew(t, 12, 2, 3, 1)
	tid, err := tight.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(2, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	before := tight.Utilization()
	err = tight.AddBranch(tid, pw(4, 0))
	if !multistage.IsBlocked(err) {
		t.Fatalf("want blocked grow, got %v", err)
	}
	if rep, ok := multistage.AsBlockReport(err); !ok || rep.Op != "branch" {
		t.Errorf("report = %+v, want Op=branch", rep)
	}
	c, _ = tight.Connection(tid)
	if len(c.Dests) != 1 {
		t.Errorf("original not restored: %+v", c)
	}
	if after := tight.Utilization(); !reflect.DeepEqual(before, after) {
		t.Errorf("utilization changed across failed grow: %+v vs %+v", before, after)
	}
	routedN, blockedN = tight.Stats()
	if routedN != 1 || blockedN != 1 {
		t.Errorf("stats after failed grow = %d/%d, want 1/1", routedN, blockedN)
	}
}

func TestSourceLocalSession(t *testing.T) {
	// All destination slots on the source node: no edges claimed.
	net := mustNew(t, 6, 2, 1, 2)
	id, err := net.Add(wdm.Connection{Source: pw(3, 0), Dests: []wdm.PortWave{pw(3, 0)}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if u := net.Utilization(); u.InBusy != 0 || u.OutBusy != 0 {
		t.Errorf("source-local session claims edges: %+v", u)
	}
	rec, _ := net.RouteRecord(id)
	if len(rec.Out) != 0 {
		t.Errorf("source-local record has hops: %+v", rec)
	}
	if err := net.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	id2, err := net.Reinstall(rec)
	if err != nil {
		t.Fatalf("Reinstall source-local: %v", err)
	}
	_ = id2
}

func TestResetAndStats(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	for i := 0; i < 3; i++ {
		if _, err := net.Add(wdm.Connection{Source: pw(i, 0), Dests: []wdm.PortWave{pw(i+6, 0)}}); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
	net.Reset()
	if net.Len() != 0 {
		t.Errorf("Len after Reset = %d", net.Len())
	}
	if u := net.Utilization(); u.InBusy != 0 || u.OutBusy != 0 {
		t.Errorf("edges busy after Reset: %+v", u)
	}
}

func TestObserverSeesAttempts(t *testing.T) {
	net := mustNew(t, 12, 2, 3, 2)
	var steps []multistage.RouteStep
	net.SetRouteObserver(func(s multistage.RouteStep) { steps = append(steps, s) })
	if _, err := net.Add(wdm.Connection{Source: pw(0, 0), Dests: []wdm.PortWave{pw(4, 0)}}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if len(steps) != 1 || steps[0].State != multistage.MiddleSelected {
		t.Errorf("observer steps = %+v", steps)
	}
}
