package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs/tsdb"
)

// Federated range queries: GET /v1/cluster/query fans the request's
// query string out to every shard's /v1/query and serves the merged
// result (see tsdb.Merge — per-shard series gain a shard label, and
// same-name series are summed into a synthetic fleet series). Like
// metrics federation, a down shard degrades the answer to partial
// instead of failing it, and the outcome feeds the peer tracker.

// NewQueryFederationHandler returns the /v1/cluster/query handler.
func NewQueryFederationHandler(cfg FederationConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peers := cfg.Peers()
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()

		type result struct {
			shard string
			res   *tsdb.QueryResult
			err   error
		}
		results := make([]result, len(peers))
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p FederationPeer) {
				defer wg.Done()
				results[i].shard = p.Shard
				var lastErr error
				lastURL, reached := "", false
				for _, u := range p.URLs {
					lastURL = u
					res, reachable, err := queryPeer(ctx, cfg.Client, u, r.URL.RawQuery)
					reached = reached || reachable
					if err == nil {
						results[i].res = res
						if cfg.Tracker != nil {
							cfg.Tracker.observe(p.Shard, u, true, nil)
						}
						return
					}
					lastErr = err
				}
				if lastErr == nil {
					lastErr = fmt.Errorf("no query URLs configured")
				}
				results[i].err = lastErr
				// A peer that answered with an error (bad expression,
				// history disabled) is still reachable — don't poison
				// the health view over a caller mistake.
				if cfg.Tracker != nil && !reached {
					cfg.Tracker.observe(p.Shard, lastURL, false, lastErr)
				}
			}(i, p)
		}
		wg.Wait()

		byShard := make(map[string]*tsdb.QueryResult, len(results))
		down := make([]string, 0)
		for _, res := range results {
			if res.err != nil {
				down = append(down, res.shard)
				continue
			}
			byShard[res.shard] = res.res
		}
		merged := tsdb.Merge(byShard)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			*tsdb.QueryResult
			Shards     int      `json:"shards"`
			DownShards []string `json:"down_shards,omitempty"`
		}{merged, len(byShard), down})
	})
}

// queryPeer runs one shard's /v1/query with the caller's raw query
// string. Non-200 answers (bad expression, history disabled on the
// peer) are errors with reachable=true: the peer is up but
// contributed nothing.
func queryPeer(ctx context.Context, c *http.Client, base, rawQuery string) (qr *tsdb.QueryResult, reachable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/query?"+rawQuery, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, true, fmt.Errorf("query %s: HTTP %d: %s", base, resp.StatusCode, firstLine(body))
	}
	qr = new(tsdb.QueryResult)
	if err := json.Unmarshal(body, qr); err != nil {
		return nil, true, fmt.Errorf("query %s: bad response: %w", base, err)
	}
	return qr, true, nil
}

// firstLine truncates an error body for the wrapped error message.
func firstLine(b []byte) string {
	s := string(b)
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
