package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
)

// TestFederationMergesLiveShards runs two real shard primaries, drives
// different load into each, and asserts /v1/cluster/metrics serves a
// strict-parser-clean merged exposition: counters summed fleet-wide,
// gauges labeled per shard, both peers reported up. A third peer that
// is unreachable degrades the view to partial instead of failing it.
func TestFederationMergesLiveShards(t *testing.T) {
	p0 := startPrimary(t, t.TempDir(), ServerConfig{Shard: 0})
	defer p0.http.Close()
	defer p0.srv.Close()
	defer p0.ctl.Close()
	p1 := startPrimary(t, t.TempDir(), ServerConfig{Shard: 1})
	defer p1.http.Close()
	defer p1.srv.Close()
	defer p1.ctl.Close()

	ctx := context.Background()
	cl0 := client.New(p0.http.URL, client.WithHTTPClient(p0.http.Client()))
	cl1 := client.New(p1.http.URL, client.WithHTTPClient(p1.http.Client()))
	for i := 0; i < 3; i++ {
		if _, err := cl0.Connect(ctx, fmt.Sprintf("%d.0>%d.0", i, i+8), -1); err != nil {
			t.Fatalf("shard 0 connect %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := cl1.Connect(ctx, fmt.Sprintf("%d.0>%d.0", i, i+8), -1); err != nil {
			t.Fatalf("shard 1 connect %d: %v", i, err)
		}
	}

	peers := []FederationPeer{
		{Shard: "0", URLs: []string{p0.http.URL}},
		{Shard: "1", URLs: []string{p1.http.URL}},
	}
	fsrv := httptest.NewServer(NewFederationHandler(FederationConfig{
		Peers: func() []FederationPeer { return peers },
	}))
	defer fsrv.Close()

	resp, err := http.Get(fsrv.URL)
	if err != nil {
		t.Fatalf("GET federation: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET federation: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
	m, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v", err)
	}

	// Counters sum across the fleet: 3 + 2 connects.
	if v, ok := m.Value("wdm_connect_total", nil); !ok || v != 5 {
		t.Errorf("fleet wdm_connect_total = %v, %v; want 5", v, ok)
	}
	// Gauges are labeled per shard.
	if v, ok := m.Value("wdm_active_sessions", map[string]string{"shard": "0"}); !ok || v != 3 {
		t.Errorf("wdm_active_sessions{shard=0} = %v, %v; want 3", v, ok)
	}
	if v, ok := m.Value("wdm_active_sessions", map[string]string{"shard": "1"}); !ok || v != 2 {
		t.Errorf("wdm_active_sessions{shard=1} = %v, %v; want 2", v, ok)
	}
	// Histograms sum: the connect latency count covers both shards.
	if v, ok := m.Value("wdm_op_latency_seconds_count", map[string]string{"op": "connect"}); !ok || v != 5 {
		t.Errorf("fleet op latency count{op=connect} = %v, %v; want 5", v, ok)
	}
	for _, shard := range []string{"0", "1"} {
		if v, ok := m.Value("wdm_federation_peer_up", map[string]string{"shard": shard}); !ok || v != 1 {
			t.Errorf("wdm_federation_peer_up{shard=%s} = %v, %v; want 1", shard, v, ok)
		}
	}

	// Add an unreachable peer: the merge must degrade to partial, not
	// fail, and mark the dead shard down.
	deadURL := "http://127.0.0.1:1" // connect refused immediately
	peers = append(peers, FederationPeer{Shard: "2", URLs: []string{deadURL}})
	resp2, err := http.Get(fsrv.URL)
	if err != nil {
		t.Fatalf("GET federation (partial): %v", err)
	}
	defer resp2.Body.Close()
	m2, err := obs.ParseProm(resp2.Body)
	if err != nil {
		t.Fatalf("partial merged exposition does not parse: %v", err)
	}
	if v, ok := m2.Value("wdm_federation_peer_up", map[string]string{"shard": "2"}); !ok || v != 0 {
		t.Errorf("wdm_federation_peer_up{shard=2} = %v, %v; want 0", v, ok)
	}
	if v, ok := m2.Value("wdm_connect_total", nil); !ok || v != 5 {
		t.Errorf("partial fleet wdm_connect_total = %v, %v; want 5", v, ok)
	}
}

// TestFederationStandbyFallback points a shard's primary URL at a dead
// address with the live node second: the scrape must fall back and
// still report the shard up.
func TestFederationStandbyFallback(t *testing.T) {
	p := startPrimary(t, t.TempDir(), ServerConfig{Shard: 0})
	defer p.http.Close()
	defer p.srv.Close()
	defer p.ctl.Close()

	fsrv := httptest.NewServer(NewFederationHandler(FederationConfig{
		Peers: func() []FederationPeer {
			return []FederationPeer{{Shard: "0", URLs: []string{"http://127.0.0.1:1", p.http.URL}}}
		},
	}))
	defer fsrv.Close()

	resp, err := http.Get(fsrv.URL)
	if err != nil {
		t.Fatalf("GET federation: %v", err)
	}
	defer resp.Body.Close()
	m, err := obs.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if v, ok := m.Value("wdm_federation_peer_up", map[string]string{"shard": "0"}); !ok || v != 1 {
		t.Errorf("wdm_federation_peer_up{shard=0} = %v, %v; want 1 via fallback URL", v, ok)
	}
}

// TestReplicationSpansJoinPrimaryTrace sends a connect with a sampled
// W3C traceparent and asserts the standby's apply produced a
// repl.apply span under the *same* trace id (carried through the
// replicated WAL record), with the fsync child attached.
func TestReplicationSpansJoinPrimaryTrace(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	p := startPrimary(t, dir1, ServerConfig{Shard: 0, SyncTimeout: 5 * time.Second, Heartbeat: 20 * time.Millisecond})
	defer p.http.Close()
	defer p.srv.Close()
	defer p.ctl.Close()

	serving := standbyServing()
	serving.Spans = span.Config{SampleEvery: 1} // keep every replication trace
	sb, err := NewStandby(StandbyConfig{
		Shard:     0,
		Primary:   p.ln.Addr().String(),
		DataDir:   dir2,
		Serving:   serving,
		Reconnect: 20 * time.Millisecond,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	sb.Start()
	defer sb.Close()
	sbHTTP := httptest.NewServer(sb.Handler())
	defer sbHTTP.Close()
	waitFor(t, 5*time.Second, "standby to connect", func() bool { return p.srv.Standbys() == 1 })

	tid := span.NewTraceID()
	traceparent := span.FormatTraceparent(tid, span.NewSpanID(), span.FlagSampled)
	cl := client.New(p.http.URL, client.WithHTTPClient(p.http.Client()))
	if _, err := cl.Connect(client.ContextWithTraceparent(context.Background(), traceparent), "0.0>8.0", -1); err != nil {
		t.Fatalf("connect: %v", err)
	}

	target := p.ctl.WAL().SyncedSeq()
	waitFor(t, 5*time.Second, "standby to apply the connect", func() bool { return sb.AppliedSeq() >= target })

	var spans api.SpansResponse
	if err := json.Unmarshal([]byte(fetchBody(t, sbHTTP.URL+"/v1/debug/spans")), &spans); err != nil {
		t.Fatalf("decoding standby spans: %v", err)
	}
	var joined *span.TraceRecord
	for i := range spans.Traces {
		if spans.Traces[i].TraceID == tid.String() {
			joined = &spans.Traces[i]
			break
		}
	}
	if joined == nil {
		ids := make([]string, 0, len(spans.Traces))
		for _, tr := range spans.Traces {
			ids = append(ids, tr.Root+":"+tr.TraceID)
		}
		t.Fatalf("standby has no trace %s; kept traces: %s", tid, strings.Join(ids, ", "))
	}
	if joined.Root != "repl.apply" {
		t.Errorf("joined trace root = %q, want repl.apply", joined.Root)
	}
	var sawFsync bool
	for _, s := range joined.Spans {
		if s.Name == "repl.fsync" {
			sawFsync = true
		}
	}
	if !sawFsync {
		t.Errorf("joined trace has no repl.fsync child: %+v", joined.Spans)
	}
}
