package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/multistage"
	"repro/internal/switchd"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
)

// TestStandbyApplyAcrossBackends proves log-shipping replication is
// backend-agnostic: a primary serving the mesh or AWG-Clos fabric
// ships its WAL to a standby that rebuilds the same backend from the
// durable metadata and applies every record onto warm planes. The two
// data directories must end byte-identical per session.
func TestStandbyApplyAcrossBackends(t *testing.T) {
	cases := []struct {
		name   string
		params multistage.Params
		conns  []string
		churn  string
	}{
		{"mesh", multistage.Params{N: 12, K: 4, R: 3, Model: wdm.MSW},
			[]string{"0.0>6.0", "1.1>7.1,10.1"}, "2.2>8.2"},
		{"awg", multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true},
			[]string{"0.0>5.0", "1.1>6.1,9.1"}, "2.0>7.0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir1, dir2 := t.TempDir(), t.TempDir()
			srv := NewServer(ServerConfig{Shard: 0, SyncTimeout: time.Second, Heartbeat: 20 * time.Millisecond, Logger: quietLogger()})
			ctl, err := switchd.New(switchd.Config{
				Backend:          tc.name,
				Fabric:           tc.params,
				Replicas:         2,
				DataDir:          dir1,
				WALSyncDelay:     -1,
				SnapshotInterval: -1,
				WALCommitter:     srv.Commit,
				Logger:           quietLogger(),
			})
			if err != nil {
				t.Fatalf("switchd.New: %v", err)
			}
			if err := srv.Attach(ctl); err != nil {
				t.Fatalf("Attach: %v", err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listener: %v", err)
			}
			go srv.Serve(ln)
			defer srv.Close()
			defer ctl.Close()
			hsrv := httptest.NewServer(ctl.Handler())
			defer hsrv.Close()

			sb, err := NewStandby(StandbyConfig{
				Shard:   0,
				Primary: ln.Addr().String(),
				DataDir: dir2,
				Serving: switchd.Config{
					Backend:          tc.name,
					Fabric:           tc.params,
					Replicas:         2,
					WALSyncDelay:     -1,
					SnapshotInterval: -1,
					Logger:           quietLogger(),
				},
				Reconnect: 20 * time.Millisecond,
				Logger:    quietLogger(),
			})
			if err != nil {
				t.Fatalf("NewStandby: %v", err)
			}
			sb.Start()
			defer sb.Close()
			waitFor(t, 5*time.Second, "standby to connect", func() bool { return srv.Standbys() == 1 })

			cl := client.New(hsrv.URL, client.WithHTTPClient(hsrv.Client()))
			ctx := context.Background()
			var held []uint64
			for _, c := range tc.conns {
				cr, err := cl.Connect(ctx, c, -1)
				if err != nil {
					t.Fatalf("Connect(%q): %v", c, err)
				}
				held = append(held, cr.Session)
			}
			// One full churn cycle so the standby applies a release too.
			cr, err := cl.Connect(ctx, tc.churn, -1)
			if err != nil {
				t.Fatalf("churn connect: %v", err)
			}
			if _, err := cl.Disconnect(ctx, cr.Session); err != nil {
				t.Fatalf("churn disconnect: %v", err)
			}

			target := ctl.WAL().SyncedSeq()
			waitFor(t, 5*time.Second, "standby to catch up", func() bool {
				return sb.AppliedSeq() >= target
			})

			ctl.Close()
			sb.Close()
			st1, meta1, _, err := durable.ReadState(dir1)
			if err != nil {
				t.Fatalf("ReadState(primary): %v", err)
			}
			st2, meta2, _, err := durable.ReadState(dir2)
			if err != nil {
				t.Fatalf("ReadState(standby): %v", err)
			}
			if meta1.BackendName() != tc.name || meta2.BackendName() != tc.name {
				t.Fatalf("durable backend = %q / %q, want %q", meta1.BackendName(), meta2.BackendName(), tc.name)
			}
			if len(st2.Sessions) != len(st1.Sessions) {
				t.Fatalf("session sets diverged: primary %d, standby %d", len(st1.Sessions), len(st2.Sessions))
			}
			for _, id := range held {
				a, okA := st1.Sessions[id]
				b, okB := st2.Sessions[id]
				if !okA || !okB {
					t.Fatalf("session %d missing (primary %v, standby %v)", id, okA, okB)
				}
				ja, _ := json.Marshal(a)
				jb, _ := json.Marshal(b)
				if !bytes.Equal(ja, jb) {
					t.Fatalf("session %d diverged:\n%s\n%s", id, ja, jb)
				}
			}
		})
	}
}
