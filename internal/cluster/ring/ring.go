// Package ring implements consistent-hash placement of session keys
// onto cluster shards. Each shard owns many virtual points on a 64-bit
// hash circle; a key maps to the shard owning the first point at or
// after the key's hash. Adding or removing one shard then moves only
// ~1/shards of the keyspace, and the virtual points keep per-shard load
// balanced even under the skewed (hotspot) destination distributions
// that motivate sharding in the first place.
//
// The package sits below both the cluster runtime and the typed client
// (which must agree on placement) and depends on nothing but the
// standard library, so either side can import it without cycles.
package ring

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-shard point count used when the
// caller passes 0. 128 points per shard keeps the maximum/mean load
// ratio within a few percent for small clusters.
const DefaultVirtualNodes = 128

type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash circle over shards 0..n-1.
// Safe for concurrent use.
type Ring struct {
	shards int
	points []point
}

// New builds a ring over `shards` shards with `vnodes` virtual points
// each (0 = DefaultVirtualNodes).
func New(shards, vnodes int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("ring: need at least one shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, points: make([]point, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			h := hash64(fmt.Sprintf("shard-%d#%d", s, v))
			r.points = append(r.points, point{hash: h, shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built over.
func (r *Ring) Shards() int { return r.shards }

// Pick maps a session key to its owning shard.
func (r *Ring) Pick(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.points[i].shard
}

// hash64 is FNV-1a with a splitmix64 finalizer; inlined rather than
// hash/fnv so hashing a key allocates nothing on the Pick hot path.
// Raw FNV keeps sequential labels ("shard-0#1", "shard-0#2", ...)
// clustered on the circle; the finalizer's avalanche spreads them.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
