package ring

import (
	"fmt"
	"testing"
)

func TestPickDeterministicAndInRange(t *testing.T) {
	r, err := New(3, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r2, _ := New(3, 0)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("session-%d", i)
		s := r.Pick(key)
		if s < 0 || s >= 3 {
			t.Fatalf("Pick(%q) = %d out of range", key, s)
		}
		if s2 := r2.Pick(key); s2 != s {
			t.Fatalf("Pick(%q) differs across identical rings: %d vs %d", key, s, s2)
		}
	}
}

func TestBalance(t *testing.T) {
	const shards, keys = 4, 40000
	r, err := New(shards, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Pick(fmt.Sprintf("w%d-key-%d", i%7, i))]++
	}
	mean := float64(keys) / shards
	for s, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("shard %d holds %d keys (%.2fx mean); distribution %v", s, c, ratio, counts)
		}
	}
}

// TestStabilityUnderGrowth: growing the cluster by one shard must move
// only a bounded fraction of keys — that is the point of consistent
// hashing over modulo placement.
func TestStabilityUnderGrowth(t *testing.T) {
	const keys = 20000
	r3, _ := New(3, 0)
	r4, _ := New(4, 0)
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("session-%d", i)
		if r3.Pick(key) != r4.Pick(key) {
			moved++
		}
	}
	// Ideal is 1/4 of keys; allow generous slack for hash variance.
	if frac := float64(moved) / keys; frac > 0.40 {
		t.Fatalf("growth 3->4 moved %.0f%% of keys, want ~25%%", frac*100)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Fatal("New(0) succeeded")
	}
	r, _ := New(1, 1)
	if s := r.Pick("anything"); s != 0 {
		t.Fatalf("single-shard ring picked %d", s)
	}
}
