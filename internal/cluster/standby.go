package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/fabric/backend"
	"repro/internal/obs"
	"repro/internal/obs/span"
	"repro/internal/switchd"
	"repro/internal/switchd/api"
)

// Standby defaults.
const (
	DefaultDialTimeout = 2 * time.Second
	DefaultReconnect   = 250 * time.Millisecond
	// standbyAckBatch caps how many records apply before the standby
	// fsyncs and acknowledges even while the stream stays busy, so the
	// primary's semi-sync barrier never waits a full catch-up.
	standbyAckBatch = 256
)

// StandbyConfig configures a warm shard standby.
type StandbyConfig struct {
	// Shard is the shard this standby replicates; it must match the
	// primary's or the handshake is rejected.
	Shard int
	// Primary is the primary's replication address (host:port of the
	// cluster.Server listener, not its HTTP address).
	Primary string
	// DataDir is the standby's own durable log directory. On promotion
	// the new primary recovers from exactly this directory.
	DataDir string
	// Serving is the switchd configuration the node runs with once
	// promoted; its Fabric/Replicas also define the durable meta the
	// handshake proves to the primary. DataDir inside it is ignored
	// (StandbyConfig.DataDir wins).
	Serving switchd.Config

	// DialTimeout bounds one connection attempt (default 2s); Reconnect
	// is the pause between attempts (default 250ms).
	DialTimeout time.Duration
	Reconnect   time.Duration
	// FailoverAfter, when positive, arms the watchdog: if the primary
	// goes silent (no records, no heartbeats) for this long after having
	// been reachable at least once, the standby promotes itself.
	FailoverAfter time.Duration

	Logger *slog.Logger
	// OnPromote, if set, runs after a successful promotion with the new
	// primary controller (e.g. to attach a replication Server so the
	// promoted node can adopt a standby of its own).
	OnPromote func(*switchd.Controller)
}

// standbyConn tracks where a replicated session lives in the warm
// fabrics.
type standbyConn struct {
	fabric int
	connID int
}

// Standby is the shard's warm spare: it follows the primary's WAL over
// TCP, appends every record to its own durable log (seq-preserving),
// applies it to warm multistage fabrics through the same Reinstall path
// recovery uses, and acknowledges only after its own fsync — the other
// half of the primary's semi-sync barrier. Until promotion its HTTP
// surface serves health/metrics and rejects mutations with
// not_primary; Promote (admin request or watchdog) closes the stream
// and boots a full switchd.Controller from the replicated log.
type Standby struct {
	cfg  StandbyConfig
	meta durable.Meta

	// tracer records repl.apply/repl.fsync spans. Replicated records
	// carry the primary's traceparent (durable.Record.TP), so a sampled
	// request's trace continues across the replication stream: the
	// standby's apply span shares the primary's trace id and is served
	// at the standby's /v1/debug/spans.
	tracer *span.Tracer

	mu      sync.Mutex
	plane   *durable.Plane
	nets    []backend.Backend
	conns   map[uint64]standbyConn
	state   *durable.State
	netBad  bool // warm fabrics diverged and could not be rebuilt
	conn    net.Conn
	started bool
	fatal   error

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	appliedSeq    atomic.Uint64 // durable (fsynced) high-water mark
	primarySynced atomic.Uint64 // primary's synced seq per last heartbeat
	lastContactNs atomic.Int64
	connected     atomic.Bool
	reconnects    atomic.Uint64
	snapshots     atomic.Uint64

	promoteOnce sync.Once
	promoted    atomic.Bool
	ctl         atomic.Pointer[switchd.Controller]
	handler     atomic.Value // http.Handler once promoted
	promoteErr  error
	promoteInfo api.PromoteResponse
}

// NewStandby opens (or recovers) the standby's durable log and warms
// its fabrics from whatever a previous process left behind. Call Start
// to begin following the primary.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("cluster: standby needs a data directory")
	}
	if cfg.Primary == "" {
		return nil, fmt.Errorf("cluster: standby needs a primary address")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.Reconnect <= 0 {
		cfg.Reconnect = DefaultReconnect
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	name := cfg.Serving.Backend
	if name == "" {
		name = backend.ForConstruction(cfg.Serving.Fabric.Construction)
	}
	desc, err := backend.Get(name)
	if err != nil {
		return nil, fmt.Errorf("cluster: standby fabric: %w", err)
	}
	norm, err := desc.Normalize(cfg.Serving.Fabric)
	if err != nil {
		return nil, fmt.Errorf("cluster: standby fabric: %w", err)
	}
	replicas := cfg.Serving.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	s := &Standby{
		cfg:    cfg,
		meta:   durable.Meta{Params: norm, Replicas: replicas, Backend: desc.Name},
		tracer: span.NewTracer(cfg.Serving.Spans),
		stop:   make(chan struct{}),
	}
	if err := s.openPlane(); err != nil {
		return nil, err
	}
	return s, nil
}

// openPlane opens the durable log and rebuilds the warm fabrics and
// materialized state from it. Caller must not hold s.mu.
func (s *Standby) openPlane() error {
	opts := durable.Options{
		Dir:          s.cfg.DataDir,
		SyncDelay:    s.cfg.Serving.WALSyncDelay,
		SegmentBytes: s.cfg.Serving.WALSegmentBytes,
		Logger:       s.cfg.Logger,
	}
	plane, rec, err := durable.Open(opts, s.meta)
	if err != nil {
		return fmt.Errorf("cluster: standby log: %w", err)
	}
	state := durable.NewState()
	state.NextSession = rec.NextSession
	for _, sr := range rec.Sessions {
		srCopy := sr
		state.Sessions[sr.Session] = &srCopy
	}
	for plane_, mids := range rec.Failed {
		set := make(map[int]bool, len(mids))
		for _, m := range mids {
			set[m] = true
		}
		state.Failed[plane_] = set
	}
	nets, conns, err := buildWarmNets(s.meta, state)
	if err != nil {
		plane.Close()
		return fmt.Errorf("cluster: warming standby fabrics: %w", err)
	}
	s.mu.Lock()
	s.plane = plane
	s.state = state
	s.nets = nets
	s.conns = conns
	s.netBad = false
	s.mu.Unlock()
	s.appliedSeq.Store(rec.LastSeq)
	return nil
}

// buildWarmNets materializes fabrics from a state: failed middles are
// re-marked, every live session reinstalled on its plane. This is the
// same construction recovery performs, applied to the replicated log.
func buildWarmNets(meta durable.Meta, state *durable.State) ([]backend.Backend, map[uint64]standbyConn, error) {
	desc, err := backend.Get(meta.BackendName())
	if err != nil {
		return nil, nil, err
	}
	nets := make([]backend.Backend, meta.Replicas)
	for i := range nets {
		n, err := desc.New(meta.Params)
		if err != nil {
			return nil, nil, err
		}
		nets[i] = n
	}
	for plane, set := range state.Failed {
		if plane < 0 || plane >= len(nets) {
			return nil, nil, fmt.Errorf("failed-middle plane %d out of range (have %d)", plane, len(nets))
		}
		for m := range set {
			if err := nets[plane].FailMiddle(m); err != nil {
				return nil, nil, err
			}
		}
	}
	conns := make(map[uint64]standbyConn, len(state.Sessions))
	for _, sr := range state.SessionList() {
		if sr.Fabric < 0 || sr.Fabric >= len(nets) {
			return nil, nil, fmt.Errorf("session %d on plane %d out of range (have %d)", sr.Session, sr.Fabric, len(nets))
		}
		id, err := nets[sr.Fabric].Reinstall(sr.Route)
		if err != nil {
			return nil, nil, fmt.Errorf("reinstalling session %d: %w", sr.Session, err)
		}
		conns[sr.Session] = standbyConn{fabric: sr.Fabric, connID: id}
	}
	return nets, conns, nil
}

// Start launches the follow loop (and the failover watchdog when
// FailoverAfter is set).
func (s *Standby) Start() {
	s.mu.Lock()
	if s.started || s.promoted.Load() {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.done = make(chan struct{})
	s.mu.Unlock()
	go s.run()
	if s.cfg.FailoverAfter > 0 {
		go s.watchdog()
	}
}

// AppliedSeq returns the standby's durable high-water mark.
func (s *Standby) AppliedSeq() uint64 { return s.appliedSeq.Load() }

// Reconnects returns how many times the stream re-dialed after its
// first successful connection.
func (s *Standby) Reconnects() uint64 { return s.reconnects.Load() }

// Promoted reports whether this node has taken over as primary.
func (s *Standby) Promoted() bool { return s.promoted.Load() }

// Controller returns the promoted controller, nil before promotion.
func (s *Standby) Controller() *switchd.Controller { return s.ctl.Load() }

// run follows the primary until stopped or promoted.
func (s *Standby) run() {
	defer close(s.done)
	first := true
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		if !first {
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.Reconnect):
			}
		}
		first = false
		if err := s.followOnce(); err != nil {
			s.mu.Lock()
			fatal := s.fatal
			s.mu.Unlock()
			if fatal != nil {
				s.cfg.Logger.Error("standby stopping", "shard", s.cfg.Shard, "err", fatal)
				return
			}
			s.cfg.Logger.Debug("replication stream lost; retrying",
				"shard", s.cfg.Shard, "primary", s.cfg.Primary, "err", err)
		}
	}
}

// followOnce dials the primary, resumes from the standby's durable
// position, and consumes the stream until it breaks.
func (s *Standby) followOnce() error {
	s.mu.Lock()
	plane := s.plane
	s.mu.Unlock()
	hs := handshakeMsg{Shard: s.cfg.Shard, HaveSeq: plane.LastSeq(), Meta: s.meta}
	c, br, bw, err := dialAndHandshake(s.cfg.Primary, s.cfg.DialTimeout, hs)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.conn = c
	s.mu.Unlock()
	defer func() {
		c.Close()
		s.connected.Store(false)
		s.mu.Lock()
		s.conn = nil
		s.mu.Unlock()
	}()
	if s.connected.Swap(true) {
		// already counted
	} else if s.lastContactNs.Load() != 0 {
		s.reconnects.Add(1)
	}
	s.lastContactNs.Store(time.Now().UnixNano())
	s.cfg.Logger.Info("following primary",
		"shard", s.cfg.Shard, "primary", s.cfg.Primary, "have_seq", hs.HaveSeq)

	pendingAcks := 0
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return err
		}
		s.lastContactNs.Store(time.Now().UnixNano())
		switch typ {
		case frameRecord:
			var rec durable.Record
			if err := json.Unmarshal(payload, &rec); err != nil {
				return fmt.Errorf("cluster: decode record: %w", err)
			}
			// A record carrying the primary's traceparent continues that
			// trace here: the apply span shares the primary request's
			// trace id. Records without one (unsampled requests) are
			// applied untraced — no orphan trace trees.
			var sp *span.Span
			if rec.TP != "" {
				sp = s.tracer.Root("repl.apply", rec.TP)
				sp.SetAttr("shard", s.cfg.Shard)
				sp.SetAttr("seq", rec.Seq)
				sp.SetAttr("op", rec.Op)
			}
			if err := s.applyRecord(&rec); err != nil {
				sp.SetError(err.Error())
				sp.End()
				return err
			}
			pendingAcks++
			// Acknowledge when the stream drains or the batch cap hits:
			// coalesced fsyncs under load, immediate ack for a lone
			// record.
			if br.Buffered() == 0 || pendingAcks >= standbyAckBatch {
				if err := s.ackUpTo(bw, rec.Seq, sp); err != nil {
					sp.End()
					return err
				}
				pendingAcks = 0
			}
			sp.End()
		case frameSnapshot:
			var snap durable.Snapshot
			if err := json.Unmarshal(payload, &snap); err != nil {
				return fmt.Errorf("cluster: decode snapshot: %w", err)
			}
			if err := s.bootstrapFromSnapshot(&snap); err != nil {
				s.setFatal(fmt.Errorf("cluster: snapshot bootstrap: %w", err))
				return err
			}
			s.snapshots.Add(1)
			if err := s.ackUpTo(bw, snap.LastSeq, nil); err != nil {
				return err
			}
			pendingAcks = 0
		case frameHeartbeat:
			var hb heartbeatMsg
			if err := json.Unmarshal(payload, &hb); err != nil {
				return fmt.Errorf("cluster: decode heartbeat: %w", err)
			}
			s.primarySynced.Store(hb.SyncedSeq)
			if err := s.ackUpTo(bw, s.appliedSeq.Load(), nil); err != nil {
				return err
			}
		case frameReject:
			var rej rejectMsg
			json.Unmarshal(payload, &rej)
			s.setFatal(fmt.Errorf("cluster: primary rejected standby: %s", rej.Reason))
			return s.fatalErr()
		}
	}
}

// ackUpTo makes everything up to seq durable on the standby, then
// acknowledges it. The fsync-before-ack order is the zero-loss
// contract: the primary only releases acknowledged clients on
// sequences the standby cannot lose. parent, when active, gets a
// repl.fsync child span covering the durability barrier.
func (s *Standby) ackUpTo(bw *bufio.Writer, seq uint64, parent *span.Span) error {
	s.mu.Lock()
	plane := s.plane
	s.mu.Unlock()
	fs := parent.StartChild("repl.fsync")
	fs.SetAttr("seq", seq)
	err := plane.Sync()
	if err != nil {
		fs.SetError(err.Error())
	}
	fs.End()
	if err != nil {
		s.setFatal(fmt.Errorf("cluster: standby fsync: %w", err))
		return err
	}
	if seq > s.appliedSeq.Load() {
		s.appliedSeq.Store(seq)
	}
	if err := writeFrame(bw, frameAck, ackMsg{AppliedSeq: s.appliedSeq.Load()}); err != nil {
		return err
	}
	return bw.Flush()
}

// applyRecord appends one replicated record to the standby's log and
// folds it into the warm fabrics and materialized state. Duplicates
// (already-held sequences, possible across reconnects) are skipped;
// gaps are stream errors.
func (s *Standby) applyRecord(rec *durable.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	last := s.plane.LastSeq()
	if rec.Seq <= last {
		return nil
	}
	if rec.Seq != last+1 {
		return fmt.Errorf("cluster: stream gap: got seq %d, have %d", rec.Seq, last)
	}
	if err := s.plane.AppendReplica(rec); err != nil {
		err = fmt.Errorf("cluster: standby append: %w", err)
		s.fatal = err
		return err
	}
	s.state.Apply(rec)
	if !s.netBad {
		if err := s.applyToNetsLocked(rec); err != nil {
			// Warm-fabric divergence never loses data (the log and state
			// are authoritative; promotion recovers from the log), so
			// rebuild once and degrade to log-only if that fails too.
			s.cfg.Logger.Warn("warm fabric diverged; rebuilding", "seq", rec.Seq, "err", err)
			nets, conns, rerr := buildWarmNets(s.meta, s.state)
			if rerr != nil {
				s.cfg.Logger.Error("warm fabric rebuild failed; continuing log-only", "err", rerr)
				s.netBad = true
			} else {
				s.nets = nets
				s.conns = conns
			}
		}
	}
	return nil
}

// applyToNetsLocked folds one record into the warm fabrics via the
// exact Reinstall path recovery uses. Caller holds s.mu.
func (s *Standby) applyToNetsLocked(rec *durable.Record) error {
	switch rec.Op {
	case durable.OpConnect, durable.OpBranch:
		if rec.Route == nil {
			return nil
		}
		if rec.Fabric < 0 || rec.Fabric >= len(s.nets) {
			return fmt.Errorf("fabric %d out of range", rec.Fabric)
		}
		if old, ok := s.conns[rec.Session]; ok {
			if err := s.nets[old.fabric].Release(old.connID); err != nil {
				return fmt.Errorf("releasing session %d before upsert: %w", rec.Session, err)
			}
			delete(s.conns, rec.Session)
		}
		id, err := s.nets[rec.Fabric].Reinstall(*rec.Route)
		if err != nil {
			return fmt.Errorf("reinstalling session %d: %w", rec.Session, err)
		}
		s.conns[rec.Session] = standbyConn{fabric: rec.Fabric, connID: id}
	case durable.OpDisconnect:
		if old, ok := s.conns[rec.Session]; ok {
			if err := s.nets[old.fabric].Release(old.connID); err != nil {
				return fmt.Errorf("releasing session %d: %w", rec.Session, err)
			}
			delete(s.conns, rec.Session)
		}
	case durable.OpFail:
		if rec.Fabric < 0 || rec.Fabric >= len(s.nets) {
			return fmt.Errorf("fabric %d out of range", rec.Fabric)
		}
		net := s.nets[rec.Fabric]
		// Free every affected route first (migrated sessions move, dropped
		// ones die), then mark the module failed, then reinstall the
		// post-migration routes — mirroring the primary's migration.
		for _, id := range rec.Dropped {
			if old, ok := s.conns[id]; ok && old.fabric == rec.Fabric {
				if err := net.Release(old.connID); err != nil {
					return fmt.Errorf("releasing dropped session %d: %w", id, err)
				}
				delete(s.conns, id)
			}
		}
		for i := range rec.Migrated {
			sr := rec.Migrated[i]
			if old, ok := s.conns[sr.Session]; ok && old.fabric == rec.Fabric {
				if err := net.Release(old.connID); err != nil {
					return fmt.Errorf("releasing migrating session %d: %w", sr.Session, err)
				}
				delete(s.conns, sr.Session)
			}
		}
		if err := net.FailMiddle(rec.Middle); err != nil {
			return fmt.Errorf("failing middle %d: %w", rec.Middle, err)
		}
		for i := range rec.Migrated {
			sr := rec.Migrated[i]
			if _, live := s.state.Sessions[sr.Session]; !live {
				continue
			}
			id, err := net.Reinstall(sr.Route)
			if err != nil {
				return fmt.Errorf("reinstalling migrated session %d: %w", sr.Session, err)
			}
			s.conns[sr.Session] = standbyConn{fabric: sr.Fabric, connID: id}
		}
	case durable.OpRepair:
		if rec.Fabric < 0 || rec.Fabric >= len(s.nets) {
			return fmt.Errorf("fabric %d out of range", rec.Fabric)
		}
		if err := s.nets[rec.Fabric].RepairMiddle(rec.Middle); err != nil {
			return fmt.Errorf("repairing middle %d: %w", rec.Middle, err)
		}
	}
	return nil
}

// bootstrapFromSnapshot replaces the standby's entire durable state
// with a primary-shipped checkpoint: the resume point was pruned on the
// primary, so the local log prefix is unusable. The old log files are
// removed, the snapshot written durably, and the plane reopened at the
// snapshot's sequence (records then stream from LastSeq+1).
func (s *Standby) bootstrapFromSnapshot(snap *durable.Snapshot) error {
	s.mu.Lock()
	plane := s.plane
	s.mu.Unlock()
	if err := plane.Close(); err != nil {
		return err
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") || strings.HasPrefix(name, "snap-") {
			if err := os.Remove(filepath.Join(s.cfg.DataDir, name)); err != nil {
				return err
			}
		}
	}
	snap.Meta = s.meta
	if err := durable.WriteSnapshotTo(s.cfg.DataDir, snap); err != nil {
		return err
	}
	s.cfg.Logger.Info("bootstrapped from primary snapshot",
		"shard", s.cfg.Shard, "snapshot_seq", snap.LastSeq, "sessions", len(snap.Sessions))
	return s.openPlane()
}

func (s *Standby) setFatal(err error) {
	s.mu.Lock()
	if s.fatal == nil {
		s.fatal = err
	}
	s.mu.Unlock()
}

func (s *Standby) fatalErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fatal
}

// watchdog promotes the standby when the primary goes silent for
// FailoverAfter after having been reachable at least once.
func (s *Standby) watchdog() {
	interval := s.cfg.FailoverAfter / 4
	if interval < 20*time.Millisecond {
		interval = 20 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
		}
		if s.promoted.Load() {
			return
		}
		last := s.lastContactNs.Load()
		if last == 0 {
			continue // never reached the primary: nothing to fail over from
		}
		silent := time.Since(time.Unix(0, last))
		if silent >= s.cfg.FailoverAfter {
			s.cfg.Logger.Warn("primary heartbeat lost; promoting",
				"shard", s.cfg.Shard, "silent", silent.String())
			if _, err := s.Promote("heartbeat loss"); err != nil {
				s.cfg.Logger.Error("automatic promotion failed", "err", err)
			}
			return
		}
	}
}

// Promote flips the standby to primary: the follow stream stops, the
// replicated log closes, and a full switchd.Controller boots from it —
// the same recovery path a crashed primary would take, applied to the
// replica's byte-equivalent log. Safe to call from the watchdog, the
// admin endpoint, or an operator; only the first call promotes.
func (s *Standby) Promote(reason string) (*switchd.Controller, error) {
	s.promoteOnce.Do(func() {
		start := time.Now()
		s.stopFollowing()
		s.mu.Lock()
		plane := s.plane
		s.mu.Unlock()
		if plane != nil {
			plane.Close()
		}
		serving := s.cfg.Serving
		serving.DataDir = s.cfg.DataDir
		if serving.Logger == nil {
			serving.Logger = s.cfg.Logger
		}
		ctl, err := switchd.New(serving)
		if err != nil {
			s.mu.Lock()
			s.promoteErr = fmt.Errorf("cluster: promotion: %w", err)
			s.mu.Unlock()
			return
		}
		st := ctl.Status()
		s.promoteInfo = api.PromoteResponse{
			Promoted: true,
			Shard:    s.cfg.Shard,
			Sessions: int(st.Active),
			Millis:   time.Since(start).Milliseconds(),
		}
		shard := s.cfg.Shard
		ctl.SetReplicationProbe(func() *api.ReplicationHealth {
			rh := &api.ReplicationHealth{
				Role:     api.RolePrimary,
				Shard:    shard,
				Promoted: true,
			}
			if wal := ctl.WAL(); wal != nil {
				rh.SyncedSeq = wal.SyncedSeq()
			}
			return rh
		})
		s.ctl.Store(ctl)
		s.handler.Store(ctl.Handler())
		s.promoted.Store(true)
		s.cfg.Logger.Info("standby promoted to primary",
			"shard", s.cfg.Shard, "reason", reason,
			"sessions", st.Active, "millis", s.promoteInfo.Millis)
		if s.cfg.OnPromote != nil {
			s.cfg.OnPromote(ctl)
		}
	})
	s.mu.Lock()
	err := s.promoteErr
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.ctl.Load(), nil
}

// stopFollowing halts the run loop and waits for it to exit.
func (s *Standby) stopFollowing() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	c := s.conn
	done := s.done
	started := s.started
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
	if started && done != nil {
		<-done
	}
}

// Close stops the standby (or the promoted controller).
func (s *Standby) Close() error {
	s.stopFollowing()
	if ctl := s.ctl.Load(); ctl != nil {
		return ctl.Close()
	}
	s.mu.Lock()
	plane := s.plane
	s.plane = nil
	s.mu.Unlock()
	if plane != nil {
		return plane.Close()
	}
	return nil
}

// ReplicationHealth reports the standby's view of the stream.
func (s *Standby) ReplicationHealth() *api.ReplicationHealth {
	if ctl := s.ctl.Load(); ctl != nil {
		// Promoted: the controller's probe answers.
		h := ctl.Health()
		return h.Replication
	}
	applied := s.appliedSeq.Load()
	primary := s.primarySynced.Load()
	rh := &api.ReplicationHealth{
		Role:       api.RoleStandby,
		Shard:      s.cfg.Shard,
		Connected:  s.connected.Load(),
		SyncedSeq:  primary,
		AppliedSeq: applied,
		Reconnects: s.reconnects.Load(),
		Snapshots:  s.snapshots.Load(),
	}
	if primary > applied {
		rh.LagRecords = primary - applied
	}
	if t := s.lastContactNs.Load(); t > 0 {
		rh.LagSeconds = time.Since(time.Unix(0, t)).Seconds()
	}
	return rh
}

// Handler serves the standby's HTTP surface. Before promotion it
// answers health/metrics/promote and rejects everything else with
// not_primary (503), so a ShardedClient naturally fails over; after
// promotion every request transparently reaches the promoted
// controller's full /v1 handler.
func (s *Standby) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/health", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/debug/spans", s.handleSpans)
	mux.HandleFunc("/v1/admin/promote", s.handlePromote)
	mux.HandleFunc("/", s.handleNotPrimary)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, ok := s.handler.Load().(http.Handler); ok && h != nil {
			h.ServeHTTP(w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func (s *Standby) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := api.Health{
		Status:      api.HealthStandby,
		Replication: s.ReplicationHealth(),
	}
	writeJSONResponse(w, http.StatusOK, h)
}

func (s *Standby) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var pw obs.PromWriter
	switchd.WriteReplicationProm(&pw, s.ReplicationHealth())
	s.mu.Lock()
	plane := s.plane
	s.mu.Unlock()
	if plane != nil {
		st := plane.Stats()
		pw.Gauge("wdm_wal_last_seq", "Newest record sequence in the standby's replicated log.", float64(st.LastSeq))
		pw.Gauge("wdm_wal_synced_seq", "Newest fsynced record sequence in the standby's replicated log.", float64(st.SyncedSeq))
	}
	w.Header().Set("Content-Type", obs.ContentType)
	w.Write(pw.Bytes())
}

// handleSpans serves the standby's repl.apply/repl.fsync traces —
// continuations, via the replicated traceparent, of the primary's
// request traces.
func (s *Standby) handleSpans(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeAPIError(w, http.StatusNotFound, api.CodeNotFound, "span tracing disabled (Spans.Capacity < 0)")
		return
	}
	kept, dropped := s.tracer.Stats()
	writeJSONResponse(w, http.StatusOK, api.SpansResponse{Kept: kept, Dropped: dropped, Traces: s.tracer.Snapshot()})
}

func (s *Standby) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeAPIError(w, http.StatusMethodNotAllowed, api.CodeBadRequest, "POST required")
		return
	}
	if _, err := s.Promote("admin request"); err != nil {
		writeAPIError(w, http.StatusInternalServerError, api.CodeStorageFailed, err.Error())
		return
	}
	writeJSONResponse(w, http.StatusOK, s.promoteInfo)
}

func (s *Standby) handleNotPrimary(w http.ResponseWriter, r *http.Request) {
	writeAPIError(w, api.StatusFor(api.CodeNotPrimary), api.CodeNotPrimary,
		fmt.Sprintf("shard %d standby: not serving until promoted", s.cfg.Shard))
}

func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	writeJSONResponse(w, status, api.Envelope{Error: &api.Error{Code: code, Message: msg}})
}
