package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Cluster-wide metrics federation: GET /v1/cluster/metrics scrapes
// every shard's /metrics and serves the merged fleet exposition (see
// obs.MergeProm for the merge semantics — counters and histograms sum,
// gauges get a shard label). A shard that is down or serves a
// malformed exposition is skipped and reported through the
// wdm_federation_peer_up gauge: the fleet view degrades to partial
// instead of failing, because it is needed most during exactly the
// incidents that take shards out.

// FederationPeer is one shard's scrape target: URLs are tried in order
// (primary first, then standby), the first reachable exposition wins.
type FederationPeer struct {
	Shard string
	URLs  []string
}

// FederationConfig configures the federation handler.
type FederationConfig struct {
	// Peers lists the scrape targets per request, so a topology that
	// changes (promotion, reconfiguration) is picked up live.
	Peers func() []FederationPeer
	// Timeout bounds the whole scrape fan-out (default 2s).
	Timeout time.Duration
	// Client issues the scrapes (default http.DefaultClient).
	Client *http.Client
	// Tracker, when set, receives every scrape outcome so federated
	// requests keep the peer-health view fresh between probe ticks.
	Tracker *PeerTracker
}

// NewFederationHandler returns the /v1/cluster/metrics handler.
func NewFederationHandler(cfg FederationConfig) http.Handler {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		peers := cfg.Peers()
		ctx, cancel := context.WithTimeout(r.Context(), cfg.Timeout)
		defer cancel()

		// Scrape every shard concurrently; first reachable URL wins.
		type result struct {
			shard string
			body  []byte
			err   error
		}
		results := make([]result, len(peers))
		var wg sync.WaitGroup
		for i, p := range peers {
			wg.Add(1)
			go func(i int, p FederationPeer) {
				defer wg.Done()
				results[i].shard = p.Shard
				var lastErr error
				lastURL := ""
				for _, u := range p.URLs {
					lastURL = u
					body, err := scrape(ctx, cfg.Client, u)
					if err == nil {
						results[i].body = body
						if cfg.Tracker != nil {
							cfg.Tracker.observe(p.Shard, u, true, nil)
						}
						return
					}
					lastErr = err
				}
				if lastErr == nil {
					lastErr = fmt.Errorf("no scrape URLs configured")
				}
				results[i].err = lastErr
				if cfg.Tracker != nil {
					cfg.Tracker.observe(p.Shard, lastURL, false, lastErr)
				}
			}(i, p)
		}
		wg.Wait()

		raw := make(map[string][]byte, len(results))
		down := map[string]bool{}
		for _, res := range results {
			if res.err != nil {
				down[res.shard] = true
				continue
			}
			raw[res.shard] = res.body
		}
		var pw obs.PromWriter
		bad := obs.MergeFleet(&pw, raw)
		for _, res := range results {
			up := !down[res.shard] && bad[res.shard] == nil
			pw.Gauge("wdm_federation_peer_up",
				"1 when the shard's exposition was scraped and merged this request; 0 for unreachable or malformed peers.",
				b2f(up), obs.Label{Name: "shard", Value: res.shard})
		}
		w.Header().Set("Content-Type", obs.ContentType)
		_, _ = pw.WriteTo(w)
	})
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// scrape fetches one peer's classic-format exposition.
func scrape(ctx context.Context, c *http.Client, base string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", base, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}
