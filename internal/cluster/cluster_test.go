package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/multistage"
	"repro/internal/switchd"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
)

func testParams() multistage.Params {
	return multistage.Params{
		N: 16, K: 2, R: 4,
		Model:        wdm.MSW,
		Construction: multistage.MSWDominant,
		Lite:         true,
	}
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// primaryNode is one shard primary under test: controller, replication
// server, and HTTP frontend, with the semi-sync committer wired.
type primaryNode struct {
	ctl  *switchd.Controller
	srv  *Server
	ln   net.Listener
	http *httptest.Server
}

func startPrimary(t *testing.T, dir string, sc ServerConfig) *primaryNode {
	t.Helper()
	sc.Logger = quietLogger()
	srv := NewServer(sc)
	ctl, err := switchd.New(switchd.Config{
		Fabric:           testParams(),
		Replicas:         2,
		DataDir:          dir,
		WALSyncDelay:     -1,
		SnapshotInterval: -1,
		WALCommitter:     srv.Commit,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatalf("primary switchd.New: %v", err)
	}
	if err := srv.Attach(ctl); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("replication listener: %v", err)
	}
	go srv.Serve(ln)
	return &primaryNode{ctl: ctl, srv: srv, ln: ln, http: httptest.NewServer(ctl.Handler())}
}

func standbyServing() switchd.Config {
	return switchd.Config{
		Fabric:           testParams(),
		Replicas:         2,
		WALSyncDelay:     -1,
		SnapshotInterval: -1,
		Logger:           quietLogger(),
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func fetchBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return string(b)
}

func blockedTotal(st api.Status) int64 {
	var n int64
	for _, f := range st.Fabrics {
		n += f.Blocked
	}
	return n
}

// TestClusterFailoverZeroLoss is the acceptance drill: kill a shard
// primary under live churn, promote the standby by admin request, and
// prove that (a) the churn rides over the flip through the
// ShardedClient, (b) every session acknowledged before the kill is
// either still present on the new primary with a byte-identical durable
// route or was explicitly disconnected afterwards, (c) nothing blocked,
// and (d) both roles exported replication lag metrics.
func TestClusterFailoverZeroLoss(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	p := startPrimary(t, dir1, ServerConfig{Shard: 0, SyncTimeout: 5 * time.Second, Heartbeat: 25 * time.Millisecond})
	sb, err := NewStandby(StandbyConfig{
		Shard:     0,
		Primary:   p.ln.Addr().String(),
		DataDir:   dir2,
		Serving:   standbyServing(),
		Reconnect: 20 * time.Millisecond,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	sb.Start()
	defer sb.Close()
	sbHTTP := httptest.NewServer(sb.Handler())
	defer sbHTTP.Close()

	waitFor(t, 5*time.Second, "standby to connect", func() bool { return p.srv.Standbys() == 1 })

	// Both roles must export the replication metrics before anything
	// dramatic happens.
	for _, u := range []string{p.http.URL + "/metrics", sbHTTP.URL + "/metrics"} {
		body := fetchBody(t, u)
		if !strings.Contains(body, "wdm_replication_lag_seconds") || !strings.Contains(body, "wdm_replication_seq") {
			t.Fatalf("%s missing replication series:\n%s", u, body)
		}
	}

	sc, err := client.NewSharded(
		[]client.ShardEndpoints{{Primary: p.http.URL, Standby: sbHTTP.URL}},
		client.WithRetry(client.RetryPolicy{MaxAttempts: 60, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}),
	)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}

	// Ledger of what the cluster acknowledged to clients. A session in
	// ackedLive without a later acknowledged disconnect must survive the
	// failover; gone records acknowledged disconnects (including ones
	// resolved as not_found after the flip: the disconnect applied, the
	// ack was lost with the primary).
	var (
		ledgerMu  sync.Mutex
		ackedLive = map[uint64]string{}
		gone      = map[uint64]bool{}
	)
	ctx := context.Background()

	// Held sessions live through the whole drill: acknowledged before the
	// kill, never torn down, they MUST come back on the new primary.
	for i := 0; i < 4; i++ {
		_, cr, err := sc.Connect(ctx, fmt.Sprintf("held-%d", i), fmt.Sprintf("%d.0>%d.0", 8+i, i), -1)
		if err != nil {
			t.Fatalf("held connect %d: %v", i, err)
		}
		ackedLive[cr.Session] = fmt.Sprintf("%d.0>%d.0", 8+i, i)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// 4 workers, 2 disjoint unicast lanes each (slots 0 and 1 of disjoint
	// module pairs): always admissible, no cross-worker contention. A lane
	// is abandoned if a kill-window orphan (applied but unacknowledged
	// connect) holds its slots.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lanes := []string{
				fmt.Sprintf("%d.0>%d.0", w, w+8),
				fmt.Sprintf("%d.1>%d.1", w+4, w+12),
			}
			dead := make([]bool, len(lanes))
			for i := 0; ; i = (i + 1) % len(lanes) {
				select {
				case <-stop:
					return
				default:
				}
				if dead[i] {
					if dead[0] && dead[1] {
						return
					}
					continue
				}
				_, cr, err := sc.Connect(ctx, fmt.Sprintf("worker-%d", w), lanes[i], -1)
				if err != nil {
					if api.CodeOf(err) == api.CodeBadRequest {
						// Orphan from the kill window occupies the lane.
						dead[i] = true
						continue
					}
					t.Errorf("worker %d connect %q: %v", w, lanes[i], err)
					return
				}
				ledgerMu.Lock()
				ackedLive[cr.Session] = lanes[i]
				ledgerMu.Unlock()
				_, err = sc.Disconnect(ctx, 0, cr.Session)
				if err != nil && api.CodeOf(err) != api.CodeNotFound {
					t.Errorf("worker %d disconnect %d: %v", w, cr.Session, err)
					return
				}
				// Success or not_found: either way the teardown applied.
				ledgerMu.Lock()
				gone[cr.Session] = true
				ledgerMu.Unlock()
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond)

	// Capture what was acknowledged so far, then kill the primary
	// mid-churn: hard-stop the WAL, the HTTP frontend, and the
	// replication stream.
	ledgerMu.Lock()
	ackedAtKill := make(map[uint64]string, len(ackedLive))
	for id, lane := range ackedLive {
		ackedAtKill[id] = lane
	}
	ledgerMu.Unlock()

	preKillStatus, err := sc.Status(ctx, 0)
	if err != nil {
		t.Fatalf("pre-kill status: %v", err)
	}
	if blockedTotal(preKillStatus) != 0 {
		t.Fatalf("primary blocked %d requests before the kill", blockedTotal(preKillStatus))
	}

	p.ctl.Crash()
	p.srv.Close()
	p.http.Close()

	// Promote by admin request; the churn is still running and failing
	// over while this happens.
	resp, err := http.Post(sbHTTP.URL+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		t.Fatalf("POST promote: %v", err)
	}
	var pr api.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decode promote response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !pr.Promoted {
		t.Fatalf("promote: status %d, response %+v", resp.StatusCode, pr)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	ctl2 := sb.Controller()
	if ctl2 == nil {
		t.Fatal("standby promoted but Controller() is nil")
	}

	// Zero acknowledged loss: every pre-kill acknowledged session is on
	// the new primary unless its teardown was acknowledged too.
	survivors := 0
	for id, lane := range ackedAtKill {
		ledgerMu.Lock()
		g := gone[id]
		ledgerMu.Unlock()
		if g {
			continue
		}
		survivors++
		si, err := sc.Session(ctx, 0, id)
		if err != nil {
			t.Fatalf("acked session %d (lane %s) lost in failover: %v", id, lane, err)
		}
		if si.Conn != lane {
			t.Fatalf("session %d came back as %q, was acknowledged as %q", id, si.Conn, lane)
		}
	}
	if len(ackedAtKill) == 0 {
		t.Fatal("churn acknowledged no sessions before the kill; test proved nothing")
	}
	if survivors < 4 {
		t.Fatalf("%d survivors verified; the 4 held sessions alone should survive", survivors)
	}

	st2, err := sc.Status(ctx, 0)
	if err != nil {
		t.Fatalf("post-failover status: %v", err)
	}
	if blockedTotal(st2) != 0 {
		t.Fatalf("new primary blocked %d requests", blockedTotal(st2))
	}
	if got := fetchBody(t, sbHTTP.URL+"/metrics"); !strings.Contains(got, "wdm_replication_lag_seconds") {
		t.Fatal("promoted node stopped exporting wdm_replication_lag_seconds")
	}
	if n := p.srv.SyncTimeouts(); n != 0 {
		t.Fatalf("primary degraded to async replication %d times during a healthy run", n)
	}

	// Byte-identical durable state: close the promoted node, read both
	// logs back, and compare every surviving acknowledged session's
	// recorded route between the dead primary's log and the replica's.
	if err := sb.Close(); err != nil {
		t.Fatalf("closing promoted node: %v", err)
	}
	st1read, _, _, err := durable.ReadState(dir1)
	if err != nil {
		t.Fatalf("ReadState(primary): %v", err)
	}
	st2read, _, _, err := durable.ReadState(dir2)
	if err != nil {
		t.Fatalf("ReadState(replica): %v", err)
	}
	compared := 0
	for id := range ackedAtKill {
		ledgerMu.Lock()
		g := gone[id]
		ledgerMu.Unlock()
		if g {
			continue
		}
		a, okA := st1read.Sessions[id]
		b, okB := st2read.Sessions[id]
		if !okA || !okB {
			t.Fatalf("acked session %d missing from durable state (primary %v, replica %v)", id, okA, okB)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("session %d diverged:\nprimary: %s\nreplica: %s", id, ja, jb)
		}
		compared++
	}
	if compared != survivors {
		t.Fatalf("compared %d sessions, expected %d", compared, survivors)
	}
	t.Logf("failover drill: %d acked at kill, %d survivors verified byte-identical, promote took %dms",
		len(ackedAtKill), survivors, pr.Millis)
}

// TestStandbyTornFrameResume cuts the replication stream mid-frame with
// a byte-limited proxy: the standby must treat the torn frame as a
// dropped connection, reconnect, resume from its durable high-water
// mark, and converge on the primary's exact session set with no
// duplicates (AppendReplica enforces contiguity, so a replayed or
// skipped record would fail loudly).
func TestStandbyTornFrameResume(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	p := startPrimary(t, dir1, ServerConfig{Shard: 0, SyncTimeout: 100 * time.Millisecond, Heartbeat: 20 * time.Millisecond})
	defer p.http.Close()
	defer p.srv.Close()
	defer p.ctl.Close()

	// Proxy: first downstream connection is cut 9 bytes in (mid-frame:
	// every frame is at least 5 header bytes plus payload); later
	// connections pass through untouched.
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listener: %v", err)
	}
	defer pln.Close()
	var first atomic.Bool
	first.Store(true)
	go func() {
		for {
			down, err := pln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", p.ln.Addr().String())
			if err != nil {
				down.Close()
				continue
			}
			go func() { io.Copy(up, down); up.Close() }()
			go func() {
				if first.Swap(false) {
					io.CopyN(down, up, 9)
				} else {
					io.Copy(down, up)
				}
				down.Close()
				up.Close()
			}()
		}
	}()

	sb, err := NewStandby(StandbyConfig{
		Shard:       0,
		Primary:     pln.Addr().String(),
		DataDir:     dir2,
		Serving:     standbyServing(),
		Reconnect:   20 * time.Millisecond,
		DialTimeout: time.Second,
		Logger:      quietLogger(),
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	sb.Start()
	defer sb.Close()

	cl := client.New(p.http.URL, client.WithHTTPClient(p.http.Client()))
	for i := 0; i < 5; i++ {
		if _, err := cl.Connect(context.Background(), fmt.Sprintf("%d.0>%d.0", i, i+8), -1); err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
	}

	target := p.ctl.WAL().SyncedSeq()
	waitFor(t, 5*time.Second, "standby to resume past the torn frame", func() bool {
		return sb.AppliedSeq() >= target
	})
	if sb.Reconnects() == 0 {
		t.Fatal("stream was never cut; the torn-frame path did not run")
	}

	p.ctl.Close()
	sb.Close()
	st1, _, _, err := durable.ReadState(dir1)
	if err != nil {
		t.Fatalf("ReadState(primary): %v", err)
	}
	st2, _, _, err := durable.ReadState(dir2)
	if err != nil {
		t.Fatalf("ReadState(replica): %v", err)
	}
	if len(st1.Sessions) != 5 || len(st2.Sessions) != len(st1.Sessions) {
		t.Fatalf("session sets diverged: primary %d, replica %d", len(st1.Sessions), len(st2.Sessions))
	}
	for id, a := range st1.Sessions {
		b, ok := st2.Sessions[id]
		if !ok {
			t.Fatalf("session %d missing on replica", id)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("session %d diverged:\n%s\n%s", id, ja, jb)
		}
	}
}

// TestStandbyAutoPromoteOnHeartbeatLoss arms the watchdog and
// hard-stops the primary: the standby must notice the silent stream and
// promote itself with the full replicated session set.
func TestStandbyAutoPromoteOnHeartbeatLoss(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	p := startPrimary(t, dir1, ServerConfig{Shard: 0, SyncTimeout: 2 * time.Second, Heartbeat: 20 * time.Millisecond})
	defer p.http.Close()

	sb, err := NewStandby(StandbyConfig{
		Shard:         0,
		Primary:       p.ln.Addr().String(),
		DataDir:       dir2,
		Serving:       standbyServing(),
		Reconnect:     20 * time.Millisecond,
		FailoverAfter: 250 * time.Millisecond,
		Logger:        quietLogger(),
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	sb.Start()
	defer sb.Close()
	waitFor(t, 5*time.Second, "standby to connect", func() bool { return p.srv.Standbys() == 1 })

	cl := client.New(p.http.URL, client.WithHTTPClient(p.http.Client()))
	want := map[uint64]string{}
	for i := 0; i < 3; i++ {
		conn := fmt.Sprintf("%d.0>%d.0", i, i+8)
		cr, err := cl.Connect(context.Background(), conn, -1)
		if err != nil {
			t.Fatalf("connect %d: %v", i, err)
		}
		want[cr.Session] = conn
	}

	p.ctl.Crash()
	p.srv.Close()
	p.http.Close()

	waitFor(t, 5*time.Second, "watchdog promotion", sb.Promoted)
	ctl2 := sb.Controller()
	if ctl2 == nil {
		t.Fatal("promoted without a controller")
	}
	st := ctl2.Status()
	if st.Active != int64(len(want)) {
		t.Fatalf("promoted with %d sessions, want %d", st.Active, len(want))
	}
	h := ctl2.Health()
	if h.Replication == nil || h.Replication.Role != api.RolePrimary || !h.Replication.Promoted {
		t.Fatalf("promoted health replication row wrong: %+v", h.Replication)
	}
}

// TestStandbySnapshotBootstrap joins a standby after the primary pruned
// the log prefix the standby would need: the primary must ship a full
// state snapshot and stream the tail from there.
func TestStandbySnapshotBootstrap(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	srv := NewServer(ServerConfig{Shard: 0, SyncTimeout: time.Second, Heartbeat: 20 * time.Millisecond, Logger: quietLogger()})
	ctl, err := switchd.New(switchd.Config{
		Fabric:           testParams(),
		Replicas:         2,
		DataDir:          dir1,
		WALSyncDelay:     -1,
		WALSegmentBytes:  600,
		SnapshotInterval: -1,
		WALCommitter:     srv.Commit,
		Logger:           quietLogger(),
	})
	if err != nil {
		t.Fatalf("switchd.New: %v", err)
	}
	if err := srv.Attach(ctl); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listener: %v", err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	defer ctl.Close()
	hsrv := httptest.NewServer(ctl.Handler())
	defer hsrv.Close()

	// Enough churn to span several 600-byte segments, two snapshots to
	// prune the early ones, then a held session the snapshot must carry.
	cl := client.New(hsrv.URL, client.WithHTTPClient(hsrv.Client()))
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		cr, err := cl.Connect(ctx, "0.0>8.0", -1)
		if err != nil {
			t.Fatalf("cycle connect %d: %v", i, err)
		}
		if _, err := cl.Disconnect(ctx, cr.Session); err != nil {
			t.Fatalf("cycle disconnect %d: %v", i, err)
		}
	}
	heldResp, err := cl.Connect(ctx, "1.0>9.0", -1)
	if err != nil {
		t.Fatalf("held connect: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := ctl.WriteSnapshot(); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
	}
	segs, err := filepath.Glob(filepath.Join(dir1, "wal-*.log"))
	if err != nil {
		t.Fatalf("listing segments: %v", err)
	}
	if len(segs) > 2 {
		t.Skipf("pruning left %d segments; compaction did not trigger", len(segs))
	}

	sb, err := NewStandby(StandbyConfig{
		Shard:     0,
		Primary:   ln.Addr().String(),
		DataDir:   dir2,
		Serving:   standbyServing(),
		Reconnect: 20 * time.Millisecond,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatalf("NewStandby: %v", err)
	}
	sb.Start()
	defer sb.Close()

	target := ctl.WAL().SyncedSeq()
	waitFor(t, 5*time.Second, "standby to bootstrap and catch up", func() bool {
		return sb.AppliedSeq() >= target
	})
	rh := sb.ReplicationHealth()
	if rh.Snapshots == 0 {
		t.Fatal("standby caught up without a snapshot bootstrap; the compacted path did not run")
	}

	// Post-bootstrap records still apply: one more live mutation must
	// reach the standby.
	cr, err := cl.Connect(ctx, "2.0>10.0", -1)
	if err != nil {
		t.Fatalf("post-bootstrap connect: %v", err)
	}
	target = ctl.WAL().SyncedSeq()
	waitFor(t, 5*time.Second, "tail record to replicate", func() bool {
		return sb.AppliedSeq() >= target
	})

	ctl.Close()
	sb.Close()
	st1, _, _, err := durable.ReadState(dir1)
	if err != nil {
		t.Fatalf("ReadState(primary): %v", err)
	}
	st2, _, _, err := durable.ReadState(dir2)
	if err != nil {
		t.Fatalf("ReadState(replica): %v", err)
	}
	for _, id := range []uint64{heldResp.Session, cr.Session} {
		a, okA := st1.Sessions[id]
		b, okB := st2.Sessions[id]
		if !okA || !okB {
			t.Fatalf("session %d missing (primary %v, replica %v)", id, okA, okB)
		}
		ja, _ := json.Marshal(a)
		jb, _ := json.Marshal(b)
		if !bytes.Equal(ja, jb) {
			t.Fatalf("session %d diverged:\n%s\n%s", id, ja, jb)
		}
	}
	if len(st2.Sessions) != len(st1.Sessions) {
		t.Fatalf("session sets diverged: primary %d, replica %d", len(st1.Sessions), len(st2.Sessions))
	}
}

// TestServerRejectsDivergentStandby: a standby whose resume point is
// ahead of the primary's log followed a different history (semi-sync
// never lets a real standby get ahead), so the handshake must be
// refused rather than splicing two logs at a coincidentally-matching
// sequence number. Regression for an orphaned standby from a previous
// cluster incarnation dialing a freshly-initialised primary.
func TestServerRejectsDivergentStandby(t *testing.T) {
	p := startPrimary(t, t.TempDir(), ServerConfig{Shard: 0})
	defer p.http.Close()
	defer p.srv.Close()
	defer p.ctl.Close()

	c, br, _, err := dialAndHandshake(p.ln.Addr().String(), time.Second, handshakeMsg{
		Shard:   0,
		HaveSeq: p.ctl.WAL().LastSeq() + 100,
		Meta:    p.ctl.WAL().Meta(),
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	typ, payload, err := readFrame(br)
	if err != nil {
		t.Fatalf("reading handshake response: %v", err)
	}
	if typ != frameReject {
		t.Fatalf("frame type = %d, want frameReject", typ)
	}
	var rej rejectMsg
	if err := json.Unmarshal(payload, &rej); err != nil {
		t.Fatalf("decoding reject: %v", err)
	}
	if !strings.Contains(rej.Reason, "divergent history") {
		t.Fatalf("reject reason %q, want divergent-history refusal", rej.Reason)
	}

	// An equal resume point is the normal fully-caught-up case and must
	// still be admitted.
	c2, br2, _, err := dialAndHandshake(p.ln.Addr().String(), time.Second, handshakeMsg{
		Shard:   0,
		HaveSeq: p.ctl.WAL().LastSeq(),
		Meta:    p.ctl.WAL().Meta(),
	})
	if err != nil {
		t.Fatalf("dial (caught-up): %v", err)
	}
	defer c2.Close()
	typ2, _, err := readFrame(br2)
	if err != nil {
		t.Fatalf("reading first frame on caught-up stream: %v", err)
	}
	if typ2 == frameReject {
		t.Fatal("caught-up standby was rejected")
	}
}
