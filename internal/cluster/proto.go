// Package cluster is the horizontal layer over switchd: each shard is
// one primary controller whose write-ahead log is streamed, record by
// record, to a warm standby that continuously applies it through the
// same multistage.Reinstall path recovery uses. Because every
// acknowledged mutation is a WAL record (PR 5) and a record set that
// coexisted in a fabric reinstalls without blocking by construction,
// "replicate the switch" reduces to "ship the log": the standby holds a
// byte-equivalent session set at all times, and promotion — on
// heartbeat loss or an explicit admin request — is a local recovery,
// not a state transfer.
//
// Replication is semi-synchronous: the primary's group commit calls
// into Server.Commit (durable.Options.Committer) after each batch
// fsync, which waits — bounded by a timeout — for the standby to both
// append and fsync the batch before any client in the batch is
// acknowledged. A healthy pair therefore loses zero acknowledged
// sessions on primary death; a dead or lagging standby degrades the
// pair to asynchronous shipping (counted, surfaced in /v1/health)
// rather than stalling the serving path forever.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/durable"
)

// Wire protocol: after the standby's handshake, both directions carry
// [1-byte type][4-byte LE length][JSON payload] frames over one TCP
// connection. JSON keeps the stream debuggable and reuses the WAL's
// record encoding; the length prefix keeps framing independent of the
// payload, so a torn frame is detected by a short read, never by a
// parse error.
const (
	frameHandshake byte = 1 // standby -> primary: who I am, where I am
	frameSnapshot  byte = 2 // primary -> standby: bootstrap state (resume point pruned)
	frameRecord    byte = 3 // primary -> standby: one WAL record
	frameHeartbeat byte = 4 // primary -> standby: liveness + primary's synced seq
	frameAck       byte = 5 // standby -> primary: durable-applied high-water mark
	frameReject    byte = 6 // primary -> standby: fatal protocol error, then close
)

// maxFrameBytes bounds one wire frame; mirrors the WAL's frame limit
// (a snapshot frame can be large, a record frame cannot).
const maxFrameBytes = 1 << 28

// handshakeMsg opens the stream: the standby names its shard, proves
// fabric identity (meta must be Compatible), and asks to resume after
// the newest sequence it holds durably.
type handshakeMsg struct {
	Shard   int          `json:"shard"`
	HaveSeq uint64       `json:"have_seq"`
	Meta    durable.Meta `json:"meta"`
}

// heartbeatMsg rides the replication stream (no separate port): sent
// every Heartbeat interval even when no records flow, so the standby's
// failover timer measures primary liveness, not traffic.
type heartbeatMsg struct {
	SyncedSeq  uint64 `json:"synced_seq"`
	SentUnixNs int64  `json:"sent_unix_ns"`
}

// ackMsg reports the standby's durable progress: every record with
// Seq <= AppliedSeq is appended to the standby's log, fsynced, and
// applied to its warm fabrics.
type ackMsg struct {
	AppliedSeq uint64 `json:"applied_seq"`
}

// rejectMsg explains a fatal stream rejection (wrong shard, fabric
// mismatch) before the primary closes the connection.
type rejectMsg struct {
	Reason string `json:"reason"`
}

// writeFrame emits one frame. The caller owns flushing.
func writeFrame(w *bufio.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encode frame %d: %w", typ, err)
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("cluster: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one frame. io.EOF means the peer closed cleanly
// between frames; a short read mid-frame surfaces as
// io.ErrUnexpectedEOF (the on-the-wire torn-frame case — the receiver
// reconnects and resumes from its durable high-water mark).
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxFrameBytes {
		return 0, nil, fmt.Errorf("cluster: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, io.ErrUnexpectedEOF
	}
	return hdr[0], payload, nil
}
