package cluster

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/switchd"
	"repro/internal/switchd/api"
)

// DefaultSyncTimeout bounds how long an acknowledged batch may wait for
// the standby before the pair degrades to asynchronous shipping.
const DefaultSyncTimeout = 2 * time.Second

// DefaultHeartbeat is the idle-stream liveness interval.
const DefaultHeartbeat = 250 * time.Millisecond

// ServerConfig configures a shard primary's replication side.
type ServerConfig struct {
	// Shard is this node's shard index; handshakes for any other shard
	// are rejected (a misrouted standby must not apply a foreign log).
	Shard int

	// SyncTimeout bounds Commit's wait for a standby ack. Zero means
	// DefaultSyncTimeout; negative disables the semi-sync barrier
	// entirely (pure async shipping).
	SyncTimeout time.Duration

	// Heartbeat is the interval between liveness frames on an idle
	// stream. Zero means DefaultHeartbeat.
	Heartbeat time.Duration

	Logger *slog.Logger
}

// Server is the primary's half of log shipping: it accepts standby
// connections, streams the shard's WAL from each standby's resume
// point (bootstrapping with a state snapshot when the resume point was
// pruned), and — installed as the durable plane's Committer — holds
// group-commit acknowledgement until the standby has fsynced the
// batch, bounded by SyncTimeout.
type Server struct {
	cfg ServerConfig

	ctl *switchd.Controller
	wal *durable.Plane

	mu       sync.Mutex
	conns    map[*repConn]struct{}
	maxAcked uint64
	ackWait  chan struct{} // closed+replaced whenever maxAcked or membership changes
	closed   bool
	ln       net.Listener

	syncTimeouts atomic.Uint64
	lastAckNs    atomic.Int64
	promoted     atomic.Bool // set by admin demote/tests; reserved for future use

	wg sync.WaitGroup
}

// repConn is one connected standby.
type repConn struct {
	c        net.Conn
	bw       *bufio.Writer
	wmu      sync.Mutex // serialises record stream vs heartbeat frames
	follower atomic.Pointer[durable.Follower]
	done     chan struct{}
	once     sync.Once
}

func (rc *repConn) shutdown() {
	rc.once.Do(func() {
		close(rc.done)
		rc.c.Close()
		if fl := rc.follower.Load(); fl != nil {
			fl.Close()
		}
	})
}

// NewServer builds a replication server. Call Attach with the shard's
// controller before Serve; install (*Server).Commit as the controller's
// WALCommitter to get the semi-sync acknowledgement barrier.
func NewServer(cfg ServerConfig) *Server {
	if cfg.SyncTimeout == 0 {
		cfg.SyncTimeout = DefaultSyncTimeout
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = DefaultHeartbeat
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Server{
		cfg:     cfg,
		conns:   make(map[*repConn]struct{}),
		ackWait: make(chan struct{}),
	}
}

// Attach binds the server to its shard controller (whose WAL it
// streams) and registers the server as the controller's replication
// health probe. The controller must have its durable plane open.
func (s *Server) Attach(ctl *switchd.Controller) error {
	wal := ctl.WAL()
	if wal == nil {
		return fmt.Errorf("cluster: controller has no durable plane; replication requires -data")
	}
	s.ctl = ctl
	s.wal = wal
	ctl.SetReplicationProbe(s.Health)
	return nil
}

// Serve accepts standby connections on ln until Close. It returns after
// the accept loop exits; per-connection goroutines are waited for by
// Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("cluster: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(c)
		}()
	}
}

// Commit is the durable plane's Committer: called after each group
// commit's fsync with the batch's last sequence, it blocks until a
// standby acknowledges durability of every record up to upTo, the
// timeout elapses (degrade to async, counted), or no standby is
// connected (nothing to wait for — a lone primary serves normally).
func (s *Server) Commit(upTo uint64) {
	if s.cfg.SyncTimeout < 0 {
		return
	}
	deadline := time.Now().Add(s.cfg.SyncTimeout)
	s.mu.Lock()
	for {
		if s.closed || len(s.conns) == 0 || s.maxAcked >= upTo {
			s.mu.Unlock()
			return
		}
		ch := s.ackWait
		s.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			s.syncTimeouts.Add(1)
			s.cfg.Logger.Warn("replication ack timeout; batch acknowledged async",
				"shard", s.cfg.Shard, "up_to", upTo)
			return
		}
		t := time.NewTimer(wait)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
		s.mu.Lock()
	}
}

// wake closes and replaces ackWait; callers hold s.mu.
func (s *Server) wakeLocked() {
	close(s.ackWait)
	s.ackWait = make(chan struct{})
}

// AckedSeq returns the highest sequence any standby has acknowledged
// as durable.
func (s *Server) AckedSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxAcked
}

// Standbys returns the number of connected standbys.
func (s *Server) Standbys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// SyncTimeouts returns how many group commits degraded to async.
func (s *Server) SyncTimeouts() uint64 { return s.syncTimeouts.Load() }

// Health snapshots the primary's replication state for /v1/health and
// /metrics.
func (s *Server) Health() *api.ReplicationHealth {
	s.mu.Lock()
	standbys := len(s.conns)
	acked := s.maxAcked
	s.mu.Unlock()
	synced := uint64(0)
	if s.wal != nil {
		synced = s.wal.SyncedSeq()
	}
	rh := &api.ReplicationHealth{
		Role:         api.RolePrimary,
		Shard:        s.cfg.Shard,
		Connected:    standbys > 0,
		Standbys:     standbys,
		SyncedSeq:    synced,
		AckedSeq:     acked,
		SyncTimeouts: s.syncTimeouts.Load(),
	}
	if synced > acked {
		rh.LagRecords = synced - acked
		if t := s.lastAckNs.Load(); t > 0 {
			rh.LagSeconds = time.Since(time.Unix(0, t)).Seconds()
		}
	}
	return rh
}

// Close stops accepting, tears down every standby stream, and wakes any
// Commit waiter (which then sees zero connections and returns).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*repConn, 0, len(s.conns))
	for rc := range s.conns {
		conns = append(conns, rc)
	}
	s.wakeLocked()
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, rc := range conns {
		rc.shutdown()
	}
	s.wg.Wait()
	return nil
}

// handleConn owns one standby stream: handshake, then a record loop
// (with snapshot bootstrap when the resume point is pruned), a
// heartbeat ticker, and an ack reader.
func (s *Server) handleConn(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)

	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, payload, err := readFrame(br)
	if err != nil || typ != frameHandshake {
		c.Close()
		return
	}
	var hs handshakeMsg
	if err := json.Unmarshal(payload, &hs); err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})

	if reason := s.admit(hs); reason != "" {
		writeFrame(bw, frameReject, rejectMsg{Reason: reason})
		bw.Flush()
		c.Close()
		s.cfg.Logger.Warn("standby rejected", "shard", s.cfg.Shard, "reason", reason)
		return
	}

	rc := &repConn{c: c, bw: bw, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[rc] = struct{}{}
	s.mu.Unlock()
	s.cfg.Logger.Info("standby connected",
		"shard", s.cfg.Shard, "remote", c.RemoteAddr().String(), "have_seq", hs.HaveSeq)

	defer func() {
		rc.shutdown()
		s.mu.Lock()
		delete(s.conns, rc)
		// Membership change: a Commit waiting on this standby must
		// re-evaluate (it may now have nothing to wait for).
		s.wakeLocked()
		s.mu.Unlock()
		s.cfg.Logger.Info("standby disconnected", "shard", s.cfg.Shard, "remote", c.RemoteAddr().String())
	}()

	// Ack reader: the standby's durable high-water marks release
	// Commit waiters.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer rc.shutdown()
		for {
			typ, payload, err := readFrame(br)
			if err != nil {
				return
			}
			if typ != frameAck {
				continue
			}
			var ack ackMsg
			if err := json.Unmarshal(payload, &ack); err != nil {
				return
			}
			s.noteAck(ack.AppliedSeq)
		}
	}()

	// Heartbeat ticker: liveness plus the primary's synced seq, so the
	// standby can report lag without traffic.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-rc.done:
				return
			case <-tick.C:
			}
			hb := heartbeatMsg{SyncedSeq: s.wal.SyncedSeq(), SentUnixNs: time.Now().UnixNano()}
			rc.wmu.Lock()
			err := writeFrame(rc.bw, frameHeartbeat, hb)
			if err == nil {
				err = rc.bw.Flush()
			}
			rc.wmu.Unlock()
			if err != nil {
				rc.shutdown()
				return
			}
		}
	}()

	if err := s.streamRecords(rc, hs.HaveSeq); err != nil && !errors.Is(err, durable.ErrFollowerClosed) {
		s.cfg.Logger.Warn("replication stream ended", "shard", s.cfg.Shard, "err", err)
	}
}

// admit validates a handshake; empty string means accepted.
func (s *Server) admit(hs handshakeMsg) string {
	if hs.Shard != s.cfg.Shard {
		return fmt.Sprintf("shard mismatch: primary serves shard %d, standby asked for %d", s.cfg.Shard, hs.Shard)
	}
	if !s.wal.Meta().Compatible(hs.Meta) {
		return "fabric meta incompatible: standby must be configured with identical fabric parameters"
	}
	// Semi-sync only ships records the primary already persisted, so a
	// standby can never be legitimately ahead of this log. A higher
	// resume point means the standby followed a different history (a
	// previous incarnation of this shard, or a foreign log): streaming
	// from there would splice two histories at a sequence number that
	// only coincidentally matches. Refuse; the operator promotes the
	// standby or wipes its directory, but the logs must not merge.
	if last := s.wal.LastSeq(); hs.HaveSeq > last {
		return fmt.Sprintf("standby log ahead of primary (standby seq %d, primary seq %d): divergent history, refusing to stream", hs.HaveSeq, last)
	}
	return ""
}

func (s *Server) noteAck(seq uint64) {
	s.lastAckNs.Store(time.Now().UnixNano())
	s.mu.Lock()
	if seq > s.maxAcked {
		s.maxAcked = seq
		s.wakeLocked()
	}
	s.mu.Unlock()
}

// streamRecords ships the WAL from after, bootstrapping with a full
// state snapshot when the resume point has been compacted away. It
// flushes opportunistically: whenever the follower has no more records
// immediately available, so batches coalesce under load but a lone
// record leaves at once.
func (s *Server) streamRecords(rc *repConn, after uint64) error {
	for {
		fl := s.wal.Follow(after)
		rc.follower.Store(fl)
		select {
		case <-rc.done:
			fl.Close()
			return durable.ErrFollowerClosed
		default:
		}
		rec, err := fl.Next()
		if errors.Is(err, durable.ErrCompacted) {
			fl.Close()
			snap := s.ctl.SnapshotState()
			s.cfg.Logger.Info("resume point compacted; shipping snapshot",
				"shard", s.cfg.Shard, "after", after, "snapshot_seq", snap.LastSeq)
			rc.wmu.Lock()
			werr := writeFrame(rc.bw, frameSnapshot, snap)
			if werr == nil {
				werr = rc.bw.Flush()
			}
			rc.wmu.Unlock()
			if werr != nil {
				return werr
			}
			after = snap.LastSeq
			continue
		}
		for err == nil {
			rc.wmu.Lock()
			werr := writeFrame(rc.bw, frameRecord, rec)
			if werr == nil && !fl.Pending() {
				werr = rc.bw.Flush()
			}
			rc.wmu.Unlock()
			if werr != nil {
				fl.Close()
				return werr
			}
			rec, err = fl.Next()
		}
		fl.Close()
		return err
	}
}

// dialAndHandshake is the standby-side opener, kept next to the server
// so the two halves of the protocol stay in one file pair.
func dialAndHandshake(addr string, timeout time.Duration, hs handshakeMsg) (net.Conn, *bufio.Reader, *bufio.Writer, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)
	if err := writeFrame(bw, frameHandshake, hs); err != nil {
		c.Close()
		return nil, nil, nil, err
	}
	if err := bw.Flush(); err != nil {
		c.Close()
		return nil, nil, nil, err
	}
	return c, br, bw, nil
}
