package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// PeerStatus is one federation peer's last known reachability.
type PeerStatus struct {
	Shard string
	URL   string // the URL the verdict came from
	Up    bool
	Error string
	// LastProbe is when the verdict was produced (zero before the
	// first probe).
	LastProbe time.Time
}

// PeerTracker maintains federation peer reachability: a background
// prober hits every peer's /v1/health on an interval, and the
// federation handlers opportunistically feed their scrape outcomes in,
// so a peer that just failed a federated request is marked down
// without waiting for the next probe tick. Snapshot feeds the
// federation row of GET /v1/health and the wdm_federation_peer_up
// gauges.
type PeerTracker struct {
	peers   func() []FederationPeer
	client  *http.Client
	timeout time.Duration

	mu     sync.Mutex
	status map[string]PeerStatus
}

// NewPeerTracker builds a tracker over cfg's peer list, client, and
// timeout (same defaults as the federation handlers).
func NewPeerTracker(cfg FederationConfig) *PeerTracker {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	return &PeerTracker{
		peers:   cfg.Peers,
		client:  cfg.Client,
		timeout: cfg.Timeout,
		status:  make(map[string]PeerStatus),
	}
}

// observe records one peer verdict (prober or federation scrape).
func (t *PeerTracker) observe(shard, url string, up bool, err error) {
	st := PeerStatus{Shard: shard, URL: url, Up: up, LastProbe: time.Now()}
	if err != nil {
		st.Error = err.Error()
	}
	t.mu.Lock()
	t.status[shard] = st
	t.mu.Unlock()
}

// ProbeOnce probes every peer concurrently: the first URL that answers
// /v1/health over a working transport marks the peer up — any HTTP
// status counts (a degraded or even critical shard is still a
// reachable federation source; unreachable is what breaks the fleet
// view).
func (t *PeerTracker) ProbeOnce(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, t.timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range t.peers() {
		wg.Add(1)
		go func(p FederationPeer) {
			defer wg.Done()
			var lastErr error
			lastURL := ""
			for _, u := range p.URLs {
				lastURL = u
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/v1/health", nil)
				if err != nil {
					lastErr = err
					continue
				}
				resp, err := t.client.Do(req)
				if err != nil {
					lastErr = err
					continue
				}
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				t.observe(p.Shard, u, true, nil)
				return
			}
			if lastErr == nil {
				lastErr = fmt.Errorf("no probe URLs configured")
			}
			t.observe(p.Shard, lastURL, false, lastErr)
		}(p)
	}
	wg.Wait()
}

// Run probes on an interval until ctx is done. An immediate first
// probe seeds the status map so /v1/health has a verdict right away.
func (t *PeerTracker) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	t.ProbeOnce(ctx)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.ProbeOnce(ctx)
		}
	}
}

// Snapshot returns every known peer's status, sorted by shard.
func (t *PeerTracker) Snapshot() []PeerStatus {
	t.mu.Lock()
	out := make([]PeerStatus, 0, len(t.status))
	for _, st := range t.status {
		out = append(out, st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Shard < out[j].Shard })
	return out
}
