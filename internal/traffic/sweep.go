package traffic

import (
	"context"
	"fmt"
	"time"

	"repro/internal/analytic"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
)

// SweepConfig drives offered load through a sequence of Erlang steps.
type SweepConfig struct {
	// Engine is the per-point engine template; Erlangs and Seed are
	// overridden per load point (the seed is decorrelated by point
	// index so points are independent but the whole sweep is still a
	// pure function of Engine.Seed).
	Engine Config
	// Points are the offered loads in Erlangs, swept in order.
	Points []float64
	// Z is the Wilson-interval critical value (default 1.96 ≈ 95%).
	Z float64
	// Logf, when set, receives one progress line per load point.
	Logf func(format string, args ...any)
}

// CurvePoint is one measured load point of a blocking curve.
type CurvePoint struct {
	Erlangs float64 `json:"erlangs"`

	// Offered counts every fabric-bound request (connects + branch
	// grows + shrink re-admits); Blocked the genuine blocking answers
	// among them. PBlock = Blocked/Offered with the Wilson 95% score
	// interval around it.
	Offered  int     `json:"offered"`
	Routed   int     `json:"routed"`
	Blocked  int     `json:"blocked"`
	Rejected int     `json:"rejected,omitempty"`
	PBlock   float64 `json:"p_block"`
	WilsonLo float64 `json:"wilson_lo"`
	WilsonHi float64 `json:"wilson_hi"`

	// Unoffered counts arrivals the engine's own free slots could not
	// build an admissible request for — client-side clamping, excluded
	// from PBlock (reported so saturation of the closed loop itself is
	// visible).
	Unoffered int `json:"unoffered,omitempty"`

	// MeanFanout is the measured mean connect fanout at this point.
	MeanFanout float64 `json:"mean_fanout"`

	// Latency is the client-observed connect round trip; ServerPhases
	// the target's own Server-Timing attribution (mean µs per phase).
	Latency      ClientLatency      `json:"connect_latency_us"`
	ServerPhases map[string]float64 `json:"server_phase_mean_us,omitempty"`

	// LeePredicted overlays Lee's independent-link multicast
	// approximation at this point's load and measured mean fanout;
	// ErlangB the M/G/c/c loss on the plane's m·k middle-stage circuit
	// pool. Both are analytic references, not fits.
	LeePredicted float64 `json:"lee_predicted"`
	ErlangB      float64 `json:"erlang_b"`

	Duration time.Duration `json:"duration_ns"`
}

// Curves is the sweep artifact (BENCH_curves.json): one measured
// blocking curve with its analytic overlays and enough target metadata
// to reproduce the run.
type Curves struct {
	GeneratedAt string `json:"generated_at"`
	Target      string `json:"target"`

	Backend      string `json:"backend"`
	Model        string `json:"model"`
	Construction string `json:"construction,omitempty"`
	N            int    `json:"n"`
	K            int    `json:"k"`
	R            int    `json:"r"`
	M            int    `json:"m"`
	SufficientM  int    `json:"sufficient_m"`
	Replicas     int    `json:"replicas"`

	Seed      int64  `json:"seed"`
	Arrival   string `json:"arrival"`
	Holding   string `json:"holding"`
	Fanout    string `json:"fanout"`
	MaxFanout int    `json:"max_fanout,omitempty"`
	MaxLive   int    `json:"max_live,omitempty"`
	Arrivals  int    `json:"arrivals_per_point"`

	// Churn and Hotspot round out the engine template so a replay
	// rebuilt from the artifact offers the same request stream (churn
	// grows add offers beyond the arrival count; hotspots skew the
	// destination draw).
	Churn   ChurnConfig   `json:"churn,omitzero"`
	Hotspot HotspotConfig `json:"hotspot,omitzero"`

	Points []CurvePoint `json:"points"`
}

// AtBound reports whether the target is provisioned at or above its
// backend's sufficient (nonblocking) middle-stage count.
func (c Curves) AtBound() bool { return c.SufficientM > 0 && c.M >= c.SufficientM }

// MaxPBlock returns the largest measured blocking probability across
// the curve's points.
func (c Curves) MaxPBlock() float64 {
	max := 0.0
	for _, p := range c.Points {
		if p.PBlock > max {
			max = p.PBlock
		}
	}
	return max
}

// Sweep runs the engine once per load point and assembles the curve.
// Between points every session has been torn down (the engine drains),
// so points are independent measurements. While each point runs, a
// self-reporter posts the offered Erlangs and running block rate to
// the target once a second, so the sweep is visible in the server's
// gauges and in wdmtop's fleet view.
func Sweep(ctx context.Context, cfg SweepConfig) (Curves, error) {
	if len(cfg.Points) == 0 {
		return Curves{}, fmt.Errorf("traffic: sweep needs at least one load point")
	}
	if cfg.Z == 0 {
		cfg.Z = 1.96
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	curves := Curves{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        cfg.Engine.Seed,
		Arrival:     cfg.Engine.Arrival.String(),
		Holding:     cfg.Engine.Holding.String(),
		MaxFanout:   cfg.Engine.MaxFanout,
		MaxLive:     cfg.Engine.MaxLive,
		Arrivals:    cfg.Engine.Arrivals,
		Churn:       cfg.Engine.Churn,
		Hotspot:     cfg.Engine.Hotspot,
	}

	for i, erl := range cfg.Points {
		if erl <= 0 {
			return curves, fmt.Errorf("traffic: sweep point %d: erlangs %g must be positive", i, erl)
		}
		ecfg := cfg.Engine
		ecfg.Erlangs = erl
		// Decorrelate points while keeping the sweep reproducible from
		// one seed.
		ecfg.Seed = cfg.Engine.Seed + int64(i)*104729
		eng, err := NewEngine(ecfg)
		if err != nil {
			return curves, err
		}
		if curves.Fanout == "" {
			curves.Fanout = FormatFanout(eng.cfg.Fanout)
		}

		repCtx, stopReport := context.WithCancel(ctx)
		repDone := make(chan struct{})
		go func() {
			defer close(repDone)
			ReportLoop(repCtx, ecfg.Client, eng.Progress(), erl)
		}()
		rep, err := eng.Run(ctx)
		stopReport()
		<-repDone
		if err != nil {
			return curves, fmt.Errorf("traffic: sweep point %d (%.3g Erlangs): %w", i, erl, err)
		}

		if i == 0 {
			st := rep.Status
			curves.Backend, curves.Model, curves.Construction = st.Backend, st.Model, st.Construction
			curves.N, curves.K, curves.R, curves.M = st.N, st.K, st.R, st.M
			curves.SufficientM, curves.Replicas = st.SufficientM, st.Replicas
		}

		s := rep.Stats
		pt := CurvePoint{
			Erlangs:      erl,
			Offered:      s.Offered(),
			Routed:       s.Routed,
			Blocked:      s.BlockedTotal(),
			Rejected:     s.Rejected,
			PBlock:       s.PBlock(),
			Unoffered:    s.Unoffered,
			Latency:      LatencyQuantiles(s.Latencies),
			ServerPhases: s.PhaseMeans(),
			Duration:     rep.Duration,
		}
		pt.WilsonLo, pt.WilsonHi = WilsonInterval(s.BlockedTotal(), s.Offered(), cfg.Z)
		if s.Connects > 0 {
			pt.MeanFanout = float64(s.TotalFanout) / float64(s.Connects)
		}
		pt.LeePredicted = analytic.LeeLoadPoint(erl, pt.MeanFanout, curves.N, curves.R, curves.M, curves.K)
		pt.ErlangB = analytic.ErlangB(erl, curves.M*curves.K)
		curves.Points = append(curves.Points, pt)
		logf("point %d/%d: %.3g Erlangs -> P_block=%.4f [%.4f, %.4f] (offered=%d blocked=%d, lee=%.4f) in %v",
			i+1, len(cfg.Points), erl, pt.PBlock, pt.WilsonLo, pt.WilsonHi,
			pt.Offered, pt.Blocked, pt.LeePredicted, rep.Duration.Round(time.Millisecond))
	}
	return curves, nil
}

// ReportLoop posts the generator's live rates to the target (POST
// /v1/loadgen) once a second until ctx is done: offered/achieved
// requests per second over the last tick, plus the configured offered
// Erlangs and the cumulative block rate. Report failures are ignored —
// the target may be unreachable mid-chaos, and result accounting never
// depends on the reports landing.
func ReportLoop(ctx context.Context, cl *client.Client, prog *Progress, erlangs float64) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	lastOffered, lastRouted := int64(0), int64(0)
	lastAt := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			offered, routed, blocked := prog.Counters()
			secs := now.Sub(lastAt).Seconds()
			if secs <= 0 {
				continue
			}
			rep := api.LoadgenReport{
				OfferedRPS:     float64(offered-lastOffered) / secs,
				AchievedRPS:    float64(routed-lastRouted) / secs,
				OfferedErlangs: erlangs,
			}
			if offered > 0 {
				rep.BlockRate = float64(blocked) / float64(offered)
			}
			lastOffered, lastRouted, lastAt = offered, routed, now
			_ = cl.ReportLoad(ctx, rep)
		}
	}
}
