package traffic

import (
	"math"
	"math/rand"
	"testing"
)

// sampleGaps draws n interarrival gaps from a fresh process under a
// fixed seed, so every statistic below is deterministic.
func sampleGaps(spec ArrivalSpec, seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := spec.NewProcess()
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = p.Next(rng)
	}
	return gaps
}

func meanCV(xs []float64) (mean, cv float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs))) / mean
}

// TestPoissonInterarrivals checks the baseline is genuinely unit-mean
// exponential: mean ≈ 1 and coefficient of variation ≈ 1.
func TestPoissonInterarrivals(t *testing.T) {
	spec, err := ParseArrival("poisson")
	if err != nil {
		t.Fatal(err)
	}
	mean, cv := meanCV(sampleGaps(spec, 1, 200000))
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("poisson mean gap = %.4f, want 1 ± 0.02", mean)
	}
	if math.Abs(cv-1) > 0.03 {
		t.Errorf("poisson interarrival CV = %.4f, want 1 ± 0.03", cv)
	}
}

// TestMMPPBurstiness checks the normalization (long-run rate 1) and
// that the bursts actually show: the interarrival CV exceeds the
// Poisson baseline, and dwell-sized windows see a peak arrival count
// several times the mean.
func TestMMPPBurstiness(t *testing.T) {
	spec, err := ParseArrival("mmpp:burst=10,duty=0.1,dwell=5")
	if err != nil {
		t.Fatal(err)
	}
	gaps := sampleGaps(spec, 2, 300000)
	mean, cv := meanCV(gaps)
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("mmpp mean gap = %.4f, want 1 ± 0.05 (unit mean rate)", mean)
	}
	if cv < 1.3 {
		t.Errorf("mmpp interarrival CV = %.4f, want > 1.3 (burstier than Poisson)", cv)
	}

	// Count arrivals per dwell-sized window of virtual time.
	const window = 5.0
	counts := map[int]int{}
	tNow, maxWin := 0.0, 0
	for _, g := range gaps {
		tNow += g
		w := int(tNow / window)
		counts[w]++
		if counts[w] > maxWin {
			maxWin = counts[w]
		}
	}
	meanWin := float64(len(gaps)) / (tNow / window)
	if ratio := float64(maxWin) / meanWin; ratio < 3 {
		t.Errorf("mmpp peak/mean window count = %.2f, want >= 3 (burst=10 should show)", ratio)
	}
}

// TestParetoHolding checks the heavy-tail holding times are unit-mean
// and carry the configured tail index: the empirical CCDF decays as
// (x_m/x)^alpha, estimated from two tail points.
func TestParetoHolding(t *testing.T) {
	spec, err := ParseHolding("pareto:alpha=1.5")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	d := spec.NewDist()
	const n = 400000
	xm := (1.5 - 1) / 1.5
	samples := make([]float64, n)
	var sum float64
	for i := range samples {
		x := d.Sample(rng)
		if x < xm-1e-12 {
			t.Fatalf("pareto sample %g below scale x_m=%g", x, xm)
		}
		samples[i] = x
		sum += x
	}
	// Infinite-variance mean converges slowly; the seeded run is still
	// deterministic, so a loose band is a real check, not flake control.
	if mean := sum / n; math.Abs(mean-1) > 0.1 {
		t.Errorf("pareto mean = %.4f, want 1 ± 0.1", mean)
	}
	tail := func(x float64) float64 {
		c := 0
		for _, s := range samples {
			if s > x {
				c++
			}
		}
		return float64(c) / n
	}
	t1, t4 := tail(1), tail(4)
	alphaHat := math.Log(t1/t4) / math.Log(4)
	if math.Abs(alphaHat-1.5) > 0.1 {
		t.Errorf("pareto tail index = %.3f (CCDF %.4f@1, %.5f@4), want 1.5 ± 0.1", alphaHat, t1, t4)
	}
}

// TestDiurnalModulation checks the sinusoidal rate: unit mean over
// whole periods, with the rising half-cycle receiving several times the
// arrivals of the falling half.
func TestDiurnalModulation(t *testing.T) {
	spec, err := ParseArrival("diurnal:amp=0.8,period=50")
	if err != nil {
		t.Fatal(err)
	}
	gaps := sampleGaps(spec, 4, 200000)
	mean, _ := meanCV(gaps)
	if math.Abs(mean-1) > 0.03 {
		t.Errorf("diurnal mean gap = %.4f, want 1 ± 0.03", mean)
	}
	tNow, peak, trough := 0.0, 0, 0
	for _, g := range gaps {
		tNow += g
		if phase := math.Mod(tNow, 50); phase < 25 {
			peak++
		} else {
			trough++
		}
	}
	if ratio := float64(peak) / float64(trough); ratio < 2 {
		t.Errorf("diurnal peak/trough half-cycle arrivals = %.2f, want >= 2 at amp=0.8", ratio)
	}
}

// TestProcessDeterminism: the same spec and seed must reproduce the
// exact gap sequence — the property the engine's byte-identical stream
// guarantee rests on.
func TestProcessDeterminism(t *testing.T) {
	for _, s := range []string{"poisson", "mmpp:burst=8,duty=0.2,dwell=3", "diurnal:amp=0.5,period=20"} {
		spec, err := ParseArrival(s)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sampleGaps(spec, 99, 1000), sampleGaps(spec, 99, 1000)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: gap %d differs across identical seeds: %g vs %g", s, i, a[i], b[i])
			}
		}
	}
}

// TestSpecRoundTrips: parse → String → parse is the identity, so sweep
// artifacts record replayable spec strings.
func TestSpecRoundTrips(t *testing.T) {
	for _, s := range []string{"poisson", "mmpp:burst=4,duty=0.2,dwell=2", "diurnal:amp=0.5,period=10"} {
		spec, err := ParseArrival(s)
		if err != nil {
			t.Fatalf("ParseArrival(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseArrival(%q).String() = %q", s, got)
		}
		if _, err := ParseArrival(spec.String()); err != nil {
			t.Errorf("round-trip %q: %v", s, err)
		}
	}
	for _, s := range []string{"exp", "pareto:alpha=2"} {
		spec, err := ParseHolding(s)
		if err != nil {
			t.Fatalf("ParseHolding(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("ParseHolding(%q).String() = %q", s, got)
		}
	}
	for _, s := range []string{"geometric:p=0.3", "zipf:s=2", "uniform"} {
		d, err := ParseFanout(s)
		if err != nil {
			t.Fatalf("ParseFanout(%q): %v", s, err)
		}
		if got := FormatFanout(d); got != s {
			t.Errorf("FormatFanout(ParseFanout(%q)) = %q", s, got)
		}
	}
	// Defaults format to their explicit replayable forms.
	if d, err := ParseFanout("geometric"); err != nil || FormatFanout(d) != "geometric:p=0.5" {
		t.Errorf("default geometric formats as %q, %v", FormatFanout(d), err)
	}
}

func TestSpecParseErrors(t *testing.T) {
	for _, s := range []string{"nope", "poisson:x=1", "mmpp:burst=0.5", "mmpp:q=1", "diurnal:amp=2"} {
		if _, err := ParseArrival(s); err == nil {
			t.Errorf("ParseArrival(%q) accepted", s)
		}
	}
	for _, s := range []string{"weibull", "pareto:alpha=1", "exp:x=1"} {
		if _, err := ParseHolding(s); err == nil {
			t.Errorf("ParseHolding(%q) accepted", s)
		}
	}
	for _, s := range []string{"nope", "geometric:p=1.5", "zipf:s=1", "uniform:x=1", "geometric:q=0.5"} {
		if _, err := ParseFanout(s); err == nil {
			t.Errorf("ParseFanout(%q) accepted", s)
		}
	}
}

func TestWilsonInterval(t *testing.T) {
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("empty interval = [%g, %g], want [0, 1]", lo, hi)
	}
	// Zero observed blocks still leaves a nonzero upper bound — the
	// "how sure are we it is really zero" number the sweep reports.
	lo, hi := WilsonInterval(0, 1000, 1.96)
	if lo != 0 {
		t.Errorf("0/1000 lo = %g, want 0", lo)
	}
	if hi <= 0 || hi > 0.005 {
		t.Errorf("0/1000 hi = %g, want (0, 0.005]", hi)
	}
	// More trials tighten it.
	_, hi10k := WilsonInterval(0, 10000, 1.96)
	if hi10k >= hi {
		t.Errorf("0/10000 hi = %g not tighter than 0/1000 hi = %g", hi10k, hi)
	}
	// A balanced proportion is centered and contained.
	lo, hi = WilsonInterval(500, 1000, 1.96)
	if !(lo < 0.5 && 0.5 < hi) {
		t.Errorf("500/1000 interval [%g, %g] does not cover 0.5", lo, hi)
	}
	if hi-lo > 0.07 {
		t.Errorf("500/1000 interval width %g too wide", hi-lo)
	}
}

func TestParseServerTiming(t *testing.T) {
	sums, counts := map[string]float64{}, map[string]int{}
	ParseServerTiming("route;dur=1.5, admit;dur=0.25", sums, counts)
	ParseServerTiming("route;dur=0.5, malformed, x;nope", sums, counts)
	if sums["route"] != 2.0 || counts["route"] != 2 {
		t.Errorf("route = %g over %d samples, want 2.0 over 2", sums["route"], counts["route"])
	}
	if sums["admit"] != 0.25 || counts["admit"] != 1 {
		t.Errorf("admit = %g over %d samples, want 0.25 over 1", sums["admit"], counts["admit"])
	}
	if len(sums) != 2 {
		t.Errorf("unexpected phases parsed: %v", sums)
	}
}
