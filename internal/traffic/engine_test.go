// Engine tests run against a real in-process switchd over HTTP — the
// same serving loop wdmload drives — so blocking counts, churn
// semantics, and the determinism guarantee are asserted end to end.
// They live in package traffic_test because switchd itself imports
// traffic (the -attack wrapper).
package traffic_test

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/multistage"
	"repro/internal/switchd"
	"repro/internal/switchd/client"
	"repro/internal/traffic"
	"repro/internal/wdm"
)

// newTestServer serves the repo's standard small fabric (MSW N=16 k=2
// r=4); m = 0 means the Theorem 1 sufficient bound.
func newTestServer(t *testing.T, m, x, replicas int) (*switchd.Controller, *httptest.Server) {
	t.Helper()
	ctl, err := switchd.New(switchd.Config{
		Fabric: multistage.Params{
			N: 16, K: 2, R: 4, M: m, X: x,
			Model:        wdm.MSW,
			Construction: multistage.MSWDominant,
			Lite:         true,
		},
		Replicas: replicas,
		Shards:   4,
		// Below-bound runs block on purpose; keep warnings quiet.
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatalf("switchd.New: %v", err)
	}
	srv := httptest.NewServer(ctl.Handler())
	t.Cleanup(srv.Close)
	return ctl, srv
}

// TestErlangModeAtBound: the full dynamic workload — Poisson arrivals,
// exponential holding, churn growing and shrinking live sessions — at
// the sufficient bound must never block, and the engine must drain
// every session it admitted.
func TestErlangModeAtBound(t *testing.T) {
	ctl, srv := newTestServer(t, 0, 0, 1)
	eng, err := traffic.NewEngine(traffic.Config{
		Client:           client.New(srv.URL, client.WithHTTPClient(srv.Client())),
		Seed:             7,
		Arrivals:         1200,
		WorkersPerFabric: 2,
		MaxFanout:        4,
		Erlangs:          4,
		Churn:            traffic.ChurnConfig{Rate: 0.3},
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := rep.Stats
	if s.Connects+s.Unoffered != 1200 {
		t.Errorf("connects %d + unoffered %d != 1200 arrivals", s.Connects, s.Unoffered)
	}
	if s.BlockedTotal() != 0 {
		t.Errorf("blocked = %d (connects %d, branches %d) at the bound, want 0", s.BlockedTotal(), s.Blocked, s.BranchBlocked)
	}
	if s.Routed == 0 || s.Branches == 0 || s.Shrinks == 0 {
		t.Errorf("churn inactive: routed=%d branches=%d shrinks=%d, want all > 0", s.Routed, s.Branches, s.Shrinks)
	}
	// Every admitted session (connects and shrink re-admits) is torn
	// down exactly once; nothing lost without chaos.
	if s.Disconnects != s.Routed || s.Lost != 0 {
		t.Errorf("disconnects=%d lost=%d, want %d and 0", s.Disconnects, s.Lost, s.Routed)
	}
	if live := ctl.ActiveSessions(); live != 0 {
		t.Errorf("%d sessions leaked on the server after drain", live)
	}
	if offered, routed, blocked := eng.Progress().Counters(); offered == 0 || routed == 0 || blocked != 0 {
		t.Errorf("progress counters offered=%d routed=%d blocked=%d", offered, routed, blocked)
	}
}

// TestMaxRateModeAtBound covers the legacy -attack path through the
// same engine: TargetLive-paced closed loop, still zero blocking at
// the bound.
func TestMaxRateModeAtBound(t *testing.T) {
	ctl, srv := newTestServer(t, 0, 0, 1)
	eng, err := traffic.NewEngine(traffic.Config{
		Client:           client.New(srv.URL, client.WithHTTPClient(srv.Client())),
		Seed:             11,
		Arrivals:         500,
		WorkersPerFabric: 2,
		MaxFanout:        4,
		TargetLive:       4,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s := rep.Stats
	if s.Blocked != 0 {
		t.Errorf("blocked = %d at the bound, want 0", s.Blocked)
	}
	if s.Routed == 0 || s.Disconnects != s.Routed {
		t.Errorf("routed=%d disconnects=%d, want equal and > 0", s.Routed, s.Disconnects)
	}
	if live := ctl.ActiveSessions(); live != 0 {
		t.Errorf("%d sessions leaked after max-rate run", live)
	}
}

// TestBlockingBelowBound is the control: the same dynamic traffic
// against a starved middle stage must produce genuine blocks — the
// zero at the bound is falsifiable.
func TestBlockingBelowBound(t *testing.T) {
	_, srv := newTestServer(t, 3, 1, 1)
	eng, err := traffic.NewEngine(traffic.Config{
		Client:           client.New(srv.URL, client.WithHTTPClient(srv.Client())),
		Seed:             7,
		Arrivals:         2000,
		WorkersPerFabric: 2,
		MaxFanout:        4,
		Erlangs:          8,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Stats.BlockedTotal() == 0 {
		t.Fatalf("no blocking below the bound (stats: %+v)", rep.Stats)
	}
	if p := rep.Stats.PBlock(); p <= 0 || p >= 1 {
		t.Errorf("P_block = %g, want in (0, 1)", p)
	}
}

// TestDeterministicStream: two engines with identical configs and
// seeds, against two fresh identical servers, must emit byte-identical
// request streams — with every stochastic feature enabled at once
// (MMPP arrivals, Pareto holding, Zipf fanout, hotspot skew, churn).
func TestDeterministicStream(t *testing.T) {
	arrival, err := traffic.ParseArrival("mmpp:burst=6,duty=0.2,dwell=3")
	if err != nil {
		t.Fatal(err)
	}
	holding, err := traffic.ParseHolding("pareto:alpha=1.8")
	if err != nil {
		t.Fatal(err)
	}
	fanout, err := traffic.ParseFanout("zipf:s=1.5")
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		_, srv := newTestServer(t, 0, 0, 1)
		var buf bytes.Buffer
		eng, err := traffic.NewEngine(traffic.Config{
			Client:           client.New(srv.URL, client.WithHTTPClient(srv.Client())),
			Seed:             42,
			Arrivals:         400,
			WorkersPerFabric: 2,
			MaxFanout:        4,
			Erlangs:          3,
			Arrival:          arrival,
			Holding:          holding,
			Fanout:           fanout,
			Hotspot:          traffic.HotspotConfig{Fraction: 0.3, Ports: 2},
			Churn:            traffic.ChurnConfig{Rate: 0.5},
			StreamLog:        &buf,
		})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return buf.String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty request stream")
	}
	if a != b {
		t.Fatalf("same seed produced different streams:\n--- run 1 (%d bytes)\n%.400s\n--- run 2 (%d bytes)\n%.400s",
			len(a), a, len(b), b)
	}
	if !strings.Contains(a, "# worker 1\n") {
		t.Errorf("stream missing per-worker sections:\n%.200s", a)
	}
}

// TestSweepAtBound runs a short three-point sweep — what `make
// curves-demo` does in CI — and checks the artifact: metadata filled
// from the live target, P_block pinned at zero with honest Wilson
// upper bounds, analytic overlays present, and the recorded specs
// replayable.
func TestSweepAtBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-point serving sweep")
	}
	_, srv := newTestServer(t, 0, 0, 1)
	curves, err := traffic.Sweep(context.Background(), traffic.SweepConfig{
		Engine: traffic.Config{
			Client:           client.New(srv.URL, client.WithHTTPClient(srv.Client())),
			Seed:             7,
			Arrivals:         600,
			WorkersPerFabric: 2,
			MaxFanout:        4,
			Churn:            traffic.ChurnConfig{Rate: 0.3},
			Hotspot:          traffic.HotspotConfig{Fraction: 0.2, Ports: 2},
		},
		Points: []float64{1, 2, 4},
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if curves.N != 16 || curves.K != 2 || curves.R != 4 || curves.Backend == "" || !strings.EqualFold(curves.Model, "msw") {
		t.Errorf("metadata not filled from target: %+v", curves)
	}
	if !curves.AtBound() {
		t.Errorf("m=%d bound=%d: AtBound() = false at the default m", curves.M, curves.SufficientM)
	}
	if curves.MaxPBlock() != 0 {
		t.Errorf("MaxPBlock = %g at the bound, want 0", curves.MaxPBlock())
	}
	if len(curves.Points) != 3 {
		t.Fatalf("got %d points, want 3", len(curves.Points))
	}
	for i, pt := range curves.Points {
		if pt.Offered == 0 || pt.Blocked != 0 {
			t.Errorf("point %d: offered=%d blocked=%d", i, pt.Offered, pt.Blocked)
		}
		if pt.WilsonLo != 0 || pt.WilsonHi <= 0 {
			t.Errorf("point %d: Wilson [%g, %g], want [0, >0]", i, pt.WilsonLo, pt.WilsonHi)
		}
		if pt.LeePredicted < 0 || pt.LeePredicted > 1 || pt.ErlangB < 0 || pt.ErlangB > 1 {
			t.Errorf("point %d: overlays lee=%g erlangB=%g outside [0,1]", i, pt.LeePredicted, pt.ErlangB)
		}
		if pt.MeanFanout < 1 {
			t.Errorf("point %d: mean fanout %g < 1", i, pt.MeanFanout)
		}
	}
	// The artifact's spec strings round-trip, so -mode replay can
	// rebuild the exact workload.
	if _, err := traffic.ParseArrival(curves.Arrival); err != nil {
		t.Errorf("recorded arrival %q not replayable: %v", curves.Arrival, err)
	}
	if _, err := traffic.ParseHolding(curves.Holding); err != nil {
		t.Errorf("recorded holding %q not replayable: %v", curves.Holding, err)
	}
	if _, err := traffic.ParseFanout(curves.Fanout); err != nil {
		t.Errorf("recorded fanout %q not replayable: %v", curves.Fanout, err)
	}
	// Churn and hotspot must ride the artifact too — replay rebuilds
	// the engine from the record, and a churned sweep offers more than
	// Arrivals requests per point.
	if curves.Churn.Rate != 0.3 {
		t.Errorf("recorded churn %+v, want rate 0.3", curves.Churn)
	}
	if curves.Hotspot.Fraction != 0.2 || curves.Hotspot.Ports != 2 {
		t.Errorf("recorded hotspot %+v, want {0.2 2}", curves.Hotspot)
	}
}
