// Package traffic is the closed-loop dynamic workload engine of the
// serving plane: pluggable arrival processes (Poisson, bursty MMPP,
// diurnal rate modulation), heavy-tail holding times, multicast fanout
// distributions, hotspot destination skew (after "Multicast Capacity
// of Optical WDM Packet Ring for Hotspot Traffic", arXiv 0804.3215)
// and session-churn dynamics, all driven through the typed
// internal/switchd/client against a live switchd on any fabric
// backend.
//
// Everything is seeded and deterministic: the engine runs on a
// virtual-time event queue per worker (arrivals, departures, churn),
// so the same seed produces a byte-identical request stream regardless
// of wall-clock scheduling, and requests are built from the engine's
// own free-slot bookkeeping via internal/workload's admissibility
// machinery — every rejection the server returns is a genuine blocking
// event, never an inadmissible request.
//
// On top of the engine, Sweep drives offered load in Erlang steps and
// records per-load-point blocking probability with Wilson confidence
// intervals plus the server's own phase attribution — the measured
// P_block-vs-load curve whose shape the paper's Theorems 1 and 2 pin
// at zero for m >= bound and release below it.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalProcess yields successive interarrival gaps in virtual-time
// units. Every process here is normalized to unit mean rate (one
// arrival per unit time in the long run); the engine divides gaps by
// the offered arrival rate λ, so offered Erlangs = λ × E[holding]
// regardless of the process shape. Instances are stateful (MMPP phase,
// diurnal clock) and must not be shared across workers.
type ArrivalProcess interface {
	Next(rng *rand.Rand) float64
	Name() string
}

// HoldingDist samples session holding times in virtual-time units,
// normalized to unit mean, so the Erlang arithmetic stays independent
// of the tail shape.
type HoldingDist interface {
	Sample(rng *rand.Rand) float64
	Name() string
}

// poisson is the memoryless baseline: exponential interarrivals.
type poisson struct{}

func (poisson) Next(rng *rand.Rand) float64 { return rng.ExpFloat64() }
func (poisson) Name() string                { return "poisson" }

// mmpp is a two-state Markov-modulated Poisson process: the arrival
// rate switches between a high (burst) and a low (quiet) level with
// exponentially distributed sojourns. Rates are normalized so the
// long-run mean rate is 1: with duty d the fraction of time spent
// bursting and burst ratio b = high/low,
//
//	low = 1 / (1 - d + d*b),  high = b * low.
type mmpp struct {
	burst     float64 // high/low rate ratio
	duty      float64 // long-run fraction of time in the high state
	dwellHigh float64 // mean sojourn in the high state (time units)

	inHigh    bool
	dwellLeft float64 // remaining sojourn in the current state
	started   bool
}

func (m *mmpp) rates() (low, high float64) {
	low = 1 / (1 - m.duty + m.duty*m.burst)
	return low, m.burst * low
}

func (m *mmpp) meanDwell() float64 {
	if m.inHigh {
		return m.dwellHigh
	}
	// Sojourn times must satisfy duty = dwellHigh/(dwellHigh+dwellLow).
	return m.dwellHigh * (1 - m.duty) / m.duty
}

func (m *mmpp) Next(rng *rand.Rand) float64 {
	if !m.started {
		m.started = true
		m.inHigh = rng.Float64() < m.duty
		m.dwellLeft = rng.ExpFloat64() * m.meanDwell()
	}
	low, high := m.rates()
	var elapsed float64
	for {
		rate := low
		if m.inHigh {
			rate = high
		}
		gap := rng.ExpFloat64() / rate
		if gap < m.dwellLeft {
			m.dwellLeft -= gap
			return elapsed + gap
		}
		// The state flips before the next arrival lands; restart the
		// memoryless clock in the new state (valid by the exponential's
		// memorylessness).
		elapsed += m.dwellLeft
		m.inHigh = !m.inHigh
		m.dwellLeft = rng.ExpFloat64() * m.meanDwell()
	}
}

func (m *mmpp) Name() string {
	return fmt.Sprintf("mmpp(burst=%g,duty=%g,dwell=%g)", m.burst, m.duty, m.dwellHigh)
}

// diurnal is a non-homogeneous Poisson process with a sinusoidal rate
// λ(t) = 1 + amp·sin(2πt/period), sampled by thinning against the peak
// rate. Over a full period the mean rate is 1. It models the
// day/night load swing of a long steady run compressed into `period`
// holding times.
type diurnal struct {
	amp    float64
	period float64
	t      float64 // virtual clock of this process
}

func (d *diurnal) Next(rng *rand.Rand) float64 {
	peak := 1 + d.amp
	start := d.t
	for {
		d.t += rng.ExpFloat64() / peak
		rate := 1 + d.amp*math.Sin(2*math.Pi*d.t/d.period)
		if rng.Float64()*peak < rate {
			return d.t - start
		}
	}
}

func (d *diurnal) Name() string {
	return fmt.Sprintf("diurnal(amp=%g,period=%g)", d.amp, d.period)
}

// expHolding is the memoryless holding-time baseline (mean 1).
type expHolding struct{}

func (expHolding) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() }
func (expHolding) Name() string                  { return "exp" }

// paretoHolding is a heavy-tail holding-time distribution with tail
// index alpha > 1, scaled to unit mean: x_m = (alpha-1)/alpha,
// X = x_m / U^(1/alpha). Long sessions dominate the carried load far
// beyond what the exponential predicts — the elephant-session regime.
type paretoHolding struct {
	alpha float64
}

func (p paretoHolding) Sample(rng *rand.Rand) float64 {
	xm := (p.alpha - 1) / p.alpha
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/p.alpha)
}

func (p paretoHolding) Name() string { return fmt.Sprintf("pareto(alpha=%g)", p.alpha) }

// ArrivalSpec is a parsed, serializable arrival-process description.
// The spec, not the process, goes into sweep artifacts: a fresh
// stateful process is built per worker per load point.
type ArrivalSpec struct {
	kind string
	// mmpp
	burst, duty, dwell float64
	// diurnal
	amp, period float64
}

// ParseArrival parses an arrival-process spec:
//
//	poisson
//	mmpp[:burst=10,duty=0.1,dwell=5]
//	diurnal[:amp=0.8,period=100]
//
// Parameters are optional and default to the bracketed values; dwell
// and period are in units of the mean holding time.
func ParseArrival(s string) (ArrivalSpec, error) {
	kind, params, err := splitSpec(s)
	if err != nil {
		return ArrivalSpec{}, err
	}
	switch kind {
	case "poisson", "":
		if len(params) > 0 {
			return ArrivalSpec{}, fmt.Errorf("traffic: poisson takes no parameters")
		}
		return ArrivalSpec{kind: "poisson"}, nil
	case "mmpp":
		spec := ArrivalSpec{kind: "mmpp", burst: 10, duty: 0.1, dwell: 5}
		for k, v := range params {
			switch k {
			case "burst":
				spec.burst = v
			case "duty":
				spec.duty = v
			case "dwell":
				spec.dwell = v
			default:
				return ArrivalSpec{}, fmt.Errorf("traffic: mmpp: unknown parameter %q", k)
			}
		}
		if spec.burst <= 1 || spec.duty <= 0 || spec.duty >= 1 || spec.dwell <= 0 {
			return ArrivalSpec{}, fmt.Errorf("traffic: mmpp needs burst > 1, 0 < duty < 1, dwell > 0")
		}
		return spec, nil
	case "diurnal":
		spec := ArrivalSpec{kind: "diurnal", amp: 0.8, period: 100}
		for k, v := range params {
			switch k {
			case "amp":
				spec.amp = v
			case "period":
				spec.period = v
			default:
				return ArrivalSpec{}, fmt.Errorf("traffic: diurnal: unknown parameter %q", k)
			}
		}
		if spec.amp < 0 || spec.amp > 1 || spec.period <= 0 {
			return ArrivalSpec{}, fmt.Errorf("traffic: diurnal needs 0 <= amp <= 1, period > 0")
		}
		return spec, nil
	default:
		return ArrivalSpec{}, fmt.Errorf("traffic: unknown arrival process %q (want poisson, mmpp, diurnal)", kind)
	}
}

// NewProcess builds a fresh stateful process instance from the spec.
func (s ArrivalSpec) NewProcess() ArrivalProcess {
	switch s.kind {
	case "mmpp":
		return &mmpp{burst: s.burst, duty: s.duty, dwellHigh: s.dwell}
	case "diurnal":
		return &diurnal{amp: s.amp, period: s.period}
	default:
		return poisson{}
	}
}

func (s ArrivalSpec) String() string {
	switch s.kind {
	case "mmpp":
		return fmt.Sprintf("mmpp:burst=%g,duty=%g,dwell=%g", s.burst, s.duty, s.dwell)
	case "diurnal":
		return fmt.Sprintf("diurnal:amp=%g,period=%g", s.amp, s.period)
	default:
		return "poisson"
	}
}

// HoldingSpec is a parsed, serializable holding-time description.
type HoldingSpec struct {
	kind  string
	alpha float64
}

// ParseHolding parses a holding-time spec: "exp" or
// "pareto[:alpha=1.5]" (alpha > 1 so the mean exists).
func ParseHolding(s string) (HoldingSpec, error) {
	kind, params, err := splitSpec(s)
	if err != nil {
		return HoldingSpec{}, err
	}
	switch kind {
	case "exp", "":
		if len(params) > 0 {
			return HoldingSpec{}, fmt.Errorf("traffic: exp takes no parameters")
		}
		return HoldingSpec{kind: "exp"}, nil
	case "pareto":
		spec := HoldingSpec{kind: "pareto", alpha: 1.5}
		for k, v := range params {
			if k != "alpha" {
				return HoldingSpec{}, fmt.Errorf("traffic: pareto: unknown parameter %q", k)
			}
			spec.alpha = v
		}
		if spec.alpha <= 1 {
			return HoldingSpec{}, fmt.Errorf("traffic: pareto alpha=%g must exceed 1 (finite mean)", spec.alpha)
		}
		return spec, nil
	default:
		return HoldingSpec{}, fmt.Errorf("traffic: unknown holding distribution %q (want exp, pareto)", kind)
	}
}

// NewDist builds the holding distribution the spec describes.
func (s HoldingSpec) NewDist() HoldingDist {
	if s.kind == "pareto" {
		return paretoHolding{alpha: s.alpha}
	}
	return expHolding{}
}

func (s HoldingSpec) String() string {
	if s.kind == "pareto" {
		return fmt.Sprintf("pareto:alpha=%g", s.alpha)
	}
	return "exp"
}

// splitSpec splits "kind:key=val,key=val" into its parts.
func splitSpec(s string) (kind string, params map[string]float64, err error) {
	kind, rest, has := strings.Cut(strings.TrimSpace(s), ":")
	kind = strings.TrimSpace(kind)
	params = map[string]float64{}
	if !has {
		return kind, params, nil
	}
	for _, part := range strings.Split(rest, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, vs, ok := strings.Cut(part, "=")
		if !ok {
			return "", nil, fmt.Errorf("traffic: spec parameter %q is not key=value", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vs), 64)
		if err != nil {
			return "", nil, fmt.Errorf("traffic: spec parameter %q: %v", part, err)
		}
		params[strings.TrimSpace(k)] = v
	}
	return kind, params, nil
}
