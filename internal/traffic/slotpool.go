package traffic

import (
	"fmt"

	"repro/internal/wdm"
)

// SlotPool is a worker-local free-slot pool: the loadgen twin of the
// simulator's slot bookkeeping, over a port subset. Take and Put are
// O(1) (swap-delete against a position index) and panic on double
// take/free — a pool inconsistency means the closed loop lost track of
// a session, which would silently turn admissible requests into
// inadmissible ones.
type SlotPool struct {
	free []wdm.PortWave
	pos  map[wdm.PortWave]int
}

// NewSlotPool returns a pool holding every wavelength slot of the given
// ports, all free.
func NewSlotPool(ports []int, k int) *SlotPool {
	s := &SlotPool{pos: make(map[wdm.PortWave]int, len(ports)*k)}
	for _, p := range ports {
		for w := 0; w < k; w++ {
			s.Put(wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)})
		}
	}
	return s
}

// Slots returns the free slots (the pool's own slice; treat as
// read-only and invalidated by Take/Put).
func (s *SlotPool) Slots() []wdm.PortWave { return s.free }

// Take marks a free slot busy.
func (s *SlotPool) Take(slot wdm.PortWave) {
	i, ok := s.pos[slot]
	if !ok {
		panic(fmt.Sprintf("traffic: taking slot %v twice", slot))
	}
	last := len(s.free) - 1
	s.free[i] = s.free[last]
	s.pos[s.free[i]] = i
	s.free = s.free[:last]
	delete(s.pos, slot)
}

// Put marks a busy slot free.
func (s *SlotPool) Put(slot wdm.PortWave) {
	if _, dup := s.pos[slot]; dup {
		panic(fmt.Sprintf("traffic: freeing slot %v twice", slot))
	}
	s.pos[slot] = len(s.free)
	s.free = append(s.free, slot)
}
