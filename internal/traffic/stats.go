package traffic

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// TraceRef is one connect the client can follow server-side by trace
// id: the engine sends a W3C traceparent header with every connect, so
// the id here joins against /v1/debug/spans, the /metrics exemplars,
// and /v1/debug/blocking on the target.
type TraceRef struct {
	TraceID string `json:"trace_id"`
	// Outcome is "ok" or the api error code the connect drew.
	Outcome string `json:"outcome"`
	Micros  int64  `json:"micros"` // client-observed round trip
	Conn    string `json:"connection"`
}

// ClientLatency summarizes the client-observed connect latency (full
// HTTP round trip, as a client would experience it — not the server's
// in-fabric routing time).
type ClientLatency struct {
	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`
}

// LatencyQuantiles computes the p50/p95/p99 summary of a latency
// sample set (zero value for an empty set). The input is sorted in
// place.
func LatencyQuantiles(lat []time.Duration) ClientLatency {
	if len(lat) == 0 {
		return ClientLatency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds()) / 1e3
	}
	return ClientLatency{P50Micros: q(0.50), P95Micros: q(0.95), P99Micros: q(0.99)}
}

// Stats is one worker's (or a whole run's, after merging) account of
// everything the target answered. Offered() is the denominator of
// blocking probability: every admissible request presented to a
// fabric — connects, branch grows, and shrink re-admissions —
// excluding admission rejections (never offered to a fabric).
type Stats struct {
	Connects    int `json:"connects"`
	Routed      int `json:"routed"`
	Blocked     int `json:"blocked"`
	Rejected    int `json:"rejected"` // admission_full answers
	Disconnects int `json:"disconnects"`

	// Branches/BranchBlocked count AddBranch grow attempts; Shrinks
	// partial teardowns (disconnect + re-admit the remaining leaves —
	// the wire API has no leaf removal, so churn re-establishes).
	Branches      int `json:"branches,omitempty"`
	BranchBlocked int `json:"branch_blocked,omitempty"`
	Shrinks       int `json:"shrinks,omitempty"`

	// Unoffered counts arrivals the engine could not build an
	// admissible request for (its own free slots were exhausted at that
	// load) — a client-side clamp, not a server block.
	Unoffered int `json:"unoffered,omitempty"`
	// Lost counts sessions the server dropped under chaos (disconnect
	// answered not_found).
	Lost int `json:"lost,omitempty"`

	// TotalFanout sums offered connect fanouts (mean = TotalFanout /
	// Connects).
	TotalFanout int `json:"total_fanout,omitempty"`

	// Outcomes tallies every connect-class request by result: "ok" or
	// the stable api error code.
	Outcomes map[string]int `json:"outcomes,omitempty"`

	// Latencies holds per-connect round trips; Traces one ref per
	// connect by the trace id sent.
	Latencies []time.Duration `json:"-"`
	Traces    []TraceRef      `json:"-"`

	// PhaseMs/PhaseN accumulate the server's Server-Timing attribution:
	// per-phase millisecond sums and sample counts.
	PhaseMs map[string]float64 `json:"-"`
	PhaseN  map[string]int     `json:"-"`

	Err error `json:"-"`
}

func newStats() Stats {
	return Stats{
		Outcomes: map[string]int{},
		PhaseMs:  map[string]float64{},
		PhaseN:   map[string]int{},
	}
}

// Offered returns the blocking-probability denominator.
func (s *Stats) Offered() int { return s.Connects + s.Branches + s.Shrinks }

// BlockedTotal returns the blocking-probability numerator (blocked
// connects and shrink re-admissions plus blocked branch grows).
func (s *Stats) BlockedTotal() int { return s.Blocked + s.BranchBlocked }

// PBlock returns the measured blocking probability over every offered
// request (0 for an empty run).
func (s *Stats) PBlock() float64 {
	if s.Offered() == 0 {
		return 0
	}
	return float64(s.BlockedTotal()) / float64(s.Offered())
}

// merge folds src into s (first error wins).
func (s *Stats) merge(src Stats) {
	s.Connects += src.Connects
	s.Routed += src.Routed
	s.Blocked += src.Blocked
	s.Rejected += src.Rejected
	s.Disconnects += src.Disconnects
	s.Branches += src.Branches
	s.BranchBlocked += src.BranchBlocked
	s.Shrinks += src.Shrinks
	s.Unoffered += src.Unoffered
	s.Lost += src.Lost
	s.TotalFanout += src.TotalFanout
	for code, n := range src.Outcomes {
		s.Outcomes[code] += n
	}
	for p, ms := range src.PhaseMs {
		s.PhaseMs[p] += ms
		s.PhaseN[p] += src.PhaseN[p]
	}
	s.Latencies = append(s.Latencies, src.Latencies...)
	s.Traces = append(s.Traces, src.Traces...)
	if s.Err == nil {
		s.Err = src.Err
	}
}

// PhaseMeans converts the Server-Timing accumulation into mean
// microseconds per phase (nil when the server reported none).
func (s *Stats) PhaseMeans() map[string]float64 {
	if len(s.PhaseMs) == 0 {
		return nil
	}
	out := make(map[string]float64, len(s.PhaseMs))
	for p, ms := range s.PhaseMs {
		if n := s.PhaseN[p]; n > 0 {
			out[p] = ms * 1e3 / float64(n)
		}
	}
	return out
}

// ParseServerTiming folds one Server-Timing header (switchd emits
// comma-separated `name;dur=<ms>` entries) into per-phase millisecond
// sums and sample counts; unparseable entries are skipped.
func ParseServerTiming(h string, sumMs map[string]float64, counts map[string]int) {
	for _, part := range strings.Split(h, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(part), ";")
		if !ok || name == "" {
			continue
		}
		durStr, ok := strings.CutPrefix(strings.TrimSpace(rest), "dur=")
		if !ok {
			continue
		}
		ms, err := strconv.ParseFloat(durStr, 64)
		if err != nil {
			continue
		}
		sumMs[name] += ms
		counts[name]++
	}
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion with `successes` out of `n` trials at confidence
// z (1.96 for 95%). It behaves sanely at p = 0 and p = 1 where the
// normal approximation collapses — exactly the regime blocking curves
// live in near the nonblocking bound.
func WilsonInterval(successes, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
