package traffic

import (
	"fmt"

	"repro/internal/workload"
)

// ParseFanout parses a fanout-distribution spec in the same bracketed
// syntax as the arrival and holding specs:
//
//	geometric[:p=0.5]
//	zipf[:s=1.3]
//	uniform
//
// returning the workload.FanoutDist the engine (and anything else
// using workload.Generator.SetFanout) plugs in.
func ParseFanout(s string) (workload.FanoutDist, error) {
	kind, params, err := splitSpec(s)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "geometric", "":
		d := workload.Geometric{}
		for k, v := range params {
			if k != "p" {
				return nil, fmt.Errorf("traffic: geometric: unknown parameter %q", k)
			}
			d.P = v
		}
		if len(params) > 0 && (d.P <= 0 || d.P >= 1) {
			return nil, fmt.Errorf("traffic: geometric p=%g must be in (0, 1)", d.P)
		}
		return d, nil
	case "zipf":
		d := workload.TruncZipf{}
		for k, v := range params {
			if k != "s" {
				return nil, fmt.Errorf("traffic: zipf: unknown parameter %q", k)
			}
			d.S = v
		}
		if len(params) > 0 && d.S <= 1 {
			return nil, fmt.Errorf("traffic: zipf s=%g must exceed 1", d.S)
		}
		return d, nil
	case "uniform":
		if len(params) > 0 {
			return nil, fmt.Errorf("traffic: uniform takes no parameters")
		}
		return workload.UniformFanout{}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown fanout distribution %q (want geometric, zipf, uniform)", kind)
	}
}

// FormatFanout renders a distribution back into ParseFanout's spec
// syntax, so sweep artifacts record a replayable fanout string.
func FormatFanout(d workload.FanoutDist) string {
	switch v := d.(type) {
	case workload.Geometric:
		if v.P <= 0 || v.P >= 1 {
			return "geometric:p=0.5"
		}
		return fmt.Sprintf("geometric:p=%g", v.P)
	case workload.TruncZipf:
		if v.S <= 1 {
			return "zipf:s=1.3"
		}
		return fmt.Sprintf("zipf:s=%g", v.S)
	case workload.UniformFanout:
		return "uniform"
	default:
		return d.String()
	}
}
