package traffic

import (
	"container/heap"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs/span"
	"repro/internal/switchd/api"
	"repro/internal/switchd/client"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// HotspotConfig skews destination choice toward a hot port set, after
// the hotspot-traffic model of arXiv 0804.3215: a Fraction of requests
// draws its destinations only from the first Ports ports of the
// worker's slice whenever any of their slots are free; the rest of the
// traffic stays uniform.
type HotspotConfig struct {
	// Fraction of requests aimed at the hotspot (0 disables the skew).
	Fraction float64 `json:"fraction,omitempty"`
	// Ports is the hot-set size (default 1 when Fraction > 0).
	Ports int `json:"ports,omitempty"`
}

// ChurnConfig adds session-lifetime dynamics: while a session holds,
// churn events fire at Rate per unit holding time; each grows the
// session by one AddBranch leaf with probability GrowBias, otherwise
// partially tears it down. The wire API has no leaf removal, so a
// shrink disconnects and re-admits the remaining leaves — the re-admit
// is admissible by construction (its slots were just freed), so a
// refusal is a genuine block.
type ChurnConfig struct {
	Rate     float64 `json:"rate,omitempty"`
	GrowBias float64 `json:"grow_bias,omitempty"`
}

// Config parameterizes one engine run. Erlangs > 0 selects the
// virtual-time arrival-process mode; otherwise the engine runs the
// max-rate closed loop (the legacy -attack behavior) paced by
// TargetLive.
type Config struct {
	// Client is the typed /v1 client aimed at the target server.
	Client *client.Client
	// Seed drives every per-worker PRNG.
	Seed int64
	// Arrivals is the total connect-arrival budget across all workers
	// (default 10000).
	Arrivals int
	// WorkersPerFabric partitions each fabric replica's port space into
	// this many disjoint closed loops (default 1 in Erlang mode, 2 in
	// max-rate mode).
	WorkersPerFabric int
	// MaxFanout bounds each request's fanout; 0 means up to the
	// worker's port-slice size.
	MaxFanout int
	// Fanout is the multicast fanout distribution (default
	// workload.Geometric{} — the historical p=0.5 stream).
	Fanout workload.FanoutDist
	// Hotspot skews destination choice (zero value = uniform).
	Hotspot HotspotConfig

	// Erlangs is the offered load per fabric replica: mean concurrent
	// sessions = arrival rate × mean holding time. > 0 selects
	// virtual-time mode.
	Erlangs float64
	// Arrival builds each worker's arrival process (default poisson).
	Arrival ArrivalSpec
	// Holding is the session holding-time distribution (default exp).
	Holding HoldingSpec
	// Churn adds AddBranch growth / partial-teardown dynamics.
	Churn ChurnConfig
	// MaxLive clamps each worker's concurrent sessions in Erlang mode:
	// arrivals landing at the clamp are counted Unoffered (a
	// client-side clamp, never presented to the fabric). 0 = unlimited.
	// Used to hold a sweep inside a backend's concurrency guarantee —
	// the ring mesh is nonblocking only for k concurrent sessions.
	MaxLive int
	// TimeScale maps one virtual-time unit (one mean holding time) to a
	// wall-clock duration; 0 runs as fast as the target answers. Used
	// by wdmload -steady so the target's gauges and sparklines move at
	// watchable speed.
	TimeScale time.Duration

	// TargetLive is the max-rate mode's per-worker live-session
	// high-water mark: the worker disconnects its oldest session before
	// connecting past it (default 8) — the offered-load knob of the
	// legacy -attack.
	TargetLive int

	// StreamLog, when set, receives the run's request stream: one line
	// per request event in virtual-time order, concatenated per worker
	// in worker order after the run. The stream is a pure function of
	// the config and seed — same seed, byte-identical log.
	StreamLog io.Writer
}

// Progress is the engine's live counters, safe to read concurrently
// with a run (the loadgen self-reporter streams them to the target).
type Progress struct {
	offered atomic.Int64 // every fabric-bound request sent
	routed  atomic.Int64 // requests the fabric routed
	blocked atomic.Int64 // genuine blocking answers
}

// Counters returns the current offered/routed/blocked totals.
func (p *Progress) Counters() (offered, routed, blocked int64) {
	return p.offered.Load(), p.routed.Load(), p.blocked.Load()
}

// Report aggregates one engine run.
type Report struct {
	Workers  int
	Duration time.Duration
	Stats    Stats
	Status   api.Status // the target's shape, as fetched at start
}

// Engine drives one run against one target.
type Engine struct {
	cfg  Config
	prog Progress
}

// NewEngine validates the config, applies defaults, and returns a
// runnable engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("traffic: Config.Client is required")
	}
	if cfg.Arrivals <= 0 {
		cfg.Arrivals = 10000
	}
	if cfg.Fanout == nil {
		cfg.Fanout = workload.Geometric{}
	}
	if cfg.WorkersPerFabric <= 0 {
		if cfg.Erlangs > 0 {
			cfg.WorkersPerFabric = 1
		} else {
			cfg.WorkersPerFabric = 2
		}
	}
	if cfg.Erlangs <= 0 && cfg.TargetLive <= 0 {
		cfg.TargetLive = 8
	}
	if cfg.Hotspot.Fraction < 0 || cfg.Hotspot.Fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %g outside [0, 1]", cfg.Hotspot.Fraction)
	}
	if cfg.Hotspot.Fraction > 0 && cfg.Hotspot.Ports <= 0 {
		cfg.Hotspot.Ports = 1
	}
	if cfg.Churn.Rate < 0 {
		return nil, fmt.Errorf("traffic: churn rate %g is negative", cfg.Churn.Rate)
	}
	if cfg.Churn.Rate > 0 && cfg.Churn.GrowBias == 0 {
		cfg.Churn.GrowBias = 0.5
	}
	return &Engine{cfg: cfg}, nil
}

// Progress exposes the engine's live counters.
func (e *Engine) Progress() *Progress { return &e.prog }

// Run executes the configured workload and returns the merged report.
// Every worker runs its own closed loop over a disjoint slice of one
// fabric replica's port space; the run ends when the arrival budget is
// spent and every live session has been torn down.
func (e *Engine) Run(ctx context.Context) (Report, error) {
	cfg := e.cfg
	status, err := cfg.Client.Status(ctx)
	if err != nil {
		return Report{}, fmt.Errorf("traffic: fetching target status: %w", err)
	}
	model, err := wdm.ParseModel(status.Model)
	if err != nil {
		return Report{}, fmt.Errorf("traffic: %w", err)
	}
	if status.Replicas < 1 || status.N < cfg.WorkersPerFabric {
		return Report{}, fmt.Errorf("traffic: target too small (N=%d replicas=%d)", status.N, status.Replicas)
	}

	workers := status.Replicas * cfg.WorkersPerFabric
	perWorker := cfg.Arrivals / workers
	remainder := cfg.Arrivals % workers

	results := make([]Stats, workers)
	logs := make([]*streamBuffer, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		var lg *streamBuffer
		if cfg.StreamLog != nil {
			lg = &streamBuffer{}
			logs[i] = lg
		}
		go func(i int, lg *streamBuffer) {
			defer wg.Done()
			attempts := perWorker
			if i < remainder {
				attempts++
			}
			w := newWorker(&cfg, status, model, i, lg, &e.prog)
			if cfg.Erlangs > 0 {
				w.runErlang(ctx, attempts)
			} else {
				w.runMaxRate(ctx, attempts)
			}
			results[i] = w.stats
		}(i, lg)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := Report{Workers: workers, Duration: elapsed, Status: status}
	rep.Stats = newStats()
	for _, r := range results {
		rep.Stats.merge(r)
	}
	if cfg.StreamLog != nil {
		for i, lg := range logs {
			if _, err := fmt.Fprintf(cfg.StreamLog, "# worker %d\n", i); err != nil {
				return rep, fmt.Errorf("traffic: writing stream log: %w", err)
			}
			if _, err := cfg.StreamLog.Write(lg.buf); err != nil {
				return rep, fmt.Errorf("traffic: writing stream log: %w", err)
			}
		}
	}
	return rep, rep.Stats.Err
}

// streamBuffer collects one worker's deterministic request stream.
type streamBuffer struct{ buf []byte }

func (b *streamBuffer) printf(format string, args ...any) {
	b.buf = append(b.buf, fmt.Sprintf(format, args...)...)
}

// liveSession is one routed session the engine still holds.
type liveSession struct {
	id   uint64
	conn wdm.Connection
}

// worker owns one disjoint slice of the port space of one fabric
// replica (ports with port % workersPerFabric == its partition), its
// own PRNG, arrival process, and free-slot bookkeeping.
type worker struct {
	cfg    *Config
	cl     *client.Client
	prog   *Progress
	stats  Stats
	log    *streamBuffer
	fabric int

	rng     *rand.Rand
	gen     *workload.Generator
	model   wdm.Model
	ports   []int
	freeSrc *SlotPool
	freeDst *SlotPool
	hot     map[wdm.Port]bool
	hotBuf  []wdm.PortWave
}

func newWorker(cfg *Config, status api.Status, model wdm.Model, id int, lg *streamBuffer, prog *Progress) *worker {
	w := &worker{
		cfg:    cfg,
		cl:     cfg.Client,
		prog:   prog,
		stats:  newStats(),
		log:    lg,
		fabric: id / cfg.WorkersPerFabric,
		rng:    rand.New(rand.NewSource(cfg.Seed + int64(id)*7919 + 1)),
		model:  model,
	}
	part := id % cfg.WorkersPerFabric
	for p := part; p < status.N; p += cfg.WorkersPerFabric {
		w.ports = append(w.ports, p)
	}
	w.freeSrc = NewSlotPool(w.ports, status.K)
	w.freeDst = NewSlotPool(w.ports, status.K)
	w.gen = workload.NewGenerator(cfg.Seed+int64(id)*7919, model, wdm.Dim{N: status.N, K: status.K})
	w.gen.SetFanout(cfg.Fanout)
	if cfg.Hotspot.Fraction > 0 {
		w.hot = make(map[wdm.Port]bool, cfg.Hotspot.Ports)
		for i := 0; i < cfg.Hotspot.Ports && i < len(w.ports); i++ {
			w.hot[wdm.Port(w.ports[i])] = true
		}
	}
	return w
}

func (w *worker) maxFanout() int {
	mf := w.cfg.MaxFanout
	if mf <= 0 || mf > len(w.ports) {
		mf = len(w.ports)
	}
	return mf
}

// destCandidates applies the hotspot skew: a Fraction of requests
// draws destinations only from the hot ports' free slots, falling back
// to the full set when the hotspot is saturated.
func (w *worker) destCandidates() []wdm.PortWave {
	all := w.freeDst.Slots()
	if w.hot == nil || w.rng.Float64() >= w.cfg.Hotspot.Fraction {
		return all
	}
	w.hotBuf = w.hotBuf[:0]
	for _, s := range all {
		if w.hot[s.Port] {
			w.hotBuf = append(w.hotBuf, s)
		}
	}
	if len(w.hotBuf) == 0 {
		return all
	}
	return w.hotBuf
}

// offerOutcome classifies one connect attempt.
type offerOutcome int

const (
	offerRouted offerOutcome = iota
	offerBlocked
	offerRejected // admission_full
	offerFailed   // fabric_failed
	offerStarved  // no admissible request constructible client-side
	offerError    // stats.Err set
)

// offer is the single request-generation path shared by every mode:
// build one admissible connect from the worker's free slots, send it
// with a traceparent, and account the answer. On success the session's
// slots are taken and the session returned.
func (w *worker) offer(ctx context.Context) (offerOutcome, liveSession) {
	conn, ok := w.gen.Connection(w.freeSrc.Slots(), w.destCandidates(), w.gen.Fanout(w.maxFanout()))
	if !ok {
		w.stats.Unoffered++
		return offerStarved, liveSession{}
	}
	w.stats.Connects++
	w.stats.TotalFanout += len(conn.Dests)
	outcome, sess, fatal := w.admitConnection(ctx, conn, "connect")
	switch {
	case fatal:
		return offerError, liveSession{}
	case outcome == "ok":
		return offerRouted, sess
	case outcome == api.CodeAdmissionFull:
		w.stats.Rejected++
		return offerRejected, liveSession{}
	case outcome == api.CodeFabricFailed:
		return offerFailed, liveSession{}
	case IsBlockedCode(outcome):
		w.stats.Blocked++
		return offerBlocked, liveSession{}
	default:
		w.stats.Err = fmt.Errorf("traffic: connect %s: unexpected error code %s", wdm.FormatConnection(conn), outcome)
		return offerError, liveSession{}
	}
}

// admitConnection performs one traced connect-class request (a fresh
// connect or a shrink re-admit), logs it under the given verb, and on
// success takes the session's slots. It returns the outcome code and,
// for "ok", the routed session; fatal means stats.Err is set.
func (w *worker) admitConnection(ctx context.Context, conn wdm.Connection, verb string) (outcome string, sess liveSession, fatal bool) {
	tid := span.NewTraceID()
	traceparent := span.FormatTraceparent(tid, span.NewSpanID(), span.FlagSampled)
	connStr := wdm.FormatConnection(conn)
	reqCtx := client.ContextWithTraceparent(ctx, traceparent)
	var serverTiming string
	reqCtx = client.ContextWithServerTiming(reqCtx, &serverTiming)
	start := time.Now()
	cr, err := w.cl.Connect(reqCtx, connStr, w.fabric)
	rtt := time.Since(start)
	w.stats.Latencies = append(w.stats.Latencies, rtt)
	if serverTiming != "" {
		ParseServerTiming(serverTiming, w.stats.PhaseMs, w.stats.PhaseN)
	}
	outcome = "ok"
	if err != nil {
		if outcome = api.CodeOf(err); outcome == "" {
			w.stats.Err = fmt.Errorf("traffic: %s %s: %w", verb, connStr, err)
			return "", liveSession{}, true
		}
	}
	w.stats.Traces = append(w.stats.Traces, TraceRef{
		TraceID: tid.String(), Outcome: outcome,
		Micros: rtt.Microseconds(), Conn: connStr,
	})
	w.stats.Outcomes[outcome]++
	w.prog.offered.Add(1)
	w.logf("%s %s -> %s\n", verb, connStr, outcome)
	if outcome == "ok" {
		w.stats.Routed++
		w.prog.routed.Add(1)
		w.freeSrc.Take(conn.Source)
		for _, d := range conn.Dests {
			w.freeDst.Take(d)
		}
		return outcome, liveSession{id: cr.Session, conn: conn}, false
	}
	if IsBlockedCode(outcome) {
		w.prog.blocked.Add(1)
	}
	return outcome, liveSession{}, false
}

// IsBlockedCode reports whether a stable code is the fabric's blocked
// class: the generic code or a backend-specific sub-code
// (wavelength_conflict on awg, split_incapable on mesh).
func IsBlockedCode(code string) bool {
	switch code {
	case api.CodeBlocked, api.CodeWavelengthConflict, api.CodeSplitIncapable:
		return true
	}
	return false
}

// disconnect tears one session down and frees its slots. not_found
// means chaos dropped it server-side; the slots are free either way.
func (w *worker) disconnect(ctx context.Context, s liveSession) bool {
	_, err := w.cl.Disconnect(ctx, s.id)
	switch {
	case err == nil:
		w.stats.Disconnects++
	case api.IsCode(err, api.CodeNotFound):
		w.stats.Lost++
	default:
		w.stats.Err = fmt.Errorf("traffic: disconnect session %d: %w", s.id, err)
		return false
	}
	w.freeSrc.Put(s.conn.Source)
	for _, d := range s.conn.Dests {
		w.freeDst.Put(d)
	}
	w.logf("disconnect %s\n", wdm.FormatConnection(s.conn))
	return true
}

func (w *worker) logf(format string, args ...any) {
	if w.log != nil {
		w.log.printf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Max-rate mode: the legacy -attack closed loop. Connect until the
// live target is reached, then recycle oldest-first, keeping every
// request admissible within the private port slice.

func (w *worker) runMaxRate(ctx context.Context, attempts int) {
	var live []liveSession
	disconnectOldest := func() bool {
		s := live[0]
		live = live[1:]
		return w.disconnect(ctx, s)
	}
	for i := 0; i < attempts; i++ {
		for len(live) >= w.cfg.TargetLive {
			if !disconnectOldest() {
				return
			}
		}
		outcome, sess := w.offer(ctx)
		switch outcome {
		case offerRouted:
			live = append(live, sess)
		case offerBlocked:
			// Counted; the closed loop simply moves on.
		case offerStarved:
			// Free sets can't support a request (e.g. wavelength-starved
			// under MSW); recycle a session and retry.
			if len(live) == 0 {
				w.stats.Err = fmt.Errorf("traffic: worker starved with no live sessions")
				return
			}
			if !disconnectOldest() {
				return
			}
			i--
		case offerRejected, offerFailed:
			// Shed our own load before trying again (an admission refill or
			// a scheduled repair may change the answer).
			if len(live) > 0 {
				if !disconnectOldest() {
					return
				}
			}
		case offerError:
			return
		}
	}
	for len(live) > 0 {
		if !disconnectOldest() {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Erlang mode: a virtual-time event loop. Arrivals follow the
// configured process at rate λ = Erlangs / workersPerFabric per worker
// (in units of the mean holding time); routed sessions depart after a
// sampled holding time and optionally churn while alive. The loop is
// single-threaded per worker and every draw comes from the worker's
// own PRNG, so the request stream is a pure function of the config and
// seed.

type eventKind int

const (
	evArrival eventKind = iota
	evDeparture
	evChurn
)

type event struct {
	t    float64
	seq  int // FIFO tie-break keeps the heap deterministic
	kind eventKind
	sess int // local session key for departures/churn
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (w *worker) runErlang(ctx context.Context, arrivals int) {
	lambda := w.cfg.Erlangs / float64(w.cfg.WorkersPerFabric)
	arr := w.cfg.Arrival.NewProcess()
	hold := w.cfg.Holding.NewDist()

	var (
		events  eventHeap
		seq     int
		now     float64
		done    int
		nextKey int
		live    = map[int]liveSession{}
	)
	push := func(t float64, kind eventKind, sess int) {
		heap.Push(&events, event{t: t, seq: seq, kind: kind, sess: sess})
		seq++
	}
	scheduleChurn := func(key int, from float64) {
		if w.cfg.Churn.Rate > 0 {
			push(from+w.rng.ExpFloat64()/w.cfg.Churn.Rate, evChurn, key)
		}
	}
	admit := func(sess liveSession) {
		key := nextKey
		nextKey++
		live[key] = sess
		push(now+hold.Sample(w.rng), evDeparture, key)
		scheduleChurn(key, now)
	}

	push(arr.Next(w.rng)/lambda, evArrival, 0)
	for events.Len() > 0 && ctx.Err() == nil {
		ev := heap.Pop(&events).(event)
		if w.cfg.TimeScale > 0 {
			if wait := time.Duration((ev.t - now) * float64(w.cfg.TimeScale)); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-ctx.Done():
					t.Stop()
				case <-t.C:
				}
			}
		}
		now = ev.t
		switch ev.kind {
		case evArrival:
			done++
			if w.cfg.MaxLive > 0 && len(live) >= w.cfg.MaxLive {
				w.stats.Unoffered++
				w.logf("t=%.6f clamped\n", now)
				if done < arrivals {
					push(now+arr.Next(w.rng)/lambda, evArrival, 0)
				}
				continue
			}
			w.logf("t=%.6f ", now)
			outcome, sess := w.offer(ctx)
			if outcome == offerError {
				return
			}
			if outcome == offerRouted {
				admit(sess)
			}
			if done < arrivals {
				push(now+arr.Next(w.rng)/lambda, evArrival, 0)
			}
		case evDeparture:
			sess, ok := live[ev.sess]
			if !ok {
				continue // shrunk away after a lost re-admit
			}
			delete(live, ev.sess)
			w.logf("t=%.6f ", now)
			if !w.disconnect(ctx, sess) {
				return
			}
		case evChurn:
			sess, ok := live[ev.sess]
			if !ok {
				continue
			}
			if w.rng.Float64() < w.cfg.Churn.GrowBias {
				grown, fatal := w.churnGrow(ctx, sess, now)
				if fatal {
					return
				}
				live[ev.sess] = grown
			} else {
				shrunk, kept, fatal := w.churnShrink(ctx, sess, now)
				if fatal {
					return
				}
				if kept {
					live[ev.sess] = shrunk
				} else {
					delete(live, ev.sess)
				}
			}
			scheduleChurn(ev.sess, now)
		}
	}
	// Drain whatever is still live, in deterministic key order.
	keys := make([]int, 0, len(live))
	for k := range live {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if !w.disconnect(ctx, live[k]) {
			return
		}
	}
}

// churnGrow adds one admissible leaf to a live session via AddBranch
// and returns the (possibly grown) session; fatal means stats.Err is
// set.
func (w *worker) churnGrow(ctx context.Context, sess liveSession, now float64) (liveSession, bool) {
	slot, ok := w.pickGrowSlot(sess.conn)
	if !ok {
		return sess, false // no admissible leaf free; skip this event
	}
	w.stats.Branches++
	w.prog.offered.Add(1)
	_, err := w.cl.Branch(ctx, sess.id, wdm.FormatSlot(slot))
	switch {
	case err == nil:
		w.prog.routed.Add(1)
		w.freeDst.Take(slot)
		sess.conn.Dests = append(sess.conn.Dests, slot)
		sess.conn = sess.conn.Normalize()
		w.logf("t=%.6f branch %s += %s -> ok\n", now, wdm.FormatConnection(sess.conn), wdm.FormatSlot(slot))
		return sess, false
	case client.IsBlocked(err):
		w.stats.BranchBlocked++
		w.prog.blocked.Add(1)
		w.logf("t=%.6f branch %s += %s -> %s\n", now, wdm.FormatConnection(sess.conn), wdm.FormatSlot(slot), api.CodeOf(err))
		return sess, false
	case api.IsCode(err, api.CodeNotFound):
		w.stats.Lost++
		return sess, false
	default:
		if code := api.CodeOf(err); code != "" {
			// Transient server-side refusal (draining, storage): skip.
			w.logf("t=%.6f branch %s -> %s\n", now, wdm.FormatConnection(sess.conn), code)
			return sess, false
		}
		w.stats.Err = fmt.Errorf("traffic: branch session %d: %w", sess.id, err)
		return sess, true
	}
}

// churnShrink partially tears a session down: disconnect, then
// re-admit every leaf but one as a new session. kept=false means the
// session is gone (blocked or rejected re-admit).
func (w *worker) churnShrink(ctx context.Context, sess liveSession, now float64) (shrunk liveSession, kept, fatal bool) {
	if len(sess.conn.Dests) < 2 {
		return sess, true, false // nothing to drop; teardown is the departure's job
	}
	if !w.disconnect(ctx, sess) {
		return sess, false, true
	}
	drop := w.rng.Intn(len(sess.conn.Dests))
	smaller := wdm.Connection{Source: sess.conn.Source}
	for i, d := range sess.conn.Dests {
		if i != drop {
			smaller.Dests = append(smaller.Dests, d)
		}
	}
	smaller = smaller.Normalize()
	w.stats.Shrinks++
	outcome, next, fatal := w.admitConnection(ctx, smaller, fmt.Sprintf("t=%.6f shrink", now))
	if fatal {
		return sess, false, true
	}
	if outcome == "ok" {
		return next, true, false
	}
	// Blocked / rejected re-admit: the session's remaining members are
	// simply gone (accounted by admitConnection).
	return sess, false, false
}

// pickGrowSlot finds a free destination slot the session can grow to
// under the worker's model: a port the session does not already reach,
// on an admissible wavelength (the source's for MSW, the session's
// common destination wavelength for MSDW, any for MAW).
func (w *worker) pickGrowSlot(c wdm.Connection) (wdm.PortWave, bool) {
	used := make(map[wdm.Port]bool, len(c.Dests))
	for _, d := range c.Dests {
		used[d.Port] = true
	}
	var want wdm.Wavelength
	anyWave := false
	switch w.model {
	case wdm.MAW:
		anyWave = true
	case wdm.MSDW:
		if len(c.Dests) > 0 {
			want = c.Dests[0].Wave
		} else {
			want = c.Source.Wave
		}
	default: // MSW
		want = c.Source.Wave
	}
	for _, s := range w.freeDst.Slots() {
		if used[s.Port] {
			continue
		}
		if anyWave || s.Wave == want {
			return s, true
		}
	}
	return wdm.PortWave{}, false
}
