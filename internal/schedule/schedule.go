// Package schedule packs batches of multicast requests into rounds.
//
// The paper's introduction motivates WDM multicast with a scheduling
// observation: in an electronic switching network every destination can
// receive at most one message at a time, so overlapping multicasts must
// be serialized by "a complex scheduling algorithm", while a k-wavelength
// WDM network lets each destination receive up to k messages at once and
// each source send up to k. This package makes that observation
// quantitative: given abstract multicast demands (source port ->
// destination ports), it assigns wavelengths admissible under a chosen
// multicast model and packs the demands into the fewest rounds it can,
// where each round is one admissible multicast assignment the
// corresponding switch can carry simultaneously.
//
// The electronic baseline is exactly the k = 1 case. Comparing rounds
// across models and k values reproduces the introduction's argument as
// an experiment: rounds shrink roughly k-fold moving to WDM, and shrink
// further moving MSW -> MAW because wavelength conversion removes
// same-wavelength conflicts.
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/wdm"
)

// Request is an abstract multicast demand: wavelengths are the
// scheduler's to choose.
type Request struct {
	Source wdm.Port
	Dests  []wdm.Port // distinct ports, none equal to any other's slot twice per round
}

// Validate checks structural sanity against an N-port network.
func (r Request) Validate(n int) error {
	if r.Source < 0 || int(r.Source) >= n {
		return fmt.Errorf("schedule: source port %d out of range [0,%d)", r.Source, n)
	}
	if len(r.Dests) == 0 {
		return fmt.Errorf("schedule: request from port %d has no destinations", r.Source)
	}
	seen := make(map[wdm.Port]bool, len(r.Dests))
	for _, d := range r.Dests {
		if d < 0 || int(d) >= n {
			return fmt.Errorf("schedule: destination port %d out of range [0,%d)", d, n)
		}
		if seen[d] {
			return fmt.Errorf("schedule: destination port %d repeated", d)
		}
		seen[d] = true
	}
	return nil
}

// Round is one admissible multicast assignment plus which requests it
// carries (indices into the scheduled batch).
type Round struct {
	Assignment wdm.Assignment
	Requests   []int
}

// Plan is the result of scheduling a batch.
type Plan struct {
	Model  wdm.Model
	Dim    wdm.Dim
	Rounds []Round
}

// NumRounds returns the plan length.
func (p *Plan) NumRounds() int { return len(p.Rounds) }

// roundState tracks per-round slot occupancy during packing.
type roundState struct {
	srcUsed map[wdm.PortWave]bool
	dstUsed map[wdm.PortWave]bool
	round   *Round
}

// Schedule packs the requests into rounds under the given model and
// dimensions using first-fit decreasing (by fanout): each request is
// placed into the earliest round where an admissible wavelength
// assignment exists, else opens a new round. The resulting rounds are
// each verified admissible before returning.
//
// First-fit decreasing is the classic bin-packing heuristic; the lower
// bound LowerBound gives the congestion floor the plan is measured
// against in the experiments.
func Schedule(model wdm.Model, dim wdm.Dim, reqs []Request) (*Plan, error) {
	if err := dim.Validate(); err != nil {
		return nil, fmt.Errorf("schedule: %w", err)
	}
	for i, r := range reqs {
		if err := r.Validate(dim.N); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}

	// Process in decreasing fanout order (ties: original order) but
	// remember original indices.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(reqs[order[a]].Dests) > len(reqs[order[b]].Dests)
	})

	var states []*roundState
	for _, idx := range order {
		req := reqs[idx]
		placed := false
		for _, st := range states {
			if conn, ok := fitRequest(model, dim, st, req); ok {
				st.commit(conn, idx)
				placed = true
				break
			}
		}
		if !placed {
			st := &roundState{
				srcUsed: make(map[wdm.PortWave]bool),
				dstUsed: make(map[wdm.PortWave]bool),
				round:   &Round{},
			}
			conn, ok := fitRequest(model, dim, st, req)
			if !ok {
				return nil, fmt.Errorf("schedule: request %d (fanout %d) does not fit an empty round — impossible for admissible requests", idx, len(req.Dests))
			}
			st.commit(conn, idx)
			states = append(states, st)
		}
	}

	plan := &Plan{Model: model, Dim: dim}
	for _, st := range states {
		if err := dim.CheckAssignment(model, st.round.Assignment); err != nil {
			return nil, fmt.Errorf("schedule: produced inadmissible round: %w", err)
		}
		plan.Rounds = append(plan.Rounds, *st.round)
	}
	return plan, nil
}

func (st *roundState) commit(conn wdm.Connection, reqIdx int) {
	st.srcUsed[conn.Source] = true
	for _, d := range conn.Dests {
		st.dstUsed[d] = true
	}
	st.round.Assignment = append(st.round.Assignment, conn)
	st.round.Requests = append(st.round.Requests, reqIdx)
}

// fitRequest finds a wavelength assignment for the request compatible
// with the round's current occupancy under the model, or reports false.
func fitRequest(model wdm.Model, dim wdm.Dim, st *roundState, req Request) (wdm.Connection, bool) {
	switch model {
	case wdm.MSW:
		// One wavelength, free at the source and at every destination.
		for w := 0; w < dim.K; w++ {
			wl := wdm.Wavelength(w)
			if st.srcUsed[wdm.PortWave{Port: req.Source, Wave: wl}] {
				continue
			}
			if ok, conn := allDestsOn(st, req, wl, wl); ok {
				return conn, true
			}
		}
	case wdm.MSDW:
		// Source wavelength and common destination wavelength chosen
		// independently.
		for ws := 0; ws < dim.K; ws++ {
			if st.srcUsed[wdm.PortWave{Port: req.Source, Wave: wdm.Wavelength(ws)}] {
				continue
			}
			for wd := 0; wd < dim.K; wd++ {
				if ok, conn := allDestsOn(st, req, wdm.Wavelength(ws), wdm.Wavelength(wd)); ok {
					return conn, true
				}
			}
			break // any free source wavelength is as good as another
		}
	case wdm.MAW:
		// Source: any free wavelength; each destination: any free slot.
		var srcW wdm.Wavelength = -1
		for w := 0; w < dim.K; w++ {
			if !st.srcUsed[wdm.PortWave{Port: req.Source, Wave: wdm.Wavelength(w)}] {
				srcW = wdm.Wavelength(w)
				break
			}
		}
		if srcW < 0 {
			return wdm.Connection{}, false
		}
		conn := wdm.Connection{Source: wdm.PortWave{Port: req.Source, Wave: srcW}}
		for _, d := range req.Dests {
			placed := false
			for w := 0; w < dim.K; w++ {
				slot := wdm.PortWave{Port: d, Wave: wdm.Wavelength(w)}
				if !st.dstUsed[slot] {
					conn.Dests = append(conn.Dests, slot)
					placed = true
					break
				}
			}
			if !placed {
				return wdm.Connection{}, false
			}
		}
		return conn.Normalize(), true
	}
	return wdm.Connection{}, false
}

// allDestsOn builds the connection with source wavelength ws and every
// destination on wd if all those slots are free in the round.
func allDestsOn(st *roundState, req Request, ws, wd wdm.Wavelength) (bool, wdm.Connection) {
	conn := wdm.Connection{Source: wdm.PortWave{Port: req.Source, Wave: ws}}
	for _, d := range req.Dests {
		slot := wdm.PortWave{Port: d, Wave: wd}
		if st.dstUsed[slot] {
			return false, wdm.Connection{}
		}
		conn.Dests = append(conn.Dests, slot)
	}
	return true, conn.Normalize()
}

// LowerBound returns the congestion floor on the number of rounds: no
// schedule can beat the most-demanded destination port's load divided by
// its k receivers, nor the busiest source port's transmit load divided
// by its k transmitters.
func LowerBound(dim wdm.Dim, reqs []Request) int {
	srcLoad := make(map[wdm.Port]int)
	dstLoad := make(map[wdm.Port]int)
	for _, r := range reqs {
		srcLoad[r.Source]++
		for _, d := range r.Dests {
			dstLoad[d]++
		}
	}
	maxLoad := 0
	for _, v := range srcLoad {
		if v > maxLoad {
			maxLoad = v
		}
	}
	for _, v := range dstLoad {
		if v > maxLoad {
			maxLoad = v
		}
	}
	return (maxLoad + dim.K - 1) / dim.K
}

// Served returns how many requests the plan carries in total (each
// request must appear exactly once; the tests rely on this accessor).
func (p *Plan) Served() int {
	total := 0
	for _, r := range p.Rounds {
		total += len(r.Requests)
	}
	return total
}
