package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

func req(src int, dests ...int) Request {
	r := Request{Source: wdm.Port(src)}
	for _, d := range dests {
		r.Dests = append(r.Dests, wdm.Port(d))
	}
	return r
}

func mustSchedule(t *testing.T, model wdm.Model, dim wdm.Dim, reqs []Request) *Plan {
	t.Helper()
	p, err := Schedule(model, dim, reqs)
	if err != nil {
		t.Fatalf("Schedule(%v, %+v): %v", model, dim, err)
	}
	return p
}

func TestEveryRequestServedOnce(t *testing.T) {
	dim := wdm.Dim{N: 6, K: 2}
	reqs := []Request{
		req(0, 1, 2, 3),
		req(1, 0, 4),
		req(2, 3),
		req(0, 5),
		req(3, 1, 2, 4, 5),
	}
	for _, m := range wdm.Models {
		p := mustSchedule(t, m, dim, reqs)
		if p.Served() != len(reqs) {
			t.Errorf("%v: served %d of %d", m, p.Served(), len(reqs))
		}
		seen := make(map[int]bool)
		for _, r := range p.Rounds {
			if len(r.Requests) != len(r.Assignment) {
				t.Errorf("%v: round carries %d requests but %d connections", m, len(r.Requests), len(r.Assignment))
			}
			for _, idx := range r.Requests {
				if seen[idx] {
					t.Errorf("%v: request %d scheduled twice", m, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestRoundsAreAdmissible(t *testing.T) {
	dim := wdm.Dim{N: 8, K: 2}
	rng := rand.New(rand.NewSource(3))
	var reqs []Request
	for i := 0; i < 60; i++ {
		src := rng.Intn(dim.N)
		var dests []int
		for _, d := range rng.Perm(dim.N)[:1+rng.Intn(4)] {
			if d != src {
				dests = append(dests, d)
			}
		}
		if len(dests) == 0 {
			dests = []int{(src + 1) % dim.N}
		}
		reqs = append(reqs, req(src, dests...))
	}
	for _, m := range wdm.Models {
		p := mustSchedule(t, m, dim, reqs)
		for i, r := range p.Rounds {
			if err := dim.CheckAssignment(m, r.Assignment); err != nil {
				t.Errorf("%v round %d: %v", m, i, err)
			}
		}
	}
}

func TestRoundsMatchRequestEndpoints(t *testing.T) {
	// Each scheduled connection must serve exactly its request's source
	// port and destination ports.
	dim := wdm.Dim{N: 5, K: 2}
	reqs := []Request{req(0, 1, 2), req(0, 3, 4), req(1, 2)}
	for _, m := range wdm.Models {
		p := mustSchedule(t, m, dim, reqs)
		for _, round := range p.Rounds {
			for i, idx := range round.Requests {
				conn := round.Assignment[i]
				want := reqs[idx]
				if conn.Source.Port != want.Source {
					t.Errorf("%v: request %d source %d scheduled at port %d", m, idx, want.Source, conn.Source.Port)
				}
				gotPorts := map[wdm.Port]bool{}
				for _, d := range conn.Dests {
					gotPorts[d.Port] = true
				}
				if len(gotPorts) != len(want.Dests) {
					t.Fatalf("%v: request %d got ports %v, want %v", m, idx, gotPorts, want.Dests)
				}
				for _, d := range want.Dests {
					if !gotPorts[d] {
						t.Errorf("%v: request %d missing destination port %d", m, idx, d)
					}
				}
			}
		}
	}
}

func TestWDMReducesRoundsVsElectronic(t *testing.T) {
	// k identical broadcast demands from k different sources: an
	// electronic (k=1) network needs k rounds; a k-wavelength WDM network
	// does it in one (each destination receives k messages at once).
	const n, k = 6, 3
	var reqs []Request
	for s := 0; s < k; s++ {
		reqs = append(reqs, req(s, 3, 4, 5))
	}
	electronic := mustSchedule(t, wdm.MSW, wdm.Dim{N: n, K: 1}, reqs)
	if electronic.NumRounds() != k {
		t.Errorf("electronic rounds = %d, want %d", electronic.NumRounds(), k)
	}
	for _, m := range wdm.Models {
		p := mustSchedule(t, m, wdm.Dim{N: n, K: k}, reqs)
		if p.NumRounds() != 1 {
			t.Errorf("%v k=%d rounds = %d, want 1", m, k, p.NumRounds())
		}
	}
}

func TestModelOrderingOnRandomDemand(t *testing.T) {
	// Stronger models need fewer rounds in aggregate. (Per instance the
	// first-fit heuristic can exhibit classic bin-packing anomalies — a
	// more flexible model makes a greedy early placement that corners it
	// later — so the ordering is asserted on totals over many trials,
	// which is also the form of the paper's argument.)
	dim := wdm.Dim{N: 10, K: 2}
	rng := rand.New(rand.NewSource(17))
	var totMSW, totMSDW, totMAW int
	for trial := 0; trial < 30; trial++ {
		var reqs []Request
		for i := 0; i < 40; i++ {
			src := rng.Intn(dim.N)
			d1 := (src + 1 + rng.Intn(dim.N-1)) % dim.N
			r := req(src, d1)
			if d2 := (d1 + 1 + rng.Intn(dim.N-2)) % dim.N; d2 != src && d2 != d1 {
				r.Dests = append(r.Dests, wdm.Port(d2))
			}
			reqs = append(reqs, r)
		}
		totMSW += mustSchedule(t, wdm.MSW, dim, reqs).NumRounds()
		totMSDW += mustSchedule(t, wdm.MSDW, dim, reqs).NumRounds()
		totMAW += mustSchedule(t, wdm.MAW, dim, reqs).NumRounds()
	}
	if totMSDW > totMSW || totMAW > totMSDW {
		t.Errorf("aggregate rounds MSW=%d MSDW=%d MAW=%d not ordered", totMSW, totMSDW, totMAW)
	}
}

func TestMAWBeatsMSWOnConflictingDemand(t *testing.T) {
	// Two sources broadcasting to the same destinations, k=2, plus two
	// more streams to the same ports: MSW runs out of same-wavelength
	// options before MAW runs out of receivers.
	dim := wdm.Dim{N: 6, K: 2}
	reqs := []Request{
		req(0, 4, 5),
		req(1, 4, 5),
		req(2, 4, 5),
		req(3, 4, 5),
	}
	msw := mustSchedule(t, wdm.MSW, dim, reqs).NumRounds()
	maw := mustSchedule(t, wdm.MAW, dim, reqs).NumRounds()
	if maw != 2 {
		t.Errorf("MAW rounds = %d, want 2 (ports 4,5 have 2 receivers each)", maw)
	}
	if msw < maw {
		t.Errorf("MSW rounds %d below MAW %d", msw, maw)
	}
	if lb := LowerBound(dim, reqs); lb != 2 {
		t.Errorf("LowerBound = %d, want 2", lb)
	}
}

func TestPlanRespectsLowerBound(t *testing.T) {
	dim := wdm.Dim{N: 8, K: 2}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		var reqs []Request
		for i := 0; i < 30; i++ {
			src := rng.Intn(dim.N)
			dst := (src + 1 + rng.Intn(dim.N-1)) % dim.N
			reqs = append(reqs, req(src, dst))
		}
		lb := LowerBound(dim, reqs)
		for _, m := range wdm.Models {
			if got := mustSchedule(t, m, dim, reqs).NumRounds(); got < lb {
				t.Errorf("%v: %d rounds below lower bound %d", m, got, lb)
			}
		}
	}
}

func TestMAWMeetsLowerBoundOnUnicastDemand(t *testing.T) {
	// For unicast-only demand MAW's first-fit packing is optimal up to
	// the congestion bound in this small deterministic case.
	dim := wdm.Dim{N: 4, K: 2}
	var reqs []Request
	for s := 0; s < 4; s++ {
		for c := 0; c < 4; c++ { // each source sends 4 unicasts to port (s+1)%4
			reqs = append(reqs, req(s, (s+1)%4))
		}
	}
	lb := LowerBound(dim, reqs) // 4 per port / 2 receivers = 2
	p := mustSchedule(t, wdm.MAW, dim, reqs)
	if p.NumRounds() != lb {
		t.Errorf("MAW rounds = %d, want lower bound %d", p.NumRounds(), lb)
	}
}

func TestScheduleValidation(t *testing.T) {
	dim := wdm.Dim{N: 4, K: 1}
	bad := [][]Request{
		{req(5, 0)},    // source out of range
		{req(0, 9)},    // dest out of range
		{req(0)},       // no destinations
		{req(0, 1, 1)}, // repeated destination
	}
	for _, reqs := range bad {
		if _, err := Schedule(wdm.MSW, dim, reqs); err == nil {
			t.Errorf("accepted %+v", reqs)
		}
	}
	if _, err := Schedule(wdm.MSW, wdm.Dim{N: 0, K: 1}, nil); err == nil {
		t.Error("accepted invalid dim")
	}
}

func TestEmptyBatch(t *testing.T) {
	p := mustSchedule(t, wdm.MAW, wdm.Dim{N: 4, K: 2}, nil)
	if p.NumRounds() != 0 || p.Served() != 0 {
		t.Errorf("empty batch: %d rounds, %d served", p.NumRounds(), p.Served())
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	// A port may multicast to itself (loopback slot on another or even
	// the same wavelength): the models only constrain wavelengths, not
	// port identity.
	p := mustSchedule(t, wdm.MSW, wdm.Dim{N: 2, K: 1}, []Request{req(0, 0, 1)})
	if p.NumRounds() != 1 {
		t.Errorf("rounds = %d", p.NumRounds())
	}
}
