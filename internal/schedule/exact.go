package schedule

import (
	"fmt"

	"repro/internal/wdm"
)

// OptimalRounds computes the true minimum number of rounds for a batch
// by branch-and-bound over round assignments: request i is tried in
// every existing compatible round before opening a new one, and branches
// are cut against the best complete solution and the congestion lower
// bound. Exponential in the worst case — use only to audit the first-fit
// heuristic on small batches (the tests keep it honest: heuristic
// rounds are compared against this on every random instance).
func OptimalRounds(model wdm.Model, dim wdm.Dim, reqs []Request, maxRequests int) (int, error) {
	if err := dim.Validate(); err != nil {
		return 0, fmt.Errorf("schedule: %w", err)
	}
	if maxRequests > 0 && len(reqs) > maxRequests {
		return 0, fmt.Errorf("schedule: %d requests exceed the exact-search cap %d", len(reqs), maxRequests)
	}
	for i, r := range reqs {
		if err := r.Validate(dim.N); err != nil {
			return 0, fmt.Errorf("request %d: %w", i, err)
		}
	}
	if len(reqs) == 0 {
		return 0, nil
	}

	// Upper bound from the heuristic (also a warm start for pruning).
	plan, err := Schedule(model, dim, reqs)
	if err != nil {
		return 0, err
	}
	best := plan.NumRounds()
	lower := LowerBound(dim, reqs)
	if best == lower {
		return best, nil // heuristic already optimal
	}

	var rounds []*roundState
	var rec func(i int)
	rec = func(i int) {
		if len(rounds) >= best {
			return // already no better than the incumbent
		}
		if i == len(reqs) {
			if len(rounds) < best {
				best = len(rounds)
			}
			return
		}
		req := reqs[i]
		for _, st := range rounds {
			conn, ok := fitRequest(model, dim, st, req)
			if !ok {
				continue
			}
			st.commit(conn, i)
			rec(i + 1)
			st.uncommit(conn)
			if best == lower {
				return // cannot do better than the congestion floor
			}
		}
		// Open a new round (only if that still beats the incumbent).
		if len(rounds)+1 >= best {
			return
		}
		st := &roundState{
			srcUsed: make(map[wdm.PortWave]bool),
			dstUsed: make(map[wdm.PortWave]bool),
			round:   &Round{},
		}
		conn, ok := fitRequest(model, dim, st, req)
		if !ok {
			return
		}
		st.commit(conn, i)
		rounds = append(rounds, st)
		rec(i + 1)
		rounds = rounds[:len(rounds)-1]
	}
	rec(0)
	return best, nil
}

// uncommit reverses a commit (used by the exact search's backtracking).
func (st *roundState) uncommit(conn wdm.Connection) {
	delete(st.srcUsed, conn.Source)
	for _, d := range conn.Dests {
		delete(st.dstUsed, d)
	}
	st.round.Assignment = st.round.Assignment[:len(st.round.Assignment)-1]
	st.round.Requests = st.round.Requests[:len(st.round.Requests)-1]
}
