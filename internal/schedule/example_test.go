package schedule_test

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/wdm"
)

// Three sources broadcast to the same two receivers. On an electronic
// network (k = 1) each receiver can take one stream at a time, so the
// three broadcasts serialize into three rounds; with k = 3 wavelengths
// all of them fit in a single round — the introduction's argument for
// WDM multicast, run as code.
func ExampleSchedule() {
	reqs := []schedule.Request{
		{Source: 0, Dests: []wdm.Port{3, 4}},
		{Source: 1, Dests: []wdm.Port{3, 4}},
		{Source: 2, Dests: []wdm.Port{3, 4}},
	}
	for _, k := range []int{1, 3} {
		plan, err := schedule.Schedule(wdm.MSW, wdm.Dim{N: 5, K: k}, reqs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%d: %d rounds\n", k, plan.NumRounds())
	}
	// Output:
	// k=1: 3 rounds
	// k=3: 1 rounds
}

// The congestion floor no schedule can beat.
func ExampleLowerBound() {
	reqs := []schedule.Request{
		{Source: 0, Dests: []wdm.Port{2}},
		{Source: 0, Dests: []wdm.Port{3}},
		{Source: 0, Dests: []wdm.Port{2}},
		{Source: 1, Dests: []wdm.Port{2}},
	}
	// Port 2 is demanded 3 times; with k = 2 receivers that needs
	// ceil(3/2) = 2 rounds at minimum (source 0's 3 transmissions also
	// force 2).
	fmt.Println(schedule.LowerBound(wdm.Dim{N: 4, K: 2}, reqs))
	// Output: 2
}
