package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

func TestOptimalMatchesHeuristicOnEasyCases(t *testing.T) {
	dim := wdm.Dim{N: 6, K: 3}
	var reqs []Request
	for s := 0; s < 3; s++ {
		reqs = append(reqs, req(s, 3, 4, 5))
	}
	opt, err := OptimalRounds(wdm.MSW, dim, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 1 {
		t.Errorf("optimal = %d, want 1", opt)
	}
}

func TestOptimalNeverAboveHeuristic(t *testing.T) {
	// On random small batches: lower bound <= optimal <= heuristic, and
	// the heuristic must be near-optimal (within 1 round here, flagged
	// otherwise so regressions in the packer surface).
	dim := wdm.Dim{N: 5, K: 2}
	rng := rand.New(rand.NewSource(31))
	worstGap := 0
	for trial := 0; trial < 25; trial++ {
		var reqs []Request
		for i := 0; i < 9; i++ {
			src := rng.Intn(dim.N)
			var dests []int
			for _, d := range rng.Perm(dim.N)[:1+rng.Intn(2)] {
				dests = append(dests, d)
			}
			reqs = append(reqs, req(src, dests...))
		}
		for _, m := range wdm.Models {
			plan := mustSchedule(t, m, dim, reqs)
			opt, err := OptimalRounds(m, dim, reqs, 0)
			if err != nil {
				t.Fatal(err)
			}
			lb := LowerBound(dim, reqs)
			if opt > plan.NumRounds() {
				t.Fatalf("%v trial %d: optimal %d above heuristic %d", m, trial, opt, plan.NumRounds())
			}
			if opt < lb {
				t.Fatalf("%v trial %d: optimal %d below lower bound %d", m, trial, opt, lb)
			}
			if gap := plan.NumRounds() - opt; gap > worstGap {
				worstGap = gap
			}
		}
	}
	if worstGap > 1 {
		t.Errorf("first-fit decreasing strayed %d rounds from optimal on a 9-request batch", worstGap)
	}
	t.Logf("worst heuristic gap over all trials: %d round(s)", worstGap)
}

func TestOptimalRoundsValidation(t *testing.T) {
	if _, err := OptimalRounds(wdm.MSW, wdm.Dim{N: 0, K: 1}, nil, 0); err == nil {
		t.Error("invalid dim accepted")
	}
	if _, err := OptimalRounds(wdm.MSW, wdm.Dim{N: 4, K: 1}, []Request{req(9, 0)}, 0); err == nil {
		t.Error("invalid request accepted")
	}
	if _, err := OptimalRounds(wdm.MSW, wdm.Dim{N: 4, K: 1},
		[]Request{req(0, 1), req(1, 2)}, 1); err == nil {
		t.Error("request cap not enforced")
	}
	if got, err := OptimalRounds(wdm.MSW, wdm.Dim{N: 4, K: 1}, nil, 0); err != nil || got != 0 {
		t.Errorf("empty batch: (%d, %v)", got, err)
	}
}
