package crossbar_test

import (
	"fmt"

	"repro/internal/crossbar"
	"repro/internal/wdm"
)

// A gate-level MAW crossbar routes a wavelength-shifting multicast and
// optically verifies the delivery.
func ExampleSwitch() {
	s := crossbar.New(wdm.MAW, wdm.Dim{N: 3, K: 2})
	id, err := s.Add(wdm.Connection{
		Source: wdm.PortWave{Port: 0, Wave: 0},
		Dests: []wdm.PortWave{
			{Port: 1, Wave: 1}, // converted at the output slot
			{Port: 2, Wave: 0},
		},
	})
	if err != nil {
		panic(err)
	}
	res, err := s.Verify()
	if err != nil {
		panic(err)
	}
	fmt.Printf("connection %d delivered to %d slots, worst loss %.2f dB\n",
		id, len(res.Arrived), res.MaxLossDB)
	// Output: connection 0 delivered to 2 slots, worst loss 19.56 dB
}

// Table 1's crossbar cost rows come from these closed forms (audited
// against constructed fabrics in the tests).
func ExampleCostFormula() {
	for _, m := range wdm.Models {
		c := crossbar.CostFormula(m, wdm.Shape{In: 8, Out: 8, K: 4})
		fmt.Printf("%-4v crosspoints=%d converters=%d\n", m, c.Crosspoints, c.Converters)
	}
	// Output:
	// MSW  crosspoints=256 converters=0
	// MSDW crosspoints=1024 converters=32
	// MAW  crosspoints=1024 converters=32
}
