package crossbar

import (
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

// TestRandomWalkAgainstOracle drives a long random sequence of Add and
// Release operations — including deliberately inadmissible requests —
// against a gate-level switch, while an independent oracle (a pair of
// slot-occupancy sets plus the model predicate) predicts which requests
// must be accepted. Every divergence is a bug in one of them; the switch
// is also optically verified along the way.
func TestRandomWalkAgainstOracle(t *testing.T) {
	d := wdm.Dim{N: 4, K: 2}
	for _, model := range wdm.Models {
		rng := rand.New(rand.NewSource(23))
		s := New(model, d)

		srcBusy := map[wdm.PortWave]bool{}
		dstBusy := map[wdm.PortWave]bool{}
		type held struct {
			id   int
			conn wdm.Connection
		}
		var live []held

		randSlot := func() wdm.PortWave {
			return wdm.PortWave{
				Port: wdm.Port(rng.Intn(d.N)),
				Wave: wdm.Wavelength(rng.Intn(d.K)),
			}
		}

		for step := 0; step < 1500; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				v := live[i]
				if err := s.Release(v.id); err != nil {
					t.Fatalf("%v step %d: release: %v", model, step, err)
				}
				live = append(live[:i], live[i+1:]...)
				delete(srcBusy, v.conn.Source)
				for _, dd := range v.conn.Dests {
					delete(dstBusy, dd)
				}
				continue
			}

			// Build a random (often sloppy) request.
			c := wdm.Connection{Source: randSlot()}
			for f := 1 + rng.Intn(3); f > 0; f-- {
				c.Dests = append(c.Dests, randSlot())
			}

			// Oracle: admissible model-wise, slots free, no duplicates.
			admissible := d.CheckConnection(model, c) == nil && !srcBusy[c.Source]
			if admissible {
				seen := map[wdm.PortWave]bool{}
				for _, dd := range c.Dests {
					if dstBusy[dd] || seen[dd] {
						admissible = false
						break
					}
					seen[dd] = true
				}
			}

			id, err := s.Add(c)
			if admissible && err != nil {
				t.Fatalf("%v step %d: oracle says admissible, switch rejected %v: %v", model, step, c, err)
			}
			if !admissible && err == nil {
				t.Fatalf("%v step %d: oracle says inadmissible, switch accepted %v", model, step, c)
			}
			if err == nil {
				live = append(live, held{id: id, conn: c.Normalize()})
				srcBusy[c.Source] = true
				for _, dd := range c.Dests {
					dstBusy[dd] = true
				}
			}

			if step%100 == 0 {
				if _, err := s.Verify(); err != nil {
					t.Fatalf("%v step %d: optical verify: %v", model, step, err)
				}
			}
		}
		if _, err := s.Verify(); err != nil {
			t.Fatalf("%v final verify: %v", model, err)
		}
	}
}
