package crossbar

import (
	"errors"
	"testing"

	"repro/internal/wdm"
)

func TestRectangularSwitchRoutes(t *testing.T) {
	// A 2x4 input-stage-style module: multicast from one input to several
	// of the 4 outputs.
	sh := wdm.Shape{In: 2, Out: 4, K: 2}
	for _, m := range wdm.Models {
		s := NewShape(m, sh)
		c := conn(pw(0, 0), pw(0, 0), pw(2, 0), pw(3, 0))
		if _, err := s.Add(c); err != nil {
			t.Fatalf("%v rect: %v", m, err)
		}
		mustVerify(t, s)
	}
}

func TestRectangularCostFormula(t *testing.T) {
	shapes := []wdm.Shape{
		{In: 2, Out: 6, K: 2},
		{In: 6, Out: 2, K: 3},
		{In: 4, Out: 4, K: 1},
		{In: 3, Out: 5, K: 4},
	}
	for _, sh := range shapes {
		for _, m := range wdm.Models {
			audit := NewShape(m, sh).Cost()
			formula := CostFormula(m, sh)
			if audit != formula {
				t.Errorf("%v %dx%d k=%d: audit %+v != formula %+v", m, sh.In, sh.Out, sh.K, audit, formula)
			}
		}
	}
}

func TestLiteMatchesFabricRouting(t *testing.T) {
	// Lite and fabric-backed switches must accept/reject identically.
	sh := wdm.Shape{In: 3, Out: 3, K: 2}
	for _, m := range wdm.Models {
		full := NewShape(m, sh)
		lite := NewLite(m, sh)
		conns := []wdm.Connection{
			conn(pw(0, 0), pw(0, 0), pw(1, 0)),
			conn(pw(0, 0), pw(2, 0)),           // duplicate source: both reject
			conn(pw(1, 0), pw(0, 0)),           // duplicate destination: both reject
			conn(pw(1, 1), pw(2, 1)),           // fresh: both accept
			conn(pw(2, 0), pw(2, 0), pw(2, 1)), // same port twice: both reject
		}
		for i, c := range conns {
			_, errFull := full.Add(c)
			_, errLite := lite.Add(c)
			if (errFull == nil) != (errLite == nil) {
				t.Errorf("%v conn %d: full err=%v, lite err=%v", m, i, errFull, errLite)
			}
		}
		if full.Len() != lite.Len() {
			t.Errorf("%v: full holds %d, lite holds %d", m, full.Len(), lite.Len())
		}
		if full.Cost() != lite.Cost() {
			t.Errorf("%v: full cost %+v != lite cost %+v", m, full.Cost(), lite.Cost())
		}
	}
}

func TestLiteVerifyUnavailable(t *testing.T) {
	s := NewLite(wdm.MAW, wdm.Shape{In: 2, Out: 2, K: 1})
	if _, err := s.Verify(); !errors.Is(err, ErrVerifyLite) {
		t.Errorf("lite Verify err = %v, want ErrVerifyLite", err)
	}
}

func TestLiteReleaseAndReuse(t *testing.T) {
	s := NewLite(wdm.MSW, wdm.Shape{In: 2, Out: 2, K: 1})
	id, err := s.Add(conn(pw(0, 0), pw(0, 0), pw(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(conn(pw(1, 0), pw(0, 0))); err != nil {
		t.Fatalf("slot not freed in lite switch: %v", err)
	}
}

func TestBusyQueries(t *testing.T) {
	s := NewLite(wdm.MAW, wdm.Shape{In: 2, Out: 2, K: 2})
	if _, err := s.Add(conn(pw(0, 1), pw(1, 0))); err != nil {
		t.Fatal(err)
	}
	if !s.SourceBusy(pw(0, 1)) || s.SourceBusy(pw(0, 0)) {
		t.Error("SourceBusy wrong")
	}
	if !s.DestBusy(pw(1, 0)) || s.DestBusy(pw(1, 1)) {
		t.Error("DestBusy wrong")
	}
}

func TestConnectionLookup(t *testing.T) {
	s := NewLite(wdm.MAW, wdm.Shape{In: 2, Out: 2, K: 1})
	id, err := s.Add(conn(pw(0, 0), pw(1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Connection(id)
	if !ok || got.Source != pw(0, 0) {
		t.Errorf("Connection(%d) = %v, %v", id, got, ok)
	}
	if _, ok := s.Connection(id + 1); ok {
		t.Error("Connection on unknown id returned ok")
	}
}
