package crossbar

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// TestPredictedLossMatchesMeasured propagates a real signal through each
// crossbar design and compares the measured worst-path loss against the
// closed-form budget — they must agree to floating-point precision.
func TestPredictedLossMatchesMeasured(t *testing.T) {
	for _, d := range []wdm.Dim{{N: 2, K: 2}, {N: 4, K: 2}, {N: 8, K: 4}} {
		for _, m := range wdm.Models {
			s := New(m, d)
			// Wavelength-shifting connections exercise the converter on
			// MSDW/MAW paths; MSW keeps the source wavelength.
			c := conn(pw(0, 0), pw(d.N-1, 0))
			if m != wdm.MSW {
				c = conn(pw(0, 0), pw(d.N-1, d.K-1))
			}
			mustAdd(t, s, c)
			res, err := s.Verify()
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			want := PredictedWorstLossDB(m, d.Shape())
			if math.Abs(res.MaxLossDB-want) > 1e-9 {
				t.Errorf("%v N=%d k=%d: measured %.4f dB, predicted %.4f dB",
					m, d.N, d.K, res.MaxLossDB, want)
			}
		}
	}
}

// TestLossOrderingMSWBelowMatrix confirms the Section 2.3 projection:
// the wide-matrix designs lose strictly more power than the per-plane
// MSW design for k > 1 (by 20*log10(k) + converter loss).
func TestLossOrderingMSWBelowMatrix(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		sh := wdm.Shape{In: 8, Out: 8, K: k}
		msw := PredictedWorstLossDB(wdm.MSW, sh)
		maw := PredictedWorstLossDB(wdm.MAW, sh)
		wantGap := 20*math.Log10(float64(k)) + fabric.ConverterLossDB
		if math.Abs((maw-msw)-wantGap) > 1e-9 {
			t.Errorf("k=%d: loss gap %.4f, want %.4f", k, maw-msw, wantGap)
		}
	}
}

// TestCrosstalkProxySingleGate: every crossbar path crosses exactly one
// SOA gate, verified by the propagation gate counter.
func TestCrosstalkProxySingleGate(t *testing.T) {
	for _, m := range wdm.Models {
		s := New(m, wdm.Dim{N: 4, K: 2})
		mustAdd(t, s, conn(pw(1, 1), pw(0, 1), pw(2, 1), pw(3, 1)))
		res, err := s.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxGates != WorstCrosstalkGates(m, s.Shape()) {
			t.Errorf("%v: path crosses %d gates, want %d", m, res.MaxGates, 1)
		}
	}
}

// TestCrosstalkScalesWithFabricWidth is the paper's Section 2.3 claim
// made measurable: the k^2 N^2-crosspoint MAW fabric exposes each signal
// to more first-order leakage than the kN^2 MSW fabric under the same
// full load, because every live splitter row crosses Nk off gates
// instead of N.
func TestCrosstalkScalesWithFabricWidth(t *testing.T) {
	d := wdm.Dim{N: 4, K: 4}
	worst := map[wdm.Model]float64{}
	for _, m := range []wdm.Model{wdm.MSW, wdm.MAW} {
		s := New(m, d)
		// Full same-wavelength load is admissible under both models.
		for q := 0; q < d.N; q++ {
			for w := 0; w < d.K; w++ {
				c := conn(pw(q, w), pw((q+1)%d.N, w))
				mustAdd(t, s, c)
			}
		}
		ratio, err := s.Fabric().WorstCrosstalkRatio()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.IsInf(ratio, 1) {
			t.Fatalf("%v: fully loaded switch reports no crosstalk", m)
		}
		worst[m] = ratio
	}
	if worst[wdm.MAW] >= worst[wdm.MSW] {
		t.Errorf("MAW worst signal-to-crosstalk %.1f dB not below MSW's %.1f dB",
			worst[wdm.MAW], worst[wdm.MSW])
	}
	t.Logf("worst signal-to-crosstalk: MSW %.1f dB, MAW %.1f dB", worst[wdm.MSW], worst[wdm.MAW])
}

// TestStuckOffGateDetected injects a stuck-off fault into a gate used by
// a live connection: optical verification must report the missing
// signal.
func TestStuckOffGateDetected(t *testing.T) {
	for _, m := range wdm.Models {
		s := New(m, wdm.Dim{N: 3, K: 2})
		mustAdd(t, s, conn(pw(0, 0), pw(1, 0), pw(2, 0)))
		// Find an on gate and force it off (stuck-off hardware fault).
		fab := s.Fabric()
		var broke bool
		for _, g := range fab.ElementsOf(fabric.Gate) {
			if fab.GateOn(g) {
				fab.SetGate(g, false)
				broke = true
				break
			}
		}
		if !broke {
			t.Fatalf("%v: no gate on for a live connection", m)
		}
		if _, err := s.Verify(); err == nil || !strings.Contains(err.Error(), "missing") {
			t.Errorf("%v: stuck-off gate not detected: %v", m, err)
		}
	}
}

// TestStuckOnGateDetected injects a stuck-on fault into an unused gate
// on a live signal's splitter row: the stray copy must be caught as a
// stray arrival or a combiner/output collision.
func TestStuckOnGateDetected(t *testing.T) {
	for _, m := range wdm.Models {
		s := New(m, wdm.Dim{N: 3, K: 2})
		mustAdd(t, s, conn(pw(0, 0), pw(1, 0)))
		fab := s.Fabric()
		// Turn on every gate that is currently off; at least one sits on
		// the live signal's splitter and leaks it somewhere it does not
		// belong. (Stuck-on faults on dark rows are silent — they carry
		// no light — which is itself the physically correct behaviour.)
		for _, g := range fab.ElementsOf(fabric.Gate) {
			if !fab.GateOn(g) {
				fab.SetGate(g, true)
			}
		}
		if _, err := s.Verify(); err == nil {
			t.Errorf("%v: all-gates-on fault not detected", m)
		}
	}
}

// TestDarkStuckOnGateIsSilent: a stuck-on gate on a row with no injected
// signal must not disturb verification — no light, no fault.
func TestDarkStuckOnGateIsSilent(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 3, K: 2})
	mustAdd(t, s, conn(pw(0, 0), pw(1, 0)))
	// Gate on plane λ1 (no signal there): row of input 2, output 0.
	s.fab.SetGate(s.planeGates[1][2][0], true)
	if _, err := s.Verify(); err != nil {
		t.Errorf("dark stuck-on gate caused a fault: %v", err)
	}
}
