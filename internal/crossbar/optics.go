package crossbar

import (
	"repro/internal/fabric"
	"repro/internal/wdm"
)

// PredictedWorstLossDB returns the closed-form worst-case optical power
// loss (in dB) of a signal path through a crossbar of the given model
// and shape — the Section 2.3 projection of "power loss inside a WDM
// switch" from the element structure:
//
//	MSW:        demux + split(Out)    + gate + combine(In)    + mux
//	MSDW:       demux + convert + split(Out*k) + gate + combine(In*k) + mux
//	MAW:        demux + split(Out*k) + gate + combine(In*k) + convert + mux
//
// MSDW and MAW therefore share the same budget; MSW's is smaller by the
// 10*log10(k) of both the splitting and combining stages plus the
// converter insertion loss. The fabric tests confirm propagation
// measures exactly these values.
func PredictedWorstLossDB(model wdm.Model, shape wdm.Shape) float64 {
	base := 2*fabric.MuxDemuxLossDB + fabric.GateLossDB
	switch model {
	case wdm.MSW:
		return base + fabric.SplitLossDB(shape.Out) + fabric.SplitLossDB(shape.In)
	default: // MSDW, MAW
		return base + fabric.ConverterLossDB +
			fabric.SplitLossDB(shape.Out*shape.K) + fabric.SplitLossDB(shape.In*shape.K)
	}
}

// WorstCrosstalkGates returns the number of SOA gates on any signal path
// — the paper's crosstalk proxy (each crossed active element contributes
// leakage). All three crossbar designs are single-gate-per-path:
// crosstalk accumulates with *fabric width*, not path length, which is
// why crosspoint count is the paper's crosstalk measure.
func WorstCrosstalkGates(model wdm.Model, shape wdm.Shape) int {
	return 1
}
