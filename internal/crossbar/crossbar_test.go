package crossbar

import (
	"strings"
	"testing"

	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func conn(src wdm.PortWave, dests ...wdm.PortWave) wdm.Connection {
	return wdm.Connection{Source: src, Dests: dests}
}

func mustAdd(t *testing.T, s *Switch, c wdm.Connection) int {
	t.Helper()
	id, err := s.Add(c)
	if err != nil {
		t.Fatalf("Add(%v) on %v switch: %v", c, s.Model(), err)
	}
	return id
}

func mustVerify(t *testing.T, s *Switch) {
	t.Helper()
	if _, err := s.Verify(); err != nil {
		t.Fatalf("Verify on %v switch: %v", s.Model(), err)
	}
}

func TestCostMatchesTable1(t *testing.T) {
	// The constructed fabric's element counts must equal the paper's
	// closed forms for every model and a spread of sizes.
	for _, dim := range []wdm.Dim{{N: 2, K: 1}, {N: 2, K: 2}, {N: 3, K: 2}, {N: 4, K: 3}, {N: 8, K: 4}} {
		for _, m := range wdm.Models {
			s := New(m, dim)
			c := s.Cost()
			if want := FormulaCrosspoints(m, dim.N, dim.K); c.Crosspoints != want {
				t.Errorf("%v N=%d k=%d: crosspoints = %d, want %d", m, dim.N, dim.K, c.Crosspoints, want)
			}
			if want := FormulaConverters(m, dim.N, dim.K); c.Converters != want {
				t.Errorf("%v N=%d k=%d: converters = %d, want %d", m, dim.N, dim.K, c.Converters, want)
			}
			// Structural bookkeeping: one splitter per input slot, one
			// combiner per output slot, one mux/demux per port.
			slots := dim.Slots()
			if c.Splitters != slots || c.Combiners != slots {
				t.Errorf("%v N=%d k=%d: splitters/combiners = %d/%d, want %d each",
					m, dim.N, dim.K, c.Splitters, c.Combiners, slots)
			}
			if c.Muxes != dim.N || c.Demuxes != dim.N {
				t.Errorf("%v N=%d k=%d: muxes/demuxes = %d/%d, want %d each",
					m, dim.N, dim.K, c.Muxes, c.Demuxes, dim.N)
			}
		}
	}
}

func TestMSWRoutesSameWavelengthMulticast(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 3, K: 2})
	mustAdd(t, s, conn(pw(0, 0), pw(0, 0), pw(1, 0), pw(2, 0)))
	mustAdd(t, s, conn(pw(1, 1), pw(0, 1), pw(2, 1)))
	mustVerify(t, s)
}

func TestMSWRejectsCrossWavelength(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 3, K: 2})
	if _, err := s.Add(conn(pw(0, 0), pw(1, 1))); err == nil {
		t.Fatal("MSW switch accepted a wavelength-shifting connection")
	}
}

func TestMSDWShiftsWavelengthOnce(t *testing.T) {
	s := New(wdm.MSDW, wdm.Dim{N: 3, K: 2})
	// Source on λ0, all destinations on λ1.
	mustAdd(t, s, conn(pw(0, 0), pw(0, 1), pw(1, 1), pw(2, 1)))
	res, err := s.Verify()
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, slot := range []wdm.PortWave{pw(0, 1), pw(1, 1), pw(2, 1)} {
		if _, ok := res.Arrived[slot]; !ok {
			t.Errorf("no arrival at %v", slot)
		}
	}
}

func TestMSDWRejectsMixedDestWavelengths(t *testing.T) {
	s := New(wdm.MSDW, wdm.Dim{N: 3, K: 2})
	if _, err := s.Add(conn(pw(0, 0), pw(1, 0), pw(2, 1))); err == nil {
		t.Fatal("MSDW switch accepted mixed destination wavelengths")
	}
}

func TestMAWPerDestinationWavelengths(t *testing.T) {
	s := New(wdm.MAW, wdm.Dim{N: 3, K: 2})
	// One connection fanning out to different wavelengths at each port.
	mustAdd(t, s, conn(pw(0, 0), pw(0, 1), pw(1, 0), pw(2, 1)))
	// A second connection using leftover slots, also mixed.
	mustAdd(t, s, conn(pw(0, 1), pw(0, 0), pw(2, 0)))
	mustVerify(t, s)
}

func TestAddRejectsBusySlots(t *testing.T) {
	s := New(wdm.MAW, wdm.Dim{N: 2, K: 2})
	mustAdd(t, s, conn(pw(0, 0), pw(1, 0)))
	if _, err := s.Add(conn(pw(0, 0), pw(0, 0))); err == nil || !strings.Contains(err.Error(), "source slot") {
		t.Errorf("busy source not rejected: %v", err)
	}
	if _, err := s.Add(conn(pw(1, 1), pw(1, 0))); err == nil || !strings.Contains(err.Error(), "destination slot") {
		t.Errorf("busy destination not rejected: %v", err)
	}
}

func TestReleaseRestoresState(t *testing.T) {
	for _, m := range wdm.Models {
		s := New(m, wdm.Dim{N: 2, K: 2})
		c := conn(pw(0, 0), pw(0, 0), pw(1, 0))
		id := mustAdd(t, s, c)
		if err := s.Release(id); err != nil {
			t.Fatalf("%v: release: %v", m, err)
		}
		if s.Len() != 0 {
			t.Fatalf("%v: %d connections after release", m, s.Len())
		}
		res, err := s.Verify()
		if err != nil {
			t.Fatalf("%v: verify after release: %v", m, err)
		}
		if len(res.Arrived) != 0 {
			t.Errorf("%v: %d stale arrivals after release", m, len(res.Arrived))
		}
		// The slots must be reusable by a different connection.
		mustAdd(t, s, conn(pw(1, 0), pw(0, 0), pw(1, 0)))
		mustVerify(t, s)
	}
}

func TestReleaseUnknownID(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 2, K: 1})
	if err := s.Release(99); err == nil {
		t.Error("Release(99) on empty switch succeeded")
	}
}

func TestResetReleasesEverything(t *testing.T) {
	s := New(wdm.MAW, wdm.Dim{N: 2, K: 2})
	mustAdd(t, s, conn(pw(0, 0), pw(0, 0)))
	mustAdd(t, s, conn(pw(0, 1), pw(1, 1)))
	mustAdd(t, s, conn(pw(1, 0), pw(1, 0)))
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("%d connections after Reset", s.Len())
	}
	res, err := s.Verify()
	if err != nil || len(res.Arrived) != 0 {
		t.Errorf("stale state after Reset: %v, %d arrivals", err, len(res.Arrived))
	}
}

func TestAddAssignmentRollsBack(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 2, K: 1})
	bad := wdm.Assignment{
		conn(pw(0, 0), pw(0, 0)),
		conn(pw(1, 0), pw(0, 0)), // destination conflict
	}
	if _, err := s.AddAssignment(bad); err == nil {
		t.Fatal("conflicting assignment accepted")
	}
	if s.Len() != 0 {
		t.Errorf("rollback left %d connections", s.Len())
	}
}

func TestConnectionsSnapshotIsolated(t *testing.T) {
	s := New(wdm.MSW, wdm.Dim{N: 2, K: 1})
	id := mustAdd(t, s, conn(pw(0, 0), pw(0, 0), pw(1, 0)))
	snap := s.Connections()
	snap[id].Dests[0] = pw(1, 0)
	again := s.Connections()
	if again[id].Dests[0] != pw(0, 0) {
		t.Error("Connections snapshot shares storage with switch state")
	}
}

func TestFullAssignmentEveryModel(t *testing.T) {
	// A full-multicast-assignment (every output slot used) must route on
	// each model's own admissible wavelength pattern.
	dim := wdm.Dim{N: 3, K: 2}
	cases := map[wdm.Model]wdm.Assignment{
		wdm.MSW: {
			conn(pw(0, 0), pw(0, 0), pw(1, 0), pw(2, 0)),
			conn(pw(1, 1), pw(0, 1), pw(1, 1)),
			conn(pw(2, 1), pw(2, 1)),
		},
		wdm.MSDW: {
			conn(pw(0, 0), pw(0, 1), pw(1, 1), pw(2, 1)), // λ0 -> λ1
			conn(pw(0, 1), pw(0, 0), pw(1, 0)),           // λ1 -> λ0
			conn(pw(2, 0), pw(2, 0)),
		},
		wdm.MAW: {
			conn(pw(0, 0), pw(0, 1), pw(1, 0), pw(2, 1)),
			conn(pw(1, 0), pw(0, 0), pw(1, 1)),
			conn(pw(2, 1), pw(2, 0)),
		},
	}
	for m, a := range cases {
		if err := dim.CheckAssignment(m, a); err != nil {
			t.Fatalf("%v: test assignment itself invalid: %v", m, err)
		}
		if !a.IsFull(dim.N, dim.K) {
			t.Fatalf("%v: test assignment not full", m)
		}
		s := New(m, dim)
		if _, err := s.AddAssignment(a); err != nil {
			t.Fatalf("%v: AddAssignment: %v", m, err)
		}
		mustVerify(t, s)
	}
}

func TestPowerLossGrowsWithSize(t *testing.T) {
	// Splitting loss scales with the matrix width: an MAW switch (1 x Nk
	// split) must lose more power per path than the MSW planes (1 x N).
	dim := wdm.Dim{N: 4, K: 4}
	msw := New(wdm.MSW, dim)
	maw := New(wdm.MAW, dim)
	mustAdd(t, msw, conn(pw(0, 0), pw(1, 0)))
	mustAdd(t, maw, conn(pw(0, 0), pw(1, 0)))
	rMSW, err := msw.Verify()
	if err != nil {
		t.Fatal(err)
	}
	rMAW, err := maw.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rMAW.MaxLossDB <= rMSW.MaxLossDB {
		t.Errorf("MAW loss %.2f dB <= MSW loss %.2f dB; expected strictly more",
			rMAW.MaxLossDB, rMSW.MaxLossDB)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with N=0 did not panic")
		}
	}()
	New(wdm.MSW, wdm.Dim{N: 0, K: 1})
}
