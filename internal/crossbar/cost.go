package crossbar

import (
	"repro/internal/fabric"
	"repro/internal/wdm"
)

// Cost summarizes the hardware of a switch, in the units used by the
// paper's Table 1: crosspoints (SOA gates) and wavelength converters,
// plus the passive-element counts for completeness.
type Cost struct {
	Crosspoints int
	Converters  int
	Splitters   int
	Combiners   int
	Muxes       int
	Demuxes     int
}

// Add accumulates another cost into c.
func (c *Cost) Add(o Cost) {
	c.Crosspoints += o.Crosspoints
	c.Converters += o.Converters
	c.Splitters += o.Splitters
	c.Combiners += o.Combiners
	c.Muxes += o.Muxes
	c.Demuxes += o.Demuxes
}

// Scale multiplies every count by f (e.g. "r identical modules").
func (c Cost) Scale(f int) Cost {
	return Cost{
		Crosspoints: c.Crosspoints * f,
		Converters:  c.Converters * f,
		Splitters:   c.Splitters * f,
		Combiners:   c.Combiners * f,
		Muxes:       c.Muxes * f,
		Demuxes:     c.Demuxes * f,
	}
}

// Cost returns the switch's hardware counts. Fabric-backed switches are
// audited by counting real elements; lite switches use the closed forms
// (tested elsewhere to match the audits).
func (s *Switch) Cost() Cost {
	if s.fab != nil {
		return Cost{
			Crosspoints: s.fab.Crosspoints(),
			Converters:  s.fab.Converters(),
			Splitters:   s.fab.Count(fabric.Splitter),
			Combiners:   s.fab.Count(fabric.Combiner),
			Muxes:       s.fab.Count(fabric.Mux),
			Demuxes:     s.fab.Count(fabric.Demux),
		}
	}
	return CostFormula(s.model, s.shape)
}

// CostFormula returns the closed-form hardware counts for a crossbar
// switch of the given model and shape (the rectangular generalization of
// Table 1).
func CostFormula(model wdm.Model, shape wdm.Shape) Cost {
	in, out, k := shape.In, shape.Out, shape.K
	c := Cost{
		Splitters: in * k,
		Combiners: out * k,
		Muxes:     out,
		Demuxes:   in,
	}
	switch model {
	case wdm.MSW:
		c.Crosspoints = k * in * out
		c.Converters = 0
	case wdm.MSDW:
		c.Crosspoints = k * k * in * out
		c.Converters = k * in
	case wdm.MAW:
		c.Crosspoints = k * k * in * out
		c.Converters = k * out
	}
	return c
}

// FormulaCrosspoints returns the paper's Table 1 crosspoint count for a
// square N x N crossbar: kN^2 under MSW, k^2 N^2 under MSDW/MAW.
func FormulaCrosspoints(model wdm.Model, n, k int) int {
	return CostFormula(model, wdm.Shape{In: n, Out: n, K: k}).Crosspoints
}

// FormulaConverters returns the paper's Table 1 converter count for a
// square N x N crossbar: 0 under MSW, kN under MSDW/MAW.
func FormulaConverters(model wdm.Model, n, k int) int {
	return CostFormula(model, wdm.Shape{In: n, Out: n, K: k}).Converters
}
