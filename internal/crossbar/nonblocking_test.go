package crossbar

import (
	"testing"

	"repro/internal/capacity"
	"repro/internal/wdm"
)

// TestExhaustiveNonblocking is the executable form of the paper's claim
// that the crossbar designs of Figs. 4-7 are nonblocking: for every
// admissible any-multicast-assignment of a small network, the switch must
// route all connections and deliver every signal optically, with no
// combiner/mux collisions. This enumerates every assignment (e.g. 79,507
// for MAW at N=3, k=2) and drives the fabric for each.
func TestExhaustiveNonblocking(t *testing.T) {
	dims := []wdm.Dim{
		{N: 2, K: 1},
		{N: 2, K: 2},
		{N: 3, K: 1},
	}
	if !testing.Short() {
		// The paper's own example size from Figs. 6-7.
		dims = append(dims, wdm.Dim{N: 3, K: 2})
	}
	for _, d := range dims {
		for _, m := range wdm.Models {
			s := New(m, d)
			checked := 0
			capacity.EnumerateAssignments(m, d, false, func(a wdm.Assignment) bool {
				ids, err := s.AddAssignment(a)
				if err != nil {
					t.Errorf("%v N=%d k=%d: blocking on admissible assignment %v: %v", m, d.N, d.K, a, err)
					return false
				}
				if _, err := s.Verify(); err != nil {
					t.Errorf("%v N=%d k=%d: optical fault on %v: %v", m, d.N, d.K, a, err)
					return false
				}
				for _, id := range ids {
					if err := s.Release(id); err != nil {
						t.Fatalf("release: %v", err)
					}
				}
				checked++
				return true
			})
			want := capacity.Any(m, int64(d.N), int64(d.K))
			if want.IsInt64() && int64(checked) != want.Int64() {
				t.Errorf("%v N=%d k=%d: verified %d assignments, capacity says %s", m, d.N, d.K, checked, want)
			}
		}
	}
}

// TestSwitchReusableAcrossAssignments stresses add/release cycling: the
// same switch instance must route thousands of assignments back to back
// without state leakage (gates or converters left configured).
func TestSwitchReusableAcrossAssignments(t *testing.T) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		s := New(m, d)
		capacity.EnumerateAssignments(m, d, true, func(a wdm.Assignment) bool {
			if _, err := s.AddAssignment(a); err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			s.Reset()
			return true
		})
		if res, err := s.Verify(); err != nil || len(res.Arrived) != 0 {
			t.Errorf("%v: leaked state after cycling: err=%v arrivals=%d", m, err, len(res.Arrived))
		}
	}
}
