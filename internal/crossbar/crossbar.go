// Package crossbar implements the paper's crossbar-based WDM multicast
// switch designs (Section 2.3, Figs. 4-7) as explicit optical fabrics:
//
//   - MSW (Figs. 4-5): k parallel single-wavelength space switches. Each
//     plane is a splitter/gate/combiner crossbar; the planes share the
//     port demuxes and muxes. k*In*Out crosspoints, no converters.
//
//   - MSDW (Fig. 6): a full (In*k) x (Out*k) gate matrix with one
//     wavelength converter per *input* slot, placed before the splitter so
//     one converter serves the whole multicast. k^2*In*Out crosspoints,
//     k*In converters.
//
//   - MAW (Fig. 7): the same gate matrix with one converter per *output*
//     slot, after the combiner, so every destination can pick its own
//     wavelength. k^2*In*Out crosspoints, k*Out converters.
//
// Switches may be rectangular (In != Out) because the multistage networks
// of Section 3 are assembled from n x m, r x r and m x n modules. A
// Switch tracks live connections, drives the underlying fabric's gates
// and converters, and can optically verify itself by propagating every
// held connection's signal and comparing arrivals against expectations.
//
// For large parameter sweeps where only routing feasibility and cost
// matter, NewLite builds a switch without the element graph: routing
// bookkeeping is identical but Verify is unavailable and Cost comes from
// the closed forms (which the audited fabrics are tested to match).
package crossbar

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// Switch is a crossbar-based WDM multicast switch holding live multicast
// connections. It is not safe for concurrent use.
type Switch struct {
	shape wdm.Shape
	model wdm.Model
	fab   *fabric.Fabric // nil for lite switches

	// MSW plane gates: planeGates[wave][inPort][outPort].
	planeGates [][][]fabric.ElemID
	// Matrix gates for MSDW/MAW: matrixGates[inSlot][outSlot]
	// (slot = port*k + wave).
	matrixGates [][]fabric.ElemID
	// converters[slot]: input slots for MSDW, output slots for MAW.
	converters []fabric.ElemID

	conns   map[int]wdm.Connection
	nextID  int
	srcBusy map[wdm.PortWave]int // slot -> connection id
	dstBusy map[wdm.PortWave]int
}

// New builds a square N x N crossbar switch of the given model. It panics
// on invalid dimensions (a constructor-time programming error).
func New(model wdm.Model, dim wdm.Dim) *Switch {
	return NewShape(model, dim.Shape())
}

// NewShape builds a (possibly rectangular) crossbar switch with a full
// gate-level fabric.
func NewShape(model wdm.Model, shape wdm.Shape) *Switch {
	s := newSwitch(model, shape)
	s.fab = fabric.New()
	switch model {
	case wdm.MSW:
		s.buildMSW()
	case wdm.MSDW, wdm.MAW:
		s.buildMatrix()
	default:
		panic(fmt.Sprintf("crossbar: unknown model %v", model))
	}
	if err := s.fab.Validate(); err != nil {
		panic("crossbar: construction bug: " + err.Error())
	}
	return s
}

// NewLite builds a switch with identical routing behaviour but no element
// graph. Lite switches cannot Verify; their Cost comes from the paper's
// closed forms.
func NewLite(model wdm.Model, shape wdm.Shape) *Switch {
	switch model {
	case wdm.MSW, wdm.MSDW, wdm.MAW:
	default:
		panic(fmt.Sprintf("crossbar: unknown model %v", model))
	}
	return newSwitch(model, shape)
}

func newSwitch(model wdm.Model, shape wdm.Shape) *Switch {
	if err := shape.Validate(); err != nil {
		panic("crossbar: " + err.Error())
	}
	return &Switch{
		shape:   shape,
		model:   model,
		conns:   make(map[int]wdm.Connection),
		srcBusy: make(map[wdm.PortWave]int),
		dstBusy: make(map[wdm.PortWave]int),
	}
}

// buildMSW realizes Figs. 4-5: per input port a demux; per wavelength
// plane an In x Out splitter/gate/combiner crossbar; per output port a
// mux.
func (s *Switch) buildMSW() {
	in, out, k := s.shape.In, s.shape.Out, s.shape.K
	f := s.fab

	demux := make([]fabric.ElemID, in)
	for q := 0; q < in; q++ {
		term := f.AddInput(wdm.Port(q))
		demux[q] = f.AddDemux(fmt.Sprintf("demux-in%d", q))
		f.Connect(term, demux[q])
	}
	mux := make([]fabric.ElemID, out)
	for p := 0; p < out; p++ {
		term := f.AddOutput(wdm.Port(p))
		mux[p] = f.AddMux(fmt.Sprintf("mux-out%d", p))
		f.Connect(mux[p], term)
	}

	// Demux outputs must be attached in wavelength order, so iterate
	// wavelengths innermost per input port.
	splitters := make([][]fabric.ElemID, in) // [q][w]
	for q := 0; q < in; q++ {
		splitters[q] = make([]fabric.ElemID, k)
		for w := 0; w < k; w++ {
			sp := f.AddSplitter(fmt.Sprintf("split-in%d-λ%d", q, w))
			splitters[q][w] = sp
			f.Connect(demux[q], sp) // w-th connect = λw branch
		}
	}
	combiners := make([][]fabric.ElemID, out) // [p][w]
	for p := 0; p < out; p++ {
		combiners[p] = make([]fabric.ElemID, k)
		for w := 0; w < k; w++ {
			cb := f.AddCombiner(fmt.Sprintf("comb-out%d-λ%d", p, w))
			combiners[p][w] = cb
			f.Connect(cb, mux[p])
		}
	}
	s.planeGates = make([][][]fabric.ElemID, k)
	for w := 0; w < k; w++ {
		s.planeGates[w] = make([][]fabric.ElemID, in)
		for q := 0; q < in; q++ {
			s.planeGates[w][q] = make([]fabric.ElemID, out)
			for p := 0; p < out; p++ {
				g := f.AddGate(fmt.Sprintf("gate-λ%d-%d>%d", w, q, p))
				s.planeGates[w][q][p] = g
				f.Connect(splitters[q][w], g)
				f.Connect(g, combiners[p][w])
			}
		}
	}
}

// buildMatrix realizes Figs. 6-7: a full (In*k) x (Out*k) gate matrix.
// Converters sit at input slots (MSDW) or output slots (MAW).
func (s *Switch) buildMatrix() {
	in, out, k := s.shape.In, s.shape.Out, s.shape.K
	f := s.fab

	demux := make([]fabric.ElemID, in)
	for q := 0; q < in; q++ {
		term := f.AddInput(wdm.Port(q))
		demux[q] = f.AddDemux(fmt.Sprintf("demux-in%d", q))
		f.Connect(term, demux[q])
	}
	mux := make([]fabric.ElemID, out)
	for p := 0; p < out; p++ {
		term := f.AddOutput(wdm.Port(p))
		mux[p] = f.AddMux(fmt.Sprintf("mux-out%d", p))
		f.Connect(mux[p], term)
	}

	inSlots, outSlots := in*k, out*k
	convCount := inSlots
	if s.model == wdm.MAW {
		convCount = outSlots
	}
	s.converters = make([]fabric.ElemID, convCount)

	// Input side: demux branch -> (converter for MSDW) -> splitter.
	splitters := make([]fabric.ElemID, inSlots)
	for q := 0; q < in; q++ {
		for w := 0; w < k; w++ {
			slot := q*k + w
			sp := f.AddSplitter(fmt.Sprintf("split-in%d-λ%d", q, w))
			splitters[slot] = sp
			if s.model == wdm.MSDW {
				cv := f.AddConverter(fmt.Sprintf("conv-in%d-λ%d", q, w))
				s.converters[slot] = cv
				f.Connect(demux[q], cv) // w-th connect = λw branch
				f.Connect(cv, sp)
			} else {
				f.Connect(demux[q], sp)
			}
		}
	}

	// Output side: combiner -> (converter for MAW) -> mux.
	combiners := make([]fabric.ElemID, outSlots)
	for p := 0; p < out; p++ {
		for w := 0; w < k; w++ {
			slot := p*k + w
			cb := f.AddCombiner(fmt.Sprintf("comb-out%d-λ%d", p, w))
			combiners[slot] = cb
			if s.model == wdm.MAW {
				cv := f.AddConverter(fmt.Sprintf("conv-out%d-λ%d", p, w))
				s.converters[slot] = cv
				f.Connect(cb, cv)
				f.Connect(cv, mux[p])
			} else {
				f.Connect(cb, mux[p])
			}
		}
	}

	s.matrixGates = make([][]fabric.ElemID, inSlots)
	for i := 0; i < inSlots; i++ {
		s.matrixGates[i] = make([]fabric.ElemID, outSlots)
		for o := 0; o < outSlots; o++ {
			g := f.AddGate(fmt.Sprintf("gate-%d>%d", i, o))
			s.matrixGates[i][o] = g
			f.Connect(splitters[i], g)
			f.Connect(g, combiners[o])
		}
	}
}

// Shape returns the switch's port/wavelength shape.
func (s *Switch) Shape() wdm.Shape { return s.shape }

// Model returns the switch's multicast model.
func (s *Switch) Model() wdm.Model { return s.model }

// Lite reports whether the switch was built without an element graph.
func (s *Switch) Lite() bool { return s.fab == nil }

// Fabric exposes the underlying element graph (nil for lite switches).
func (s *Switch) Fabric() *fabric.Fabric { return s.fab }

// Connections returns a snapshot of the held connections keyed by id.
func (s *Switch) Connections() map[int]wdm.Connection {
	out := make(map[int]wdm.Connection, len(s.conns))
	for id, c := range s.conns {
		out[id] = c.Clone()
	}
	return out
}

// Connection returns the held connection with the given id.
func (s *Switch) Connection(id int) (wdm.Connection, bool) {
	c, ok := s.conns[id]
	if !ok {
		return wdm.Connection{}, false
	}
	return c.Clone(), true
}

// Len returns the number of held connections.
func (s *Switch) Len() int { return len(s.conns) }

// SourceBusy reports whether an input slot is carrying a connection.
func (s *Switch) SourceBusy(slot wdm.PortWave) bool {
	_, busy := s.srcBusy[slot]
	return busy
}

// DestBusy reports whether an output slot is carrying a connection.
func (s *Switch) DestBusy(slot wdm.PortWave) bool {
	_, busy := s.dstBusy[slot]
	return busy
}
