package crossbar

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/wdm"
)

// ErrVerifyLite is returned by Verify on switches built with NewLite.
var ErrVerifyLite = errors.New("crossbar: lite switch has no fabric to verify")

// Add routes a new multicast connection through the switch. It returns a
// connection id usable with Release. Add fails if the connection is
// inadmissible under the switch's model, if its source slot already
// carries a connection, or if any destination slot is already in use.
//
// Because the crossbar designs are strictly nonblocking, admissibility of
// the *assignment* (this connection plus the held ones) is the only
// requirement: Add never fails for lack of internal paths.
func (s *Switch) Add(c wdm.Connection) (int, error) {
	if err := s.shape.CheckConnection(s.model, c); err != nil {
		return 0, err
	}
	if id, busy := s.srcBusy[c.Source]; busy {
		return 0, fmt.Errorf("crossbar: source slot %v already used by connection %d", c.Source, id)
	}
	for _, d := range c.Dests {
		if id, busy := s.dstBusy[d]; busy {
			return 0, fmt.Errorf("crossbar: destination slot %v already used by connection %d", d, id)
		}
	}

	c = c.Normalize()
	id := s.nextID
	s.nextID++

	if s.fab != nil {
		s.configureFabric(c, true)
		s.fab.Inject(c.Source, id)
	}
	s.conns[id] = c
	s.srcBusy[c.Source] = id
	for _, d := range c.Dests {
		s.dstBusy[d] = id
	}
	return id, nil
}

// configureFabric turns a connection's gates (and converters) on or off.
func (s *Switch) configureFabric(c wdm.Connection, on bool) {
	k := s.shape.K
	switch s.model {
	case wdm.MSW:
		w := int(c.Source.Wave)
		for _, d := range c.Dests {
			s.fab.SetGate(s.planeGates[w][c.Source.Port][d.Port], on)
		}
	case wdm.MSDW:
		in := c.Source.Index(k)
		// One converter, before the splitter, retunes the whole multicast
		// to the common destination wavelength.
		target := c.Dests[0].Wave
		if !on {
			target = fabric.NoConversion
		}
		s.fab.SetConverter(s.converters[in], target)
		for _, d := range c.Dests {
			s.fab.SetGate(s.matrixGates[in][d.Index(k)], on)
		}
	case wdm.MAW:
		in := c.Source.Index(k)
		for _, d := range c.Dests {
			out := d.Index(k)
			s.fab.SetGate(s.matrixGates[in][out], on)
			// The output-side converter retunes this destination's copy.
			target := d.Wave
			if !on {
				target = fabric.NoConversion
			}
			s.fab.SetConverter(s.converters[out], target)
		}
	}
}

// Release tears down a held connection, restoring all fabric state it
// occupied.
func (s *Switch) Release(id int) error {
	c, ok := s.conns[id]
	if !ok {
		return fmt.Errorf("crossbar: no connection with id %d", id)
	}
	if s.fab != nil {
		s.configureFabric(c, false)
	}
	delete(s.conns, id)
	delete(s.srcBusy, c.Source)
	for _, d := range c.Dests {
		delete(s.dstBusy, d)
	}
	if s.fab != nil {
		// Re-derive injections from the surviving connections.
		s.fab.ClearSignals()
		for cid, cc := range s.conns {
			s.fab.Inject(cc.Source, cid)
		}
	}
	return nil
}

// Reset releases every held connection at once.
func (s *Switch) Reset() {
	ids := make([]int, 0, len(s.conns))
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := s.Release(id); err != nil {
			panic("crossbar: Reset lost track of connection: " + err.Error())
		}
	}
}

// AddAssignment routes every connection of an assignment, returning the
// ids in order. On failure it rolls back the connections it added.
func (s *Switch) AddAssignment(a wdm.Assignment) ([]int, error) {
	ids := make([]int, 0, len(a))
	for i, c := range a {
		id, err := s.Add(c)
		if err != nil {
			for _, rid := range ids {
				_ = s.Release(rid)
			}
			return nil, fmt.Errorf("connection %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Verify optically validates the switch: it propagates every held
// connection's signal through the element graph and checks that each
// connection is delivered to exactly its destination slots — no drops, no
// strays, no collisions. It returns the propagation result for inspection
// (power loss, hop counts) alongside any fault.
func (s *Switch) Verify() (*fabric.Result, error) {
	if s.fab == nil {
		return nil, ErrVerifyLite
	}
	res, err := s.fab.Propagate()
	if err != nil {
		return nil, err
	}
	// Expected arrivals: destination slot -> connection id.
	expected := make(map[wdm.PortWave]int)
	for id, c := range s.conns {
		for _, d := range c.Dests {
			expected[d] = id
		}
	}
	for slot, want := range expected {
		got, ok := res.Arrived[slot]
		if !ok {
			return res, fmt.Errorf("crossbar: connection %d signal missing at %v", want, slot)
		}
		if got.ID != want {
			return res, fmt.Errorf("crossbar: slot %v received signal %d, want %d", slot, got.ID, want)
		}
	}
	for slot, sig := range res.Arrived {
		if _, ok := expected[slot]; !ok {
			return res, fmt.Errorf("crossbar: stray signal %d arrived at unexpected slot %v", sig.ID, slot)
		}
	}
	return res, nil
}
