// Quickstart: build a nonblocking WDM multicast crossbar, route a few
// multicast connections, verify them optically, and inspect the hardware
// cost — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/wdm"
)

func main() {
	// A 4x4 switch with 2 wavelengths per fiber under the MAW model: any
	// connection may change wavelengths per destination (Fig. 7).
	net, err := core.New(core.Spec{
		N: 4, K: 2,
		Model:        wdm.MAW,
		Architecture: core.Crossbar,
	})
	if err != nil {
		log.Fatal(err)
	}

	slot := func(p, w int) wdm.PortWave {
		return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
	}

	// A video stream from port 0 on λ0, multicast to three receivers —
	// each on whatever wavelength is free at its port.
	stream := wdm.Connection{
		Source: slot(0, 0),
		Dests:  []wdm.PortWave{slot(1, 1), slot(2, 0), slot(3, 0)},
	}
	id, err := net.Add(stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed multicast %d: %v\n", id, stream)

	// WDM lets the same source port carry a second, different stream on
	// its other wavelength — impossible in a single-wavelength switch.
	second := wdm.Connection{
		Source: slot(0, 1),
		Dests:  []wdm.PortWave{slot(1, 0), slot(3, 1)},
	}
	id2, err := net.Add(second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed multicast %d: %v\n", id2, second)

	// Optically verify: signals are propagated through the splitter /
	// SOA-gate / combiner / converter fabric and must arrive exactly at
	// the destination slots.
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("optical verification passed: every signal delivered, no collisions")

	cost := net.Cost()
	fmt.Printf("hardware: %d crosspoints (SOA gates), %d wavelength converters, %d splitters, %d combiners\n",
		cost.Crosspoints, cost.Converters, cost.Splitters, cost.Combiners)

	// The multicast capacity under this model (Lemma 2).
	fmt.Printf("multicast capacity: %s full assignments, %s including partial ones\n",
		core.FullCapacity(core.Spec{N: 4, K: 2, Model: wdm.MAW}),
		core.AnyCapacity(core.Spec{N: 4, K: 2, Model: wdm.MAW}))

	// Tear down the first stream; its slots become reusable.
	if err := net.Release(id); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released multicast %d; %d connection(s) remain\n", id, net.Len())
}
