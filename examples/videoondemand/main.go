// Video-on-demand: two head-end servers fan six live titles out to
// subscriber ports, comparing what the MSW and MAW multicast models can
// admit for the *same* demand.
//
// Each title is broadcast from a fixed server transmitter, i.e. a fixed
// (port, wavelength) source slot. Under MSW a title keeps its wavelength
// end to end, so a subscriber can watch at most one title per wavelength
// class: wanting two titles that happen to share a wavelength is a hard
// denial even with idle receivers. Under MAW the switch converts
// wavelengths per destination, so any idle receiver serves any title —
// at the price of k^2N^2 crosspoints and kN converters instead of kN^2
// and none. This example measures that admission gap on identical
// per-subscriber wishlists: the cost/performance trade-off of Table 1
// expressed in workload terms.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/wdm"
)

const (
	nPorts   = 8 // ports 0-1: head-end servers; 2-7: subscribers
	kWaves   = 3
	titles   = 6 // title t streams from server t%2 on wavelength t/2
	wishSize = 3 // titles each subscriber wants
)

// titleSource returns the fixed transmitter slot of a title.
func titleSource(t int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(t % 2), Wave: wdm.Wavelength(t / 2)}
}

type headEnd struct {
	net    core.Network
	model  wdm.Model
	treeID map[int]int            // title -> live connection id
	leaves map[int][]wdm.PortWave // title -> destination slots
	rxBusy map[wdm.PortWave]bool  // subscriber receiver occupancy
}

func newHeadEnd(model wdm.Model) *headEnd {
	net, err := core.New(core.Spec{N: nPorts, K: kWaves, Model: model, Architecture: core.Crossbar})
	if err != nil {
		log.Fatal(err)
	}
	return &headEnd{
		net: net, model: model,
		treeID: map[int]int{}, leaves: map[int][]wdm.PortWave{},
		rxBusy: map[wdm.PortWave]bool{},
	}
}

// join adds subscriber port sub to title t's multicast tree if the model
// admits it. Tree growth is modelled as release-and-rebuild with one more
// leaf (make-before-break at the switch level).
func (h *headEnd) join(t, sub int) bool {
	src := titleSource(t)
	var leaf wdm.PortWave
	switch h.model {
	case wdm.MSW:
		// The only admissible receiver is the title's own wavelength.
		leaf = wdm.PortWave{Port: wdm.Port(sub), Wave: src.Wave}
		if h.rxBusy[leaf] {
			return false
		}
	case wdm.MAW:
		found := false
		for w := 0; w < kWaves; w++ {
			cand := wdm.PortWave{Port: wdm.Port(sub), Wave: wdm.Wavelength(w)}
			if !h.rxBusy[cand] {
				leaf, found = cand, true
				break
			}
		}
		if !found {
			return false
		}
	default:
		log.Fatalf("unsupported model %v", h.model)
	}

	if id, live := h.treeID[t]; live {
		if err := h.net.Release(id); err != nil {
			log.Fatal(err)
		}
	}
	dests := append(append([]wdm.PortWave{}, h.leaves[t]...), leaf)
	id, err := h.net.Add(wdm.Connection{Source: src, Dests: dests})
	if err != nil {
		if len(h.leaves[t]) > 0 { // restore the old tree
			old, err2 := h.net.Add(wdm.Connection{Source: src, Dests: h.leaves[t]})
			if err2 != nil {
				log.Fatal(err2)
			}
			h.treeID[t] = old
		} else {
			delete(h.treeID, t)
		}
		return false
	}
	h.treeID[t] = id
	h.leaves[t] = dests
	h.rxBusy[leaf] = true
	return true
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Every subscriber wants wishSize distinct titles.
	type wish struct{ sub, title int }
	var demand []wish
	for sub := 2; sub < nPorts; sub++ {
		for _, t := range rng.Perm(titles)[:wishSize] {
			demand = append(demand, wish{sub: sub, title: t})
		}
	}

	fmt.Printf("%d subscribers x %d wanted titles = %d joins requested\n\n", nPorts-2, wishSize, len(demand))
	results := map[wdm.Model]int{}
	for _, model := range []wdm.Model{wdm.MSW, wdm.MAW} {
		h := newHeadEnd(model)
		admitted := 0
		for _, w := range demand {
			if h.join(w.title, w.sub) {
				admitted++
			}
		}
		if err := h.net.Verify(); err != nil {
			log.Fatal(err)
		}
		results[model] = admitted
		cost := h.net.Cost()
		fmt.Printf("%-4v  admitted %2d / %2d joins (%2d denied)   hardware: %3d crosspoints, %2d converters\n",
			model, admitted, len(demand), len(demand)-admitted, cost.Crosspoints, cost.Converters)
	}

	fmt.Printf("\nMAW admits %d more joins than MSW on identical demand: wishlists that\n",
		results[wdm.MAW]-results[wdm.MSW])
	fmt.Println("collide on a wavelength class are only satisfiable with per-destination")
	fmt.Println("conversion. The price is k^2N^2 vs kN^2 crosspoints plus kN converters —")
	fmt.Println("Table 1's cost/performance trade-off, measured on a VoD workload.")
}
