// capacitytable regenerates the paper's Table 1 (multicast capacities and
// crossbar costs per model) for a range of sizes, cross-checking every
// closed form that is small enough against brute-force enumeration and
// every cost row against an element count of the actually-constructed
// switch fabric.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/report"
	"repro/internal/wdm"
)

func main() {
	fmt.Println("Reproduction of Table 1 — 'Comparison of WDM Multicast Networks Under Different Models'")
	fmt.Println()

	type size struct{ n, k int }
	sizes := []size{{2, 2}, {3, 2}, {2, 3}, {4, 2}, {4, 4}, {8, 4}}

	capTab := report.New("Multicast capacity (full / any multicast assignments)",
		"N", "k", "model", "full", "any")
	for _, s := range sizes {
		for _, m := range wdm.Models {
			capTab.AddRow(report.Int(s.n), report.Int(s.k), m.String(),
				report.Big(capacity.Full(m, int64(s.n), int64(s.k))),
				report.Big(capacity.Any(m, int64(s.n), int64(s.k))))
		}
	}
	capTab.Fprint(os.Stdout)

	fmt.Println()
	costTab := report.New("Crossbar cost (audited by counting elements of the constructed fabric)",
		"N", "k", "model", "crosspoints", "formula", "converters", "formula")
	for _, s := range sizes {
		for _, m := range wdm.Models {
			sw := crossbar.New(m, wdm.Dim{N: s.n, K: s.k})
			c := sw.Cost()
			fx := crossbar.FormulaCrosspoints(m, s.n, s.k)
			fc := crossbar.FormulaConverters(m, s.n, s.k)
			if c.Crosspoints != fx || c.Converters != fc {
				log.Fatalf("audit mismatch at N=%d k=%d %v: %+v", s.n, s.k, m, c)
			}
			costTab.AddRow(report.Int(s.n), report.Int(s.k), m.String(),
				report.Int(c.Crosspoints), report.Int(fx),
				report.Int(c.Converters), report.Int(fc))
		}
	}
	costTab.Footnote = "every audited count equals its Table 1 closed form"
	costTab.Fprint(os.Stdout)

	fmt.Println()
	fmt.Println("Enumeration cross-check (every admissible assignment counted by brute force):")
	for _, s := range []size{{2, 2}, {3, 2}, {2, 3}} {
		d := wdm.Dim{N: s.n, K: s.k}
		for _, m := range wdm.Models {
			enum := capacity.CountByEnumeration(m, d, false)
			lemma := capacity.Any(m, int64(s.n), int64(s.k))
			status := "OK"
			if enum.Cmp(lemma) != 0 {
				status = "MISMATCH"
			}
			fmt.Printf("  N=%d k=%d %-4v: enumerated %-8s lemma %-8s %s\n", s.n, s.k, m, enum, lemma, status)
			if status != "OK" {
				log.Fatal("enumeration disagrees with the lemma")
			}
		}
	}
}
