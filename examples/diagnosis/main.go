// Diagnosis: operating an undersized WDM multicast network.
//
// Strictly nonblocking middle-stage counts are expensive; operators run
// leaner networks and manage the consequences. This example walks the
// toolkit for that mode of operation on a deliberately undersized
// three-stage network:
//
//  1. a request blocks — Explain shows exactly which middle modules were
//     unavailable and which destination modules stayed uncovered;
//  2. the whole incident is recorded as a replayable trace;
//  3. rearrangeable operation (AddWithRepack) recovers the request by
//     re-striping existing connections;
//  4. a middle module fails outright — affected connections are
//     enumerated and re-routed around it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/multistage"
	"repro/internal/trace"
	"repro/internal/wdm"
)

func pw(p, w int) wdm.PortWave {
	return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
}

func conn(src wdm.PortWave, dests ...wdm.PortWave) wdm.Connection {
	return wdm.Connection{Source: src, Dests: dests}
}

func main() {
	// N=6 ports in r=3 modules of 2, k=1, just m=2 middle modules
	// (Theorem 1 wants 4): lean, and it will show.
	net, err := multistage.New(multistage.Params{
		N: 6, K: 1, R: 3, M: 2, X: 1, Model: wdm.MSW, Lite: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := trace.NewRecorder(net, multistage.IsBlocked)

	// The hand-derived blocked-but-rearrangeable state from the repack
	// tests: three connections that pin both middles' critical links.
	for _, c := range []wdm.Connection{
		conn(pw(1, 0), pw(5, 0)),
		conn(pw(4, 0), pw(0, 0)),
		conn(pw(5, 0), pw(2, 0)),
	} {
		if _, err := rec.Add(c); err != nil {
			log.Fatal(err)
		}
	}

	// 1. The next request blocks; ask the router why.
	request := conn(pw(0, 0), pw(3, 0))
	ex, err := net.Explain(request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- why is this request blocked? ---")
	fmt.Print(ex)

	// 2. Record the blocking event itself so the incident replays.
	if _, err := rec.Add(request); !multistage.IsBlocked(err) {
		log.Fatalf("expected blocking, got %v", err)
	}
	fmt.Println("\n--- incident trace (replayable with wdmtrace) ---")
	if err := rec.Trace().Write(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 3. Recover by rearrangement: the demand is König-colorable with
	// m=2, only the arrival order hid it.
	id, repacked, err := net.AddWithRepack(request)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- rearrangeable recovery ---\nrepacked=%v: request now carried as connection %d\n", repacked, id)
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}

	// 4. A middle module dies; re-route its traffic.
	victim := 0
	affected := net.AffectedBy(victim)
	if err := net.FailMiddle(victim); err != nil {
		log.Fatal(err)
	}
	restored, dropped, err := net.RerouteAround(victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- middle module %d failed ---\naffected connections: %v, restored: %v, dropped: %v\n",
		victim, affected, restored, dropped)
	fmt.Println("(with only one middle left, some connections cannot be saved — that is the")
	fmt.Println(" provisioning trade-off the nonblocking bounds price out)")
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
}
