// Fault tolerance: optical verification as a built-in self-test.
//
// The paper's networks have no optical RAM — blocked or misrouted light
// is simply lost — so detecting hardware faults (an SOA gate stuck off,
// a converter mistuned) matters operationally. Because this library
// models switches at the element level, every held connection can be
// re-propagated through the fabric at any time and compared against its
// expected delivery set. This example injects three classes of fault
// into a live MAW crossbar and shows each being caught, then repairs
// them and shows verification going clean again.
package main

import (
	"fmt"
	"log"

	"repro/internal/crossbar"
	"repro/internal/fabric"
	"repro/internal/wdm"
)

func main() {
	dim := wdm.Dim{N: 4, K: 2}
	sw := crossbar.New(wdm.MAW, dim)
	slot := func(p, w int) wdm.PortWave {
		return wdm.PortWave{Port: wdm.Port(p), Wave: wdm.Wavelength(w)}
	}
	if _, err := sw.Add(wdm.Connection{
		Source: slot(0, 0),
		Dests:  []wdm.PortWave{slot(1, 1), slot(2, 0), slot(3, 0)},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := sw.Add(wdm.Connection{
		Source: slot(1, 0),
		Dests:  []wdm.PortWave{slot(0, 0)},
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := sw.Verify(); err != nil {
		log.Fatal("healthy switch failed verification: ", err)
	}
	fmt.Println("baseline: 2 multicasts live, optical self-test clean")

	fab := sw.Fabric()

	// Fault 1: a gate in use sticks OFF — part of a multicast goes dark.
	var stuckOff fabric.ElemID = -1
	for _, g := range fab.ElementsOf(fabric.Gate) {
		if fab.GateOn(g) {
			stuckOff = g
			break
		}
	}
	fab.SetGate(stuckOff, false)
	if _, err := sw.Verify(); err != nil {
		fmt.Println("fault 1 (gate stuck off) detected:", err)
	} else {
		log.Fatal("stuck-off gate went undetected")
	}
	fab.SetGate(stuckOff, true) // field repair

	// Fault 2: an idle gate on a lit splitter row sticks ON — light
	// leaks toward a slot that may already be in use.
	var stuckOn fabric.ElemID = -1
	for _, g := range fab.ElementsOf(fabric.Gate) {
		if !fab.GateOn(g) {
			fab.SetGate(g, true)
			if _, err := sw.Verify(); err != nil {
				stuckOn = g
				fmt.Println("fault 2 (gate stuck on) detected:", err)
				break
			}
			fab.SetGate(g, false) // this one was dark; try the next
		}
	}
	if stuckOn == -1 {
		log.Fatal("no stuck-on gate produced a detectable fault")
	}
	fab.SetGate(stuckOn, false)

	// Fault 3: an output converter drifts to the wrong wavelength — the
	// signal arrives, but at the wrong slot.
	drifted := false
	for _, cv := range fab.ElementsOf(fabric.Converter) {
		if tgt := fab.ConverterTarget(cv); tgt != fabric.NoConversion {
			fab.SetConverter(cv, (tgt+1)%wdm.Wavelength(dim.K))
			drifted = true
			break
		}
	}
	if !drifted {
		log.Fatal("no active converter found to drift")
	}
	if _, err := sw.Verify(); err != nil {
		fmt.Println("fault 3 (converter drift) detected:", err)
	} else {
		log.Fatal("converter drift went undetected")
	}

	// Repair by re-driving the switch state: release and re-add the
	// affected connections (a controller's natural recovery action —
	// releasing retunes every converter the connection owned).
	conns := sw.Connections()
	sw.Reset()
	for _, c := range conns {
		if _, err := sw.Add(c); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := sw.Verify(); err != nil {
		log.Fatal("repair failed: ", err)
	}
	fmt.Println("repaired: connections re-driven, optical self-test clean again")
}
