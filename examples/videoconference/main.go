// Video conferencing on a three-stage WDM multicast network.
//
// The paper's introduction motivates WDM multicast with exactly this
// workload: in a conference, every participant transmits to all others
// (one multicast per speaker) and every participant receives several
// streams at once — which a single-wavelength network cannot do, since
// each destination can receive at most one message at a time, but a
// k-wavelength receiver array handles naturally.
//
// This example hosts two overlapping 4-party conferences on a 16-port
// 4-wavelength MSW-dominant three-stage network sized by Theorem 1, shows
// that every participant concurrently receives all streams of their
// conference, then churns conferences (teardown + re-admission) to show
// the nonblocking property under dynamic membership.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/multistage"
	"repro/internal/wdm"
)

// conference wires a full mesh: participant i multicasts on wavelength
// ch[i] to every other participant's wavelength ch[i] (MSW model: one
// wavelength per stream end to end — no converters needed anywhere).
type conference struct {
	name    string
	members []int            // network ports
	chans   []wdm.Wavelength // one transmit wavelength per member
	ids     []int            // live connection ids
}

func (c *conference) admit(net core.Network) error {
	for i, speaker := range c.members {
		conn := wdm.Connection{
			Source: wdm.PortWave{Port: wdm.Port(speaker), Wave: c.chans[i]},
		}
		for j, listener := range c.members {
			if j == i {
				continue
			}
			conn.Dests = append(conn.Dests, wdm.PortWave{Port: wdm.Port(listener), Wave: c.chans[i]})
		}
		id, err := net.Add(conn)
		if err != nil {
			return fmt.Errorf("conference %s speaker p%d: %w", c.name, speaker, err)
		}
		c.ids = append(c.ids, id)
	}
	return nil
}

func (c *conference) leave(net core.Network) error {
	for _, id := range c.ids {
		if err := net.Release(id); err != nil {
			return err
		}
	}
	c.ids = nil
	return nil
}

func main() {
	const N, K = 16, 4
	spec := core.Spec{
		N: N, K: K,
		Model:        wdm.MSW, // same wavelength end to end: zero converters
		Architecture: core.ThreeStage,
		R:            4,
		Construction: multistage.MSWDominant,
	}
	net, err := core.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	cost := net.Cost()
	fmt.Printf("three-stage MSW network: N=%d, k=%d, %d crosspoints, %d converters\n",
		N, K, cost.Crosspoints, cost.Converters)

	// Conference A: ports 0,3,5,9 — each speaker on their own wavelength
	// so the four streams coexist at every member port.
	confA := &conference{
		name:    "A",
		members: []int{0, 3, 5, 9},
		chans:   []wdm.Wavelength{0, 1, 2, 3},
	}
	// Conference B runs concurrently on disjoint ports.
	confB := &conference{
		name:    "B",
		members: []int{10, 12, 14},
		chans:   []wdm.Wavelength{0, 1, 2},
	}

	if err := confA.admit(net); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conference A admitted: 4 speakers x fanout 3 = %d multicasts live\n", net.Len())

	if err := confB.admit(net); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conference B admitted: %d multicasts live\n", net.Len())

	// The WDM selling point: one participant can attend two sessions at
	// once. Port 5 already receives conference A's three streams (on λ0,
	// λ1, λ3 — it transmits on λ2, so its receiver λ2 is idle); B's
	// member at port 12 now streams a side channel to it on that very λ2.
	// Under MSW the stream keeps one wavelength end to end, and port 12's
	// transmitter array has λ2 free (its conference stream uses λ1).
	side := wdm.Connection{
		Source: wdm.PortWave{Port: 12, Wave: 2},
		Dests:  []wdm.PortWave{{Port: 5, Wave: 2}},
	}
	if _, err := net.Add(side); err != nil {
		log.Fatal(err)
	}
	fmt.Println("side stream p12 -> p5 on λ2: port 5 now receives 4 concurrent streams")

	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verification passed: every participant receives every stream of their conference")

	// Churn: conference A ends, a new conference C reuses its slots.
	if err := confA.leave(net); err != nil {
		log.Fatal(err)
	}
	confC := &conference{
		name:    "C",
		members: []int{0, 1, 2, 3},
		chans:   []wdm.Wavelength{0, 1, 2, 3},
	}
	if err := confC.admit(net); err != nil {
		log.Fatal(err)
	}
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conference A left, conference C admitted in its place; %d multicasts live\n", net.Len())
	fmt.Println("dynamic membership handled with zero blocking, as Theorem 1 guarantees")
}
