// closdesigner explores the crossbar-vs-multistage cost landscape of
// Table 2: for a sweep of network sizes it prints the cheapest
// nonblocking three-stage factorization next to the crossbar, showing
// where the multistage design overtakes (the O(kN^2) vs
// O(kN^1.5 log N / log log N) crossover) and how the MSW-dominant
// construction compares to the MAW-dominant one.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/report"
	"repro/internal/wdm"
)

func main() {
	const k = 2
	model := wdm.MSW

	t := report.New(fmt.Sprintf("Cheapest nonblocking design per size (model %v, k=%d, converter = %0.f crosspoints)",
		model, k, core.DefaultWeights.Converter),
		"N", "crossbar xpts", "best 3-stage", "3-stage xpts", "winner", "saving")
	for _, n := range []int{16, 64, 144, 256, 576, 1024, 4096} {
		cb := crossbar.CostFormula(model, wdm.Shape{In: n, Out: n, K: k})
		opts, err := core.Design(n, k, model, core.DefaultWeights)
		if err != nil {
			log.Fatal(err)
		}
		// Cheapest three-stage option.
		var ms *core.Option
		for i := range opts {
			if opts[i].Spec.Architecture == core.ThreeStage {
				ms = &opts[i]
				break
			}
		}
		if ms == nil {
			t.AddRow(report.Int(n), report.Int(cb.Crosspoints), "none", "-", "crossbar", "-")
			continue
		}
		winner := "crossbar"
		saving := "-"
		if ms.Cost.Crosspoints < cb.Crosspoints {
			winner = "3-stage"
			saving = report.Ratio(float64(cb.Crosspoints), float64(ms.Cost.Crosspoints))
		}
		desc := fmt.Sprintf("r=%d n=%d m=%d %v", ms.Spec.R, ms.Spec.N/ms.Spec.R, ms.Spec.M, ms.Spec.Construction)
		t.AddRow(report.Int(n), report.Int(cb.Crosspoints), desc,
			report.Int(ms.Cost.Crosspoints), winner, saving)
	}
	t.Fprint(os.Stdout)

	fmt.Println()
	fmt.Println("Construction comparison at N=1024 (Section 3.4: MSW-dominant should win):")
	t2 := report.New("", "model", "construction", "m", "crosspoints", "converters")
	for _, m := range wdm.Models {
		for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
			mm, xx := multistage.SufficientMinM(constr, m, 32, 32, k)
			cost, err := multistage.CostFormula(multistage.Params{
				N: 1024, K: k, R: 32, M: mm, X: xx, Model: m, Construction: constr,
			})
			if err != nil {
				log.Fatal(err)
			}
			t2.AddRow(m.String(), constr.String(), report.Int(mm),
				report.Int(cost.Crosspoints), report.Int(cost.Converters))
		}
	}
	t2.Fprint(os.Stdout)
}
