// Package repro's top-level benchmarks regenerate every quantitative
// artifact of the paper — Table 1 (capacities, crosspoints, converters),
// Table 2 (crossbar vs multistage cost), the Theorem 1/2 nonblocking
// bounds, and the blocking-probability validation series — as benchmark
// metrics, so `go test -bench . -benchmem` doubles as the experiment
// harness. EXPERIMENTS.md maps each benchmark to its table or figure.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/analytic"
	"repro/internal/benes"
	"repro/internal/capacity"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// BenchmarkTable1Capacity regenerates Table 1's capacity rows: each
// sub-benchmark reports the full- and any-multicast capacities (as
// log10(x), since the raw counts overflow float64) for one (model, N, k).
func BenchmarkTable1Capacity(b *testing.B) {
	for _, size := range []struct{ n, k int64 }{{2, 2}, {4, 2}, {8, 4}, {16, 8}} {
		for _, m := range wdm.Models {
			b.Run(fmt.Sprintf("%v/N=%d/k=%d", m, size.n, size.k), func(b *testing.B) {
				var fullDigits, anyDigits int
				for i := 0; i < b.N; i++ {
					fullDigits = len(capacity.Full(m, size.n, size.k).String())
					anyDigits = len(capacity.Any(m, size.n, size.k).String())
				}
				b.ReportMetric(float64(fullDigits), "full-digits")
				b.ReportMetric(float64(anyDigits), "any-digits")
			})
		}
	}
}

// BenchmarkTable1Crosspoints regenerates Table 1's cost rows by building
// the real fabric and reporting audited element counts.
func BenchmarkTable1Crosspoints(b *testing.B) {
	for _, size := range []struct{ n, k int }{{4, 2}, {8, 2}, {8, 4}} {
		for _, m := range wdm.Models {
			b.Run(fmt.Sprintf("%v/N=%d/k=%d", m, size.n, size.k), func(b *testing.B) {
				var cost crossbar.Cost
				for i := 0; i < b.N; i++ {
					s := crossbar.New(m, wdm.Dim{N: size.n, K: size.k})
					cost = s.Cost()
				}
				b.ReportMetric(float64(cost.Crosspoints), "crosspoints")
				b.ReportMetric(float64(cost.Converters), "converters")
			})
		}
	}
}

// BenchmarkTable2Cost regenerates Table 2: for each model and size it
// reports the crossbar (CB) and MSW-dominant multistage (MS) crosspoint
// and converter counts. The "who wins and by how much" shape — MS
// overtaking CB as N grows, identical MSDW/MAW crosspoints, the converter
// gap between MSDW and MAW — is the paper's claim.
func BenchmarkTable2Cost(b *testing.B) {
	const k = 2
	for _, n := range []int{64, 256, 1024, 4096} {
		r := squareSplit(n)
		nPer := n / r
		for _, m := range wdm.Models {
			b.Run(fmt.Sprintf("%v/N=%d", m, n), func(b *testing.B) {
				var cb, ms crossbar.Cost
				for i := 0; i < b.N; i++ {
					cb = crossbar.CostFormula(m, wdm.Shape{In: n, Out: n, K: k})
					mm, xx := multistage.SufficientMinM(multistage.MSWDominant, m, nPer, r, k)
					var err error
					ms, err = multistage.CostFormula(multistage.Params{
						N: n, K: k, R: r, M: mm, X: xx, Model: m,
						Construction: multistage.MSWDominant,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cb.Crosspoints), "CB-crosspoints")
				b.ReportMetric(float64(ms.Crosspoints), "MS-crosspoints")
				b.ReportMetric(float64(cb.Converters), "CB-converters")
				b.ReportMetric(float64(ms.Converters), "MS-converters")
				b.ReportMetric(float64(cb.Crosspoints)/float64(ms.Crosspoints), "CB/MS-ratio")
			})
		}
	}
}

// BenchmarkTheorem1Bound reports the minimal middle-stage count and the
// optimizing split limit x for the MSW-dominant construction.
func BenchmarkTheorem1Bound(b *testing.B) {
	for _, nr := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {32, 32}, {64, 64}} {
		n, r := nr[0], nr[1]
		b.Run(fmt.Sprintf("n=%d/r=%d", n, r), func(b *testing.B) {
			var m, x int
			for i := 0; i < b.N; i++ {
				m = multistage.Theorem1MinM(n, r)
				x = multistage.Theorem1BestX(n, r)
			}
			b.ReportMetric(float64(m), "min-m")
			b.ReportMetric(float64(x), "best-x")
			b.ReportMetric(float64(multistage.AsymptoticM(n, r)), "asymptotic-m")
		})
	}
}

// BenchmarkTheorem2Bound does the same for the MAW-dominant construction,
// sweeping k to show its bound's (mild) wavelength dependence.
func BenchmarkTheorem2Bound(b *testing.B) {
	for _, nr := range [][2]int{{8, 8}, {16, 16}, {32, 32}} {
		for _, k := range []int{1, 2, 4, 8} {
			n, r := nr[0], nr[1]
			b.Run(fmt.Sprintf("n=%d/r=%d/k=%d", n, r, k), func(b *testing.B) {
				var m int
				for i := 0; i < b.N; i++ {
					m = multistage.Theorem2MinM(n, r, k)
				}
				b.ReportMetric(float64(m), "min-m")
				b.ReportMetric(float64(multistage.Theorem1MinM(n, r)), "theorem1-m")
			})
		}
	}
}

// BenchmarkBlockingVsM runs the dynamic-traffic validation series: the
// blocking probability at fractions of the sufficient middle-stage bound.
// P_block must be 0 at the bound (metric "pblock-at-bound") and clearly
// positive at a quarter of it — the empirical content of Theorems 1/2.
func BenchmarkBlockingVsM(b *testing.B) {
	base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
	suffM, _ := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, 4, 4, 2)
	for _, frac := range []struct {
		name string
		m    int
	}{
		{"m=quarter", max(1, suffM/4)},
		{"m=half", max(1, suffM/2)},
		{"m=bound", suffM},
	} {
		b.Run(frac.name, func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				params := base
				params.M = frac.m
				net, err := multistage.New(params)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(net, sim.Config{
					Seed: int64(i), Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
					Requests: 600, Load: 10, MaxFanout: 8,
					IsBlocked: multistage.IsBlocked,
				})
				if err != nil {
					b.Fatal(err)
				}
				p = res.BlockingProbability()
				if frac.m == suffM && res.Blocked != 0 {
					b.Fatalf("blocked %d requests at the sufficient bound", res.Blocked)
				}
			}
			b.ReportMetric(float64(frac.m), "m")
			b.ReportMetric(p, "pblock")
		})
	}
}

// BenchmarkCrossbarRouting measures connection setup/teardown throughput
// on the gate-level crossbars (one op = one Add + one Release of a
// fanout-4 multicast).
func BenchmarkCrossbarRouting(b *testing.B) {
	for _, m := range wdm.Models {
		b.Run(m.String(), func(b *testing.B) {
			d := wdm.Dim{N: 16, K: 4}
			s := crossbar.New(m, d)
			c := wdm.Connection{
				Source: wdm.PortWave{Port: 0, Wave: 0},
				Dests: []wdm.PortWave{
					{Port: 1, Wave: 0}, {Port: 5, Wave: 0},
					{Port: 9, Wave: 0}, {Port: 13, Wave: 0},
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := s.Add(c)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Release(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMultistageRouting measures end-to-end three-stage routing
// throughput (greedy Lemma 4 middle-stage selection included) for both
// constructions.
func BenchmarkMultistageRouting(b *testing.B) {
	for _, constr := range []multistage.Construction{multistage.MSWDominant, multistage.MAWDominant} {
		b.Run(constr.String(), func(b *testing.B) {
			net, err := multistage.New(multistage.Params{
				N: 64, K: 4, R: 8, Model: wdm.MAW, Construction: constr, Lite: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			c := wdm.Connection{
				Source: wdm.PortWave{Port: 0, Wave: 0},
				Dests: []wdm.PortWave{
					{Port: 9, Wave: 1}, {Port: 18, Wave: 0},
					{Port: 33, Wave: 2}, {Port: 60, Wave: 3},
				},
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id, err := net.Add(c)
				if err != nil {
					b.Fatal(err)
				}
				if err := net.Release(id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpticalPropagation measures signal propagation through a fully
// loaded crossbar fabric and reports the worst-path power loss — the
// paper's projected cost of large splitting fabrics (Section 2.3).
func BenchmarkOpticalPropagation(b *testing.B) {
	for _, m := range wdm.Models {
		b.Run(m.String(), func(b *testing.B) {
			d := wdm.Dim{N: 8, K: 2}
			s := crossbar.New(m, d)
			gen := workload.NewGenerator(1, m, d)
			if _, err := s.AddAssignment(gen.Assignment(true, 0)); err != nil {
				b.Fatal(err)
			}
			var loss float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Verify()
				if err != nil {
					b.Fatal(err)
				}
				loss = res.MaxLossDB
			}
			b.ReportMetric(loss, "max-loss-dB")
		})
	}
}

// BenchmarkEnumerationThroughput measures the backtracking assignment
// enumerator (assignments visited per op) — the engine behind every
// exhaustive verification.
func BenchmarkEnumerationThroughput(b *testing.B) {
	d := wdm.Dim{N: 2, K: 2}
	for _, m := range wdm.Models {
		b.Run(m.String(), func(b *testing.B) {
			var count int
			for i := 0; i < b.N; i++ {
				count = 0
				capacity.EnumerateAssignments(m, d, false, func(wdm.Assignment) bool {
					count++
					return true
				})
			}
			b.ReportMetric(float64(count), "assignments")
		})
	}
}

// BenchmarkFabricScale reports construction cost (time and elements) of
// gate-level fabrics as switches grow — the practical limit that makes
// the Lite mode necessary for Table 2 sweeps.
func BenchmarkFabricScale(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("MAW/N=%d/k=4", n), func(b *testing.B) {
			var elems int
			for i := 0; i < b.N; i++ {
				s := crossbar.New(wdm.MAW, wdm.Dim{N: n, K: 4})
				elems = s.Fabric().Elements()
			}
			b.ReportMetric(float64(elems), "elements")
		})
	}
}

// BenchmarkAblationRoutingStrategy compares the certified greedy
// minimum-intersection middle-module selection (Lemma 4/5) against naive
// first-fit: the metric is the smallest m at which each strategy routes
// heavy dynamic traffic with zero blocking across seeds. DESIGN.md
// ablation 2: the greedy order is what lets m stay at the theorem bound.
func BenchmarkAblationRoutingStrategy(b *testing.B) {
	seeds := []int64{1, 2, 3}
	cfg := sim.Config{Requests: 1200, Load: 10, MaxFanout: 8}
	suffM, _ := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, 4, 4, 2)
	for _, strat := range []multistage.Strategy{multistage.GreedyMinIntersection, multistage.FirstFit} {
		b.Run(strat.String(), func(b *testing.B) {
			var minM int
			for i := 0; i < b.N; i++ {
				base := multistage.Params{
					N: 16, K: 2, R: 4, Model: wdm.MSW, Strategy: strat, Lite: true,
				}
				var err error
				minM, err = sim.FindMinBlockFreeM(base, cfg, seeds, 1, 2*suffM)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(minM), "empirical-min-m")
			b.ReportMetric(float64(suffM), "theorem-m")
		})
	}
}

// BenchmarkAblationLinkSemantics compares the destination-multiset link
// semantics of Eqs. 2-5 (a link is usable while any wavelength is free)
// against plain-set semantics (a touched link is off limits) on the
// MAW-dominant construction. DESIGN.md ablation 3: the multiset
// machinery is what keeps the middle stage small when k > 1.
func BenchmarkAblationLinkSemantics(b *testing.B) {
	seeds := []int64{1, 2, 3}
	cfg := sim.Config{Requests: 1200, Load: 10, MaxFanout: 8}
	suffM, _ := multistage.SufficientMinM(multistage.MAWDominant, wdm.MAW, 4, 4, 4)
	for _, conservative := range []bool{false, true} {
		name := "multiset"
		if conservative {
			name = "plain-set"
		}
		b.Run(name, func(b *testing.B) {
			var minM int
			for i := 0; i < b.N; i++ {
				base := multistage.Params{
					N: 16, K: 4, R: 4, Model: wdm.MAW,
					Construction:      multistage.MAWDominant,
					ConservativeLinks: conservative, Lite: true,
				}
				var err error
				minM, err = sim.FindMinBlockFreeM(base, cfg, seeds, 1, 6*suffM)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(minM), "empirical-min-m")
			b.ReportMetric(float64(suffM), "theorem-m")
		})
	}
}

// BenchmarkUnicastCostHierarchy places the paper's designs in the
// classical unicast cost hierarchy: strictly nonblocking crossbar
// (kN^2) vs the strictly nonblocking multicast Clos of Section 3 vs the
// rearrangeable Beneš baseline (2kN(2log2 N - 1)). The gap between Clos
// and Beneš is the hardware price of strict-sense multicast operation.
func BenchmarkUnicastCostHierarchy(b *testing.B) {
	const k = 2
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var xbar, clos, ben int
			for i := 0; i < b.N; i++ {
				xbar = crossbar.CostFormula(wdm.MSW, wdm.Shape{In: n, Out: n, K: k}).Crosspoints
				r := squareSplit(n)
				mm, xx := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, n/r, r, k)
				cost, err := multistage.CostFormula(multistage.Params{
					N: n, K: k, R: r, M: mm, X: xx, Model: wdm.MSW,
					Construction: multistage.MSWDominant,
				})
				if err != nil {
					b.Fatal(err)
				}
				clos = cost.Crosspoints
				ben = k * benes.Crosspoints(n)
			}
			b.ReportMetric(float64(xbar), "crossbar")
			b.ReportMetric(float64(clos), "clos")
			b.ReportMetric(float64(ben), "benes")
		})
	}
}

// BenchmarkBenesRouting measures the looping algorithm's throughput
// (route one random permutation per op).
func BenchmarkBenesRouting(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			net, err := benes.New(n)
			if err != nil {
				b.Fatal(err)
			}
			perms := make([][]int, 8)
			rng := rand.New(rand.NewSource(1))
			for i := range perms {
				perms[i] = rng.Perm(n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.RoutePermutation(perms[i%len(perms)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOpticalBenes measures gate-level realization of a permutation
// on the Beneš fabric (route + configure + propagate + check) and
// reports the worst-path loss — depth-proportional, unlike the
// crossbar's width-proportional loss.
func BenchmarkOpticalBenes(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			o, err := benes.NewOptical(n)
			if err != nil {
				b.Fatal(err)
			}
			perm := make([]int, n)
			for i := range perm {
				perm[i] = (i + n/2 + 1) % n
			}
			var loss float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := o.Realize(perm)
				if err != nil {
					b.Fatal(err)
				}
				loss = res.MaxLossDB
			}
			b.ReportMetric(loss, "max-loss-dB")
		})
	}
}

// BenchmarkLeeVsSimulation compares the measured blocking probability of
// an undersized three-stage network against Lee's independent-link
// approximation evaluated at the *measured* link occupancy — the
// classical analytical model next to the discrete-event ground truth.
// The two should agree in shape (same order of magnitude, both falling
// with m); exact agreement is not expected since Lee assumes
// independence the router's greedy packing violates.
func BenchmarkLeeVsSimulation(b *testing.B) {
	for _, m := range []int{2, 3, 4, 6} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			var measured, lee float64
			for i := 0; i < b.N; i++ {
				net, err := multistage.New(multistage.Params{
					N: 16, K: 2, R: 4, M: m, X: 1, Model: wdm.MSW, Lite: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(net, sim.Config{
					Seed: 5, Model: wdm.MSW, Dim: wdm.Dim{N: 16, K: 2},
					Requests: 4000, Load: 8, MaxFanout: 1, // unicast: Lee's setting
					IsBlocked: multistage.IsBlocked,
				})
				if err != nil {
					b.Fatal(err)
				}
				measured = res.BlockingProbability()
				u := net.Utilization()
				lee = analytic.LeeBlocking(u.InLinkBusy, u.OutLinkBusy, m)
			}
			b.ReportMetric(measured, "pblock-sim")
			b.ReportMetric(lee, "pblock-lee")
		})
	}
}

// BenchmarkRecursiveDepthCost evaluates Section 3's recursive
// construction: crosspoints and worst-path optical loss of 3- vs 5-stage
// networks. Nesting pays in gates only once the middle-module size
// passes the three-stage crossover, and always costs optical budget.
func BenchmarkRecursiveDepthCost(b *testing.B) {
	const k = 2
	for _, cfg := range []struct {
		n, r  int
		depth int
	}{
		{4096, 64, 3}, {4096, 64, 5},
		{16384, 1024, 3}, {16384, 1024, 5},
	} {
		b.Run(fmt.Sprintf("N=%d/depth=%d", cfg.n, cfg.depth), func(b *testing.B) {
			var cost crossbar.Cost
			for i := 0; i < b.N; i++ {
				var err error
				cost, err = multistage.CostFormula(multistage.Params{
					N: cfg.n, K: k, R: cfg.r, Model: wdm.MSW, Depth: cfg.depth,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cost.Crosspoints), "crosspoints")
		})
	}
}

// BenchmarkRepack compares strict-sense operation (plain Add) against
// rearrangeable operation (AddWithRepack) on identical hardware: the
// metric is the smallest middle-stage count with zero lost requests.
// Rearrangement rides far below the Theorem 1 bound — the classic
// strict vs rearrangeable trade-off, here measured on WDM multicast.
func BenchmarkRepack(b *testing.B) {
	seeds := []int64{1, 2, 3}
	suffM, _ := multistage.SufficientMinM(multistage.MSWDominant, wdm.MSW, 4, 4, 2)
	for _, repack := range []bool{false, true} {
		name := "strict"
		if repack {
			name = "rearrangeable"
		}
		b.Run(name, func(b *testing.B) {
			var minM int
			for i := 0; i < b.N; i++ {
				base := multistage.Params{N: 16, K: 2, R: 4, Model: wdm.MSW, Lite: true}
				cfg := sim.Config{Requests: 1200, Load: 10, MaxFanout: 8, Repack: repack}
				var err error
				minM, err = sim.FindMinBlockFreeM(base, cfg, seeds, 1, 2*suffM)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(minM), "empirical-min-m")
			b.ReportMetric(float64(suffM), "theorem-m")
		})
	}
}

// BenchmarkSchedulingRounds quantifies the introduction's motivation:
// rounds needed to carry a fixed batch of overlapping multicasts on an
// electronic network (k=1) vs WDM networks with growing k, per model.
// The metric "rounds" should fall roughly k-fold and be smallest for
// MAW.
func BenchmarkSchedulingRounds(b *testing.B) {
	const n = 16
	// A fixed, congested demand: every port broadcasts to a window of 6
	// ports, twice.
	var reqs []schedule.Request
	for rep := 0; rep < 2; rep++ {
		for s := 0; s < n; s++ {
			r := schedule.Request{Source: wdm.Port(s)}
			for d := 1; d <= 6; d++ {
				r.Dests = append(r.Dests, wdm.Port((s+d)%n))
			}
			reqs = append(reqs, r)
		}
	}
	for _, k := range []int{1, 2, 4} {
		for _, m := range wdm.Models {
			b.Run(fmt.Sprintf("%v/k=%d", m, k), func(b *testing.B) {
				var rounds, lb int
				for i := 0; i < b.N; i++ {
					plan, err := schedule.Schedule(m, wdm.Dim{N: n, K: k}, reqs)
					if err != nil {
						b.Fatal(err)
					}
					rounds = plan.NumRounds()
					lb = schedule.LowerBound(wdm.Dim{N: n, K: k}, reqs)
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(lb), "lower-bound")
			})
		}
	}
}

// squareSplit returns the divisor r of n closest to sqrt(n) (with
// n/r >= 2) — the n = r = N^(1/2) split of Section 3.4.
func squareSplit(n int) int {
	best, bestDist := 2, 1<<62
	for r := 2; r <= n/2; r++ {
		if n%r != 0 || n/r < 2 {
			continue
		}
		d := r*r - n
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			best, bestDist = r, d
		}
	}
	return best
}
