package repro

import (
	"strings"
	"testing"

	"repro/internal/benes"
	"repro/internal/core"
	"repro/internal/crossbar"
	"repro/internal/multistage"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// TestScheduledRoundsRouteOnRealSwitches closes the loop between the
// scheduler and the hardware models: every round the scheduler emits
// must be simultaneously realizable on the gate-level crossbar of the
// same model — installed, optically verified, and torn down round by
// round, like a real time-slotted controller would.
func TestScheduledRoundsRouteOnRealSwitches(t *testing.T) {
	dim := wdm.Dim{N: 6, K: 2}
	reqs := []schedule.Request{
		{Source: 0, Dests: []wdm.Port{2, 3, 4}},
		{Source: 1, Dests: []wdm.Port{2, 3}},
		{Source: 2, Dests: []wdm.Port{0, 5}},
		{Source: 0, Dests: []wdm.Port{1, 5}},
		{Source: 3, Dests: []wdm.Port{2}},
		{Source: 4, Dests: []wdm.Port{2, 3, 5}},
		{Source: 5, Dests: []wdm.Port{0, 1, 2, 3}},
	}
	for _, model := range wdm.Models {
		plan, err := schedule.Schedule(model, dim, reqs)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		sw := crossbar.New(model, dim)
		for i, round := range plan.Rounds {
			ids, err := sw.AddAssignment(round.Assignment)
			if err != nil {
				t.Fatalf("%v round %d does not fit the switch: %v", model, i, err)
			}
			if _, err := sw.Verify(); err != nil {
				t.Fatalf("%v round %d optical fault: %v", model, i, err)
			}
			for _, id := range ids {
				if err := sw.Release(id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// TestBenesAgreesWithCrossbar routes the same unicast MSW assignment on
// the rearrangeable Beneš baseline and on the strictly nonblocking
// crossbar: both must deliver identical input->output maps.
func TestBenesAgreesWithCrossbar(t *testing.T) {
	const n, k = 8, 2
	gen := workload.NewGenerator(19, wdm.MSW, wdm.Dim{N: n, K: k})
	// Build a unicast-only MSW assignment from a full random one by
	// keeping only fanout-1 connections.
	var unicast wdm.Assignment
	for _, c := range gen.Assignment(true, 0) {
		if c.Fanout() == 1 {
			unicast = append(unicast, c)
		}
	}
	if len(unicast) < 4 {
		t.Fatalf("only %d unicasts drawn", len(unicast))
	}

	w, err := benes.NewWDM(n, k)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RouteAssignment(unicast); err != nil {
		t.Fatal(err)
	}
	sw := crossbar.New(wdm.MSW, wdm.Dim{N: n, K: k})
	if _, err := sw.AddAssignment(unicast); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range unicast {
		want := c.Dests[0]
		if got := w.Output(c.Source); got != want {
			t.Errorf("Beneš delivers %v to %v, want %v", c.Source, got, want)
		}
		if sig, ok := res.Arrived[want]; !ok || sig.ID < 0 {
			t.Errorf("crossbar did not deliver to %v", want)
		}
	}
}

// TestIncidentWorkflow drives the full operational loop: a design from
// core, dynamic traffic from sim recorded by trace, and a replay of the
// incident on an upgraded network showing the blocks vanish.
func TestIncidentWorkflow(t *testing.T) {
	build := func(m int) *multistage.Network {
		net, err := multistage.New(multistage.Params{
			N: 16, K: 2, R: 4, M: m, X: 2, Model: wdm.MAW,
			Construction: multistage.MAWDominant, Lite: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	undersized := build(3)
	rec := trace.NewRecorder(undersized, multistage.IsBlocked)
	res, err := sim.Run(rec, sim.Config{
		Seed: 33, Model: wdm.MAW, Dim: wdm.Dim{N: 16, K: 2},
		Requests: 1200, Load: 10, MaxFanout: 6,
		IsBlocked: multistage.IsBlocked,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocked == 0 {
		t.Fatal("undersized network never blocked; workflow test needs an incident")
	}

	// Serialize and re-read the incident (exercises the codec end to
	// end on a sizeable trace).
	var b strings.Builder
	if err := rec.Trace().Write(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Events) != len(rec.Trace().Events) {
		t.Fatalf("codec dropped events: %d vs %d", len(parsed.Events), len(rec.Trace().Events))
	}

	// Replay at the sufficient bound: every blocked add must diverge
	// (now route) and no routed add may fail.
	suffM, _ := multistage.SufficientMinM(multistage.MAWDominant, wdm.MAW, 4, 4, 2)
	rep, err := parsed.Replay(build(suffM), multistage.IsBlocked)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Divergence) != res.Blocked {
		t.Errorf("replay divergences %d != recorded blocks %d", len(rep.Divergence), res.Blocked)
	}
	for _, i := range rep.Divergence {
		if parsed.Events[i].Outcome != trace.Blocked {
			t.Errorf("event %d diverged but was not a recorded block", i)
		}
	}
}

// TestDesignedNetworkSurvivesPatterns runs every deterministic traffic
// pattern through the design core.Best recommends for a mid-size
// network, at gate level, with optical verification.
func TestDesignedNetworkSurvivesPatterns(t *testing.T) {
	best, err := core.Best(16, 2, wdm.MSW, core.DefaultWeights)
	if err != nil {
		t.Fatal(err)
	}
	spec := best.Spec
	net, err := core.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := wdm.Dim{N: 16, K: 2}
	for _, pat := range []struct {
		p      workload.Pattern
		stride int
	}{
		{workload.Shift, 1}, {workload.Shift, 5}, {workload.Transpose, 3},
		{workload.Hotspot, 4}, {workload.Broadcast, 0},
	} {
		a, err := workload.PatternAssignment(pat.p, d, pat.stride)
		if err != nil {
			t.Fatal(err)
		}
		var ids []int
		for _, c := range a {
			id, err := net.Add(c)
			if err != nil {
				t.Fatalf("%v stride %d on %s: %v", pat.p, pat.stride, best.Describe(), err)
			}
			ids = append(ids, id)
		}
		if err := net.Verify(); err != nil {
			t.Fatalf("%v: %v", pat.p, err)
		}
		for _, id := range ids {
			if err := net.Release(id); err != nil {
				t.Fatal(err)
			}
		}
	}
}
