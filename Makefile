GO ?= go

.PHONY: all build vet test test-short bench fuzz repro clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParseConnection -fuzztime=10s ./internal/wdm/
	$(GO) test -fuzz=FuzzRoutePermutation -fuzztime=10s ./internal/benes/

# Regenerate every experiment artifact into results/.
repro:
	$(GO) run ./cmd/wdmexperiments -out results

clean:
	rm -rf results test_output.txt bench_output.txt
