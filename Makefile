GO ?= go

.PHONY: all build vet staticcheck test test-short race bench bench-json cover fuzz repro slo-demo chaos-demo crash-demo clean

all: build vet race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Deep lint; CI installs and runs this unconditionally, locally it is
# skipped when the binary is absent (no network installs here).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Data-race detection over the quick test set; the switchd controller
# and the concurrent simulation paths are the prime suspects.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable serving-path throughput record (including route
# latency p50/p99 from the server's own histogram), tracked across PRs.
bench-json:
	BENCH_JSON=$(CURDIR)/BENCH_switchd.json $(GO) test -run '^$$' -bench BenchmarkSwitchdThroughput -benchmem ./internal/switchd

# Per-package statement coverage for the serving and observability
# packages.
cover:
	$(GO) test -cover ./internal/switchd ./internal/obs

fuzz:
	$(GO) test -fuzz=FuzzParseConnection -fuzztime=10s ./internal/wdm/
	$(GO) test -fuzz=FuzzRoutePermutation -fuzztime=10s ./internal/benes/

# Live SLO/tracing demo: start a deliberately sub-bound server, drive
# one traced blocked request, and print the trace / exemplar /
# forensics / SLO joins plus a wdmtop frame (EXPERIMENTS.md § "Trace
# walkthrough", scripted). The server is torn down on exit.
SLO_DEMO_TID := 4bf92f3577b34da6a3ce929d0e0e4736
slo-demo:
	@$(GO) build -o /tmp/wdm-slo-demo-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-slo-demo-top ./cmd/wdmtop
	@/tmp/wdm-slo-demo-serve -addr 127.0.0.1:8047 -m 1 -x 1 -replicas 1 -span-sample 1 & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	curl -s -XPOST 127.0.0.1:8047/v1/connect -d '{"connection":"0.0>4.0"}'; \
	curl -s -XPOST 127.0.0.1:8047/v1/connect -d '{"connection":"1.0>8.0"}' \
	     -H 'traceparent: 00-$(SLO_DEMO_TID)-00f067aa0ba902b7-01'; \
	echo; echo '--- /v1/debug/spans?trace=$(SLO_DEMO_TID)'; \
	curl -s '127.0.0.1:8047/v1/debug/spans?trace=$(SLO_DEMO_TID)'; \
	echo '--- /metrics exemplar'; \
	curl -s '127.0.0.1:8047/metrics?exemplars=1' | grep $(SLO_DEMO_TID); \
	echo '--- /v1/debug/blocking trace join'; \
	curl -s 127.0.0.1:8047/v1/debug/blocking | grep trace_id; \
	echo '--- wdmtop'; \
	/tmp/wdm-slo-demo-top -target http://127.0.0.1:8047 -once

# Chaos drill (EXPERIMENTS.md § "Chaos walkthrough", scripted): a
# server at m = bound + 2 spares (bound is 13 for the default fabric),
# a load generator failing two plane-0 middle modules mid-run and
# repairing them, retries on. The run must end with blocked == 0 and
# dropped == 0; the health rollup walks ok -> degraded -> ok.
chaos-demo:
	@$(GO) build -o /tmp/wdm-chaos-serve ./cmd/wdmserve
	@/tmp/wdm-chaos-serve -addr 127.0.0.1:8048 -m 15 -replicas 2 & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	/tmp/wdm-chaos-serve -attack -target http://127.0.0.1:8048 -requests 300000 \
	    -chaos "fail@1s f0:m0, fail@2s f0:m1, repair@3s f0:m0, repair@4s f0:m1" \
	    -retries 4; \
	echo '--- /v1/health after the drill'; \
	curl -s 127.0.0.1:8048/v1/health; echo

# Crash drill (EXPERIMENTS.md § "Crash walkthrough", scripted): a
# durable server takes acknowledged traffic, dies on SIGKILL with no
# drain, wdmwal proves the log clean, and a restart on the same data
# directory recovers every session under its original id.
crash-demo:
	@$(GO) build -o /tmp/wdm-crash-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-crash-wal ./cmd/wdmwal
	@rm -rf /tmp/wdm-crash-data; \
	/tmp/wdm-crash-serve -addr 127.0.0.1:8049 -replicas 2 -data-dir /tmp/wdm-crash-data & \
	pid=$$!; sleep 0.5; \
	curl -s -XPOST 127.0.0.1:8049/v1/connect -d '{"connection":"0.0>4.0,9.0"}'; echo; \
	curl -s -XPOST 127.0.0.1:8049/v1/connect -d '{"connection":"1.0>6.0"}'; echo; \
	curl -s -XPOST 127.0.0.1:8049/v1/branch -d '{"session":1,"dests":["12.0"]}'; echo; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	echo '--- wdmwal verify after SIGKILL'; \
	/tmp/wdm-crash-wal verify /tmp/wdm-crash-data; \
	/tmp/wdm-crash-serve -addr 127.0.0.1:8049 -replicas 2 -data-dir /tmp/wdm-crash-data & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	echo '--- recovered session 1 after restart'; \
	curl -s '127.0.0.1:8049/v1/session?id=1'; echo; \
	echo '--- /v1/health durability row'; \
	curl -s 127.0.0.1:8049/v1/health; echo; \
	echo '--- wdmwal replay'; \
	/tmp/wdm-crash-wal replay /tmp/wdm-crash-data

# Regenerate every experiment artifact into results/.
repro:
	$(GO) run ./cmd/wdmexperiments -out results

clean:
	rm -rf results test_output.txt bench_output.txt
