GO ?= go

.PHONY: all build vet staticcheck test test-short race bench bench-json cover fuzz repro slo-demo chaos-demo crash-demo cluster-demo prof-demo alert-demo curves-demo clean

all: build vet race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Deep lint; CI installs and runs this unconditionally, locally it is
# skipped when the binary is absent (no network installs here).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Data-race detection over the quick test set; the switchd controller
# and the concurrent simulation paths are the prime suspects.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable serving-path throughput record (including route
# latency p50/p99 from the server's own histogram), tracked across PRs.
# -cpu 1,4 writes one row per GOMAXPROCS so the multi-core scaling
# curve is recorded alongside the single-core baseline.
bench-json:
	BENCH_JSON=$(CURDIR)/BENCH_switchd.json $(GO) test -run '^$$' -bench BenchmarkSwitchdThroughput -benchmem -cpu 1,4 ./internal/switchd

# Per-package statement coverage for the serving and observability
# packages.
cover:
	$(GO) test -cover ./internal/switchd ./internal/obs

fuzz:
	$(GO) test -fuzz=FuzzParseConnection -fuzztime=10s ./internal/wdm/
	$(GO) test -fuzz=FuzzRoutePermutation -fuzztime=10s ./internal/benes/

# Live SLO/tracing demo: start a deliberately sub-bound server, drive
# one traced blocked request, and print the trace / exemplar /
# forensics / SLO joins plus a wdmtop frame (EXPERIMENTS.md § "Trace
# walkthrough", scripted). The server is torn down on exit.
SLO_DEMO_TID := 4bf92f3577b34da6a3ce929d0e0e4736
slo-demo:
	@$(GO) build -o /tmp/wdm-slo-demo-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-slo-demo-top ./cmd/wdmtop
	@/tmp/wdm-slo-demo-serve -addr 127.0.0.1:8047 -m 1 -x 1 -replicas 1 -span-sample 1 & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	curl -s -XPOST 127.0.0.1:8047/v1/connect -d '{"connection":"0.0>4.0"}'; \
	curl -s -XPOST 127.0.0.1:8047/v1/connect -d '{"connection":"1.0>8.0"}' \
	     -H 'traceparent: 00-$(SLO_DEMO_TID)-00f067aa0ba902b7-01'; \
	echo; echo '--- /v1/debug/spans?trace=$(SLO_DEMO_TID)'; \
	curl -s '127.0.0.1:8047/v1/debug/spans?trace=$(SLO_DEMO_TID)'; \
	echo '--- /metrics exemplar'; \
	curl -s '127.0.0.1:8047/metrics?exemplars=1' | grep $(SLO_DEMO_TID); \
	echo '--- /v1/debug/blocking trace join'; \
	curl -s 127.0.0.1:8047/v1/debug/blocking | grep trace_id; \
	echo '--- wdmtop'; \
	/tmp/wdm-slo-demo-top -target http://127.0.0.1:8047 -once

# Chaos drill (EXPERIMENTS.md § "Chaos walkthrough", scripted): a
# server at m = bound + 2 spares (bound is 13 for the default fabric),
# a load generator failing two plane-0 middle modules mid-run and
# repairing them, retries on. The run must end with blocked == 0 and
# dropped == 0; the health rollup walks ok -> degraded -> ok.
chaos-demo:
	@$(GO) build -o /tmp/wdm-chaos-serve ./cmd/wdmserve
	@/tmp/wdm-chaos-serve -addr 127.0.0.1:8048 -m 15 -replicas 2 & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	/tmp/wdm-chaos-serve -attack -target http://127.0.0.1:8048 -requests 300000 \
	    -chaos "fail@1s f0:m0, fail@2s f0:m1, repair@3s f0:m0, repair@4s f0:m1" \
	    -retries 4; \
	echo '--- /v1/health after the drill'; \
	curl -s 127.0.0.1:8048/v1/health; echo

# Crash drill (EXPERIMENTS.md § "Crash walkthrough", scripted): a
# durable server takes acknowledged traffic, dies on SIGKILL with no
# drain, wdmwal proves the log clean, and a restart on the same data
# directory recovers every session under its original id.
crash-demo:
	@$(GO) build -o /tmp/wdm-crash-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-crash-wal ./cmd/wdmwal
	@rm -rf /tmp/wdm-crash-data; \
	/tmp/wdm-crash-serve -addr 127.0.0.1:8049 -replicas 2 -data-dir /tmp/wdm-crash-data & \
	pid=$$!; sleep 0.5; \
	curl -s -XPOST 127.0.0.1:8049/v1/connect -d '{"connection":"0.0>4.0,9.0"}'; echo; \
	curl -s -XPOST 127.0.0.1:8049/v1/connect -d '{"connection":"1.0>6.0"}'; echo; \
	curl -s -XPOST 127.0.0.1:8049/v1/branch -d '{"session":1,"dests":["12.0"]}'; echo; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	echo '--- wdmwal verify after SIGKILL'; \
	/tmp/wdm-crash-wal verify /tmp/wdm-crash-data; \
	/tmp/wdm-crash-serve -addr 127.0.0.1:8049 -replicas 2 -data-dir /tmp/wdm-crash-data & \
	trap 'kill $$!' EXIT; sleep 0.5; \
	echo '--- recovered session 1 after restart'; \
	curl -s '127.0.0.1:8049/v1/session?id=1'; echo; \
	echo '--- /v1/health durability row'; \
	curl -s 127.0.0.1:8049/v1/health; echo; \
	echo '--- wdmwal replay'; \
	/tmp/wdm-crash-wal replay /tmp/wdm-crash-data

# Failover drill (EXPERIMENTS.md § "Failover walkthrough", scripted):
# a 3-shard cluster — one primary per shard, plus a warm standby
# log-shipping shard 1 — takes churn on every shard and two held
# sessions on shard 1, then shard 1's primary dies on SIGKILL with no
# drain. The standby is promoted over HTTP, serves the held sessions,
# and the two shard-1 data directories must agree on `wdmwal inspect
# -json`'s state_digest: identical replicated session state, zero
# acknowledged loss.
cluster-demo:
	@$(GO) build -o /tmp/wdm-cluster-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-cluster-wal ./cmd/wdmwal
	@pkill -9 -f '^/tmp/wdm-cluster-serve' 2>/dev/null; rm -rf /tmp/wdm-cluster-data; mkdir -p /tmp/wdm-cluster-data; \
	/tmp/wdm-cluster-serve -cluster -shard 0 -addr 127.0.0.1:9061 -repl-addr 127.0.0.1:9071 \
	    -replicas 2 -snapshot-interval=-1s -data-dir /tmp/wdm-cluster-data/s0 & p0=$$!; \
	/tmp/wdm-cluster-serve -cluster -shard 1 -addr 127.0.0.1:9062 -repl-addr 127.0.0.1:9072 \
	    -replicas 2 -snapshot-interval=-1s -data-dir /tmp/wdm-cluster-data/s1 & p1=$$!; \
	/tmp/wdm-cluster-serve -cluster -shard 2 -addr 127.0.0.1:9063 -repl-addr 127.0.0.1:9073 \
	    -replicas 2 -snapshot-interval=-1s -data-dir /tmp/wdm-cluster-data/s2 & p2=$$!; \
	/tmp/wdm-cluster-serve -cluster -shard 1 -standby-of 127.0.0.1:9072 -addr 127.0.0.1:9065 \
	    -replicas 2 -snapshot-interval=-1s -data-dir /tmp/wdm-cluster-data/s1-standby & sb=$$!; \
	trap 'kill -9 $$p0 $$p2 $$sb 2>/dev/null' EXIT; sleep 1; \
	/tmp/wdm-cluster-serve -attack -target http://127.0.0.1:9061 -requests 3000 >/dev/null & a0=$$!; \
	/tmp/wdm-cluster-serve -attack -target http://127.0.0.1:9063 -requests 3000 >/dev/null & a2=$$!; \
	/tmp/wdm-cluster-serve -attack -target http://127.0.0.1:9062 -requests 3000; \
	wait $$a0 $$a2; \
	sid=$$(curl -s -XPOST 127.0.0.1:9062/v1/connect -d '{"connection":"0.0>4.0,9.0"}' \
	    | tr -d ' \n' | sed 's/.*"session":\([0-9]*\).*/\1/'); \
	curl -s -XPOST 127.0.0.1:9062/v1/connect -d '{"connection":"1.0>6.0"}' >/dev/null; \
	sleep 0.5; \
	echo "--- SIGKILL shard 1 primary (held session $$sid acknowledged)"; \
	kill -9 $$p1; wait $$p1 2>/dev/null; \
	echo '--- POST /v1/admin/promote on the shard 1 standby'; \
	pr=$$(curl -s -XPOST 127.0.0.1:9065/v1/admin/promote); echo "$$pr"; \
	echo "$$pr" | grep -q '"promoted": *true' \
	    || { echo 'FAILOVER FAILED: promote did not succeed'; exit 1; }; \
	echo '--- held session on the promoted primary'; \
	held=$$(curl -s "127.0.0.1:9065/v1/session?id=$$sid"); echo "$$held"; \
	echo "$$held" | grep -q '4.0,9.0' \
	    || { echo "FAILOVER FAILED: acknowledged session $$sid lost"; exit 1; }; \
	echo '--- /v1/health replication row'; \
	curl -s 127.0.0.1:9065/v1/health; echo; \
	kill -9 $$sb; wait $$sb 2>/dev/null; \
	dp=$$(/tmp/wdm-cluster-wal inspect -json /tmp/wdm-cluster-data/s1 | grep state_digest); \
	ds=$$(/tmp/wdm-cluster-wal inspect -json /tmp/wdm-cluster-data/s1-standby | grep state_digest); \
	echo "dead primary     $$dp"; \
	echo "promoted standby $$ds"; \
	test -n "$$dp" && test "$$dp" = "$$ds" \
	    || { echo 'FAILOVER FAILED: replicated state digests differ'; exit 1; }; \
	echo 'failover OK: state digests identical, zero acknowledged loss'

# Observability drill (EXPERIMENTS.md § "Performance observability",
# scripted): two cluster shards with aggressive mutex profiling, churn
# against both, then assert (a) the mutex profile at /v1/debug/prof is
# non-empty, (b) /v1/cluster/metrics serves a merged exposition with
# both shards up and the phase histograms present, and (c) binary
# profile snapshots download. Profiles land in PROF_DIR so CI can
# upload them as a workflow artifact.
PROF_DIR ?= /tmp/wdm-prof-demo
prof-demo:
	@$(GO) build -o /tmp/wdm-prof-serve ./cmd/wdmserve
	@pkill -9 -f '^/tmp/wdm-prof-serve' 2>/dev/null; rm -rf $(PROF_DIR) /tmp/wdm-prof-data; mkdir -p $(PROF_DIR); \
	/tmp/wdm-prof-serve -cluster -shard 0 -addr 127.0.0.1:9081 -repl-addr 127.0.0.1:9091 \
	    -peers 'http://127.0.0.1:9081,http://127.0.0.1:9082' \
	    -replicas 2 -prof-mutex 1 -data-dir /tmp/wdm-prof-data/s0 & p0=$$!; \
	/tmp/wdm-prof-serve -cluster -shard 1 -addr 127.0.0.1:9082 -repl-addr 127.0.0.1:9092 \
	    -peers 'http://127.0.0.1:9081,http://127.0.0.1:9082' \
	    -replicas 2 -prof-mutex 1 -data-dir /tmp/wdm-prof-data/s1 & p1=$$!; \
	trap 'kill -9 $$p0 $$p1 2>/dev/null' EXIT; sleep 1; \
	/tmp/wdm-prof-serve -attack -target http://127.0.0.1:9081 -requests 6000 >/dev/null & a0=$$!; \
	/tmp/wdm-prof-serve -attack -target http://127.0.0.1:9082 -requests 6000; \
	wait $$a0; \
	echo '--- mutex profile (debug text head)'; \
	curl -s '127.0.0.1:9081/v1/debug/prof?type=mutex&debug=1' > $(PROF_DIR)/mutex.txt; \
	head -3 $(PROF_DIR)/mutex.txt; \
	grep -q 'cycles/second' $(PROF_DIR)/mutex.txt \
	    || { echo 'PROF DEMO FAILED: empty mutex profile'; exit 1; }; \
	curl -s '127.0.0.1:9081/v1/debug/prof?type=mutex' -o $(PROF_DIR)/mutex.pb.gz; \
	curl -s '127.0.0.1:9081/v1/debug/prof?type=heap' -o $(PROF_DIR)/heap.pb.gz; \
	test -s $(PROF_DIR)/mutex.pb.gz && test -s $(PROF_DIR)/heap.pb.gz \
	    || { echo 'PROF DEMO FAILED: empty binary profile snapshot'; exit 1; }; \
	echo '--- /v1/cluster/metrics federation'; \
	curl -s 127.0.0.1:9081/v1/cluster/metrics > $(PROF_DIR)/fleet-metrics.txt; \
	grep -q 'wdm_federation_peer_up{shard="0"} 1' $(PROF_DIR)/fleet-metrics.txt \
	    && grep -q 'wdm_federation_peer_up{shard="1"} 1' $(PROF_DIR)/fleet-metrics.txt \
	    || { echo 'PROF DEMO FAILED: federation did not merge both shards'; cat $(PROF_DIR)/fleet-metrics.txt; exit 1; }; \
	grep -q 'wdm_phase_seconds_bucket' $(PROF_DIR)/fleet-metrics.txt \
	    || { echo 'PROF DEMO FAILED: no phase histograms in the fleet view'; exit 1; }; \
	grep 'wdm_federation_peer_up' $(PROF_DIR)/fleet-metrics.txt; \
	echo "prof demo OK: profiles in $(PROF_DIR)"

# Alert drill (EXPERIMENTS.md § "Alerting walkthrough", scripted): two
# cluster shards with the embedded metrics history on a fast scrape,
# shard 0 configured exactly at the sufficient bound (m margin 0). The
# drill fails most of shard 0's middle stage over the admin plane,
# drives closed-loop traffic until it blocks, and asserts the shipped
# invariant rule (blocked_in_nonblocking_regime) reaches firing with
# /v1/alerts and the wdm_alert_firing gauge agreeing; repairing the
# middles must resolve it on its own, and a federated /v1/cluster/query
# range over both live shards must return the merged blocking curve
# covering the incident. The tsdb dump and query curves land in
# ALERT_DIR so CI can upload them as a workflow artifact.
ALERT_DIR ?= /tmp/wdm-alert-demo
ALERT_RULES := {"rules":[{"name":"blocked_in_nonblocking_regime","expr":"rate(wdm_blocked_total[10s])","op":">","value":0,"for":"500ms","guard":{"expr":"wdm_m_margin","op":">=","value":0},"summary":"P_block > 0 at or above the sufficient bound"}]}
alert-demo:
	@$(GO) build -o /tmp/wdm-alert-serve ./cmd/wdmserve
	@pkill -9 -f '^/tmp/wdm-alert-serve' 2>/dev/null; rm -rf $(ALERT_DIR) /tmp/wdm-alert-data; mkdir -p $(ALERT_DIR); \
	printf '%s\n' '$(ALERT_RULES)' > $(ALERT_DIR)/rules.json; \
	/tmp/wdm-alert-serve -cluster -shard 0 -addr 127.0.0.1:9101 -repl-addr 127.0.0.1:9111 \
	    -peers 'http://127.0.0.1:9101,http://127.0.0.1:9102' \
	    -replicas 1 -history 250ms -alerts $(ALERT_DIR)/rules.json \
	    -data-dir /tmp/wdm-alert-data/s0 & p0=$$!; \
	/tmp/wdm-alert-serve -cluster -shard 1 -addr 127.0.0.1:9102 -repl-addr 127.0.0.1:9112 \
	    -peers 'http://127.0.0.1:9101,http://127.0.0.1:9102' \
	    -replicas 1 -history 250ms -alerts $(ALERT_DIR)/rules.json \
	    -data-dir /tmp/wdm-alert-data/s1 & p1=$$!; \
	trap 'kill -9 $$p0 $$p1 2>/dev/null' EXIT; sleep 1; \
	/tmp/wdm-alert-serve -attack -target http://127.0.0.1:9102 -requests 2000 >/dev/null; \
	m=$$(curl -s 127.0.0.1:9101/v1/status | tr -d ' \n' | sed 's/.*"m":\([0-9]*\).*/\1/'); \
	echo "--- failing $$((m-1)) of $$m shard-0 middles (configured m stays at the bound)"; \
	i=0; while [ $$i -lt $$((m-1)) ]; do \
	    curl -s -XPOST 127.0.0.1:9101/v1/admin/fail -d "{\"fabric\":0,\"middle\":$$i}" >/dev/null; \
	    i=$$((i+1)); done; \
	/tmp/wdm-alert-serve -attack -target http://127.0.0.1:9101 -requests 4000 >/dev/null; \
	echo '--- waiting for blocked_in_nonblocking_regime to fire'; \
	fired=0; i=0; while [ $$i -lt 40 ]; do \
	    if curl -s 127.0.0.1:9101/v1/alerts | tr -d ' \n' | grep -q '"state":"firing"'; then fired=1; break; fi; \
	    sleep 0.25; i=$$((i+1)); done; \
	curl -s 127.0.0.1:9101/v1/alerts > $(ALERT_DIR)/alerts-firing.json; \
	test $$fired -eq 1 \
	    || { echo 'ALERT DEMO FAILED: rule never fired'; cat $(ALERT_DIR)/alerts-firing.json; exit 1; }; \
	curl -s 127.0.0.1:9101/metrics | grep 'wdm_alert_firing' | tee $(ALERT_DIR)/alert-gauge.txt; \
	grep -q 'wdm_alert_firing{rule="blocked_in_nonblocking_regime"} 1' $(ALERT_DIR)/alert-gauge.txt \
	    || { echo 'ALERT DEMO FAILED: gauge disagrees with /v1/alerts'; exit 1; }; \
	echo '--- federated range query across both live shards'; \
	curl -s '127.0.0.1:9102/v1/cluster/query?query=rate(wdm_blocked_total%5B10s%5D)&start=-2m&step=1s' \
	    > $(ALERT_DIR)/fleet-query.json; \
	fq=$$(tr -d ' \n' < $(ALERT_DIR)/fleet-query.json); \
	echo "$$fq" | grep -q '"shards":2' && echo "$$fq" | grep -vq 'down_shards' \
	    || { echo 'ALERT DEMO FAILED: federated query did not merge 2 live shards'; exit 1; }; \
	echo "$$fq" | grep -q '"shard":"0"' && echo "$$fq" | grep -q '"shard":"fleet"' \
	    || { echo 'ALERT DEMO FAILED: merged result lacks per-shard/fleet series'; exit 1; }; \
	echo '--- repairing the middles; the alert must resolve on its own'; \
	i=0; while [ $$i -lt $$((m-1)) ]; do \
	    curl -s -XPOST 127.0.0.1:9101/v1/admin/repair -d "{\"fabric\":0,\"middle\":$$i}" >/dev/null; \
	    i=$$((i+1)); done; \
	resolved=0; i=0; while [ $$i -lt 60 ]; do \
	    if curl -s 127.0.0.1:9101/v1/alerts | tr -d ' \n' | grep -q '"state":"firing"'; then :; else resolved=1; break; fi; \
	    sleep 0.5; i=$$((i+1)); done; \
	curl -s 127.0.0.1:9101/v1/alerts > $(ALERT_DIR)/alerts-resolved.json; \
	test $$resolved -eq 1 \
	    || { echo 'ALERT DEMO FAILED: alert never resolved after repair'; cat $(ALERT_DIR)/alerts-resolved.json; exit 1; }; \
	curl -s 127.0.0.1:9101/metrics | grep -q 'wdm_alert_firing{rule="blocked_in_nonblocking_regime"} 0' \
	    || { echo 'ALERT DEMO FAILED: gauge still up after resolve'; exit 1; }; \
	curl -s 127.0.0.1:9101/v1/debug/tsdb > $(ALERT_DIR)/tsdb-dump.json; \
	curl -s '127.0.0.1:9101/v1/query?query=rate(wdm_blocked_total%5B10s%5D)&start=-2m&step=1s' \
	    > $(ALERT_DIR)/query-blocked.json; \
	test -s $(ALERT_DIR)/tsdb-dump.json \
	    || { echo 'ALERT DEMO FAILED: empty tsdb dump'; exit 1; }; \
	echo "alert demo OK: fired, federated, resolved; artifacts in $(ALERT_DIR)"

# Blocking-curve drill (EXPERIMENTS.md § "Traffic engine & blocking
# curves", scripted): a server provisioned at the Theorem 1 bound takes
# a strict Erlang sweep with session churn — any measured P_block > 0
# fails the run — then a starved server (m = 3, x = 1) takes the same
# load ladder to show the knee, which must contain real blocking.
# Artifacts land in CURVES_DIR for CI upload; wdmplot renders the
# measured curves as CSV.
CURVES_DIR ?= /tmp/wdm-curves-demo
curves-demo:
	@$(GO) build -o /tmp/wdm-curves-serve ./cmd/wdmserve
	@$(GO) build -o /tmp/wdm-curves-load ./cmd/wdmload
	@$(GO) build -o /tmp/wdm-curves-plot ./cmd/wdmplot
	@pkill -9 -f '^/tmp/wdm-curves-serve' 2>/dev/null; rm -rf $(CURVES_DIR); mkdir -p $(CURVES_DIR); \
	/tmp/wdm-curves-serve -addr 127.0.0.1:8055 -replicas 1 >$(CURVES_DIR)/serve-bound.log 2>&1 & pb=$$!; \
	/tmp/wdm-curves-serve -addr 127.0.0.1:8056 -replicas 1 -m 3 -x 1 >$(CURVES_DIR)/serve-below.log 2>&1 & pk=$$!; \
	trap 'kill -9 $$pb $$pk 2>/dev/null' EXIT; sleep 0.5; \
	echo '--- strict sweep at the bound (m = 13): any P_block > 0 fails'; \
	/tmp/wdm-curves-load -mode sweep -target http://127.0.0.1:8055 -points 1,2,4,8 \
	    -arrivals 1200 -max-fanout 4 -churn 0.3 -strict -out $(CURVES_DIR)/BENCH_curves.json; \
	echo '--- knee sweep far below the bound (m = 3, x = 1): blocking must appear'; \
	/tmp/wdm-curves-load -mode sweep -target http://127.0.0.1:8056 -points 1,2,4,8,16 \
	    -arrivals 1200 -max-fanout 4 -out $(CURVES_DIR)/BENCH_curves_below.json; \
	grep -Eq '"blocked": [1-9]' $(CURVES_DIR)/BENCH_curves_below.json \
	    || { echo 'CURVES DEMO FAILED: no knee below the bound'; exit 1; }; \
	echo '--- measured curve at the bound'; \
	/tmp/wdm-curves-plot -series curves -curves $(CURVES_DIR)/BENCH_curves.json; \
	echo '--- measured knee below the bound'; \
	/tmp/wdm-curves-plot -series curves -curves $(CURVES_DIR)/BENCH_curves_below.json; \
	echo "curves demo OK: P_block = 0 at the bound, knee visible below; artifacts in $(CURVES_DIR)"

# Regenerate every experiment artifact into results/.
repro:
	$(GO) run ./cmd/wdmexperiments -out results

clean:
	rm -rf results test_output.txt bench_output.txt
