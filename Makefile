GO ?= go

.PHONY: all build vet test test-short race bench bench-json cover fuzz repro clean

all: build vet race test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Data-race detection over the quick test set; the switchd controller
# and the concurrent simulation paths are the prime suspects.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable serving-path throughput record (including route
# latency p50/p99 from the server's own histogram), tracked across PRs.
bench-json:
	BENCH_JSON=$(CURDIR)/BENCH_switchd.json $(GO) test -run '^$$' -bench BenchmarkSwitchdThroughput -benchmem ./internal/switchd

# Per-package statement coverage for the serving and observability
# packages.
cover:
	$(GO) test -cover ./internal/switchd ./internal/obs

fuzz:
	$(GO) test -fuzz=FuzzParseConnection -fuzztime=10s ./internal/wdm/
	$(GO) test -fuzz=FuzzRoutePermutation -fuzztime=10s ./internal/benes/

# Regenerate every experiment artifact into results/.
repro:
	$(GO) run ./cmd/wdmexperiments -out results

clean:
	rm -rf results test_output.txt bench_output.txt
